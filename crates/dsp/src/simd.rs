//! Runtime-dispatched SIMD kernels for the per-symbol hot loops.
//!
//! Every kernel here is a *bit-exact* vectorization of its scalar
//! counterpart: the SIMD code performs the same per-element operation DAG
//! (the same multiplies, adds and fused multiply-adds, in the same order)
//! and only parallelises across independent elements, so for finite
//! inputs the vector and scalar paths produce byte-identical output. The
//! conformance suite (`lte-sim vectors --check`) and the differential
//! fuzz targets enforce that contract on every build.
//!
//! # Dispatch rule
//!
//! A kernel takes the vector path iff all of:
//!
//! 1. the target is x86-64 and the CPU reports AVX2 + FMA at runtime
//!    (`is_x86_feature_detected!`), and
//! 2. scalar mode has not been forced — via [`force_scalar`] or by
//!    setting the `LTE_SIM_SIMD` environment variable to `scalar`
//!    (or `off`/`0`), and
//! 3. the block is long enough for at least one full vector.
//!
//! Everything else — non-x86 builds, older CPUs, short tails — runs the
//! scalar code, which is the reference implementation in all cases.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::complex::Complex32;
use crate::modulation::Modulation;

const UNDECIDED: u8 = 0;
const SCALAR: u8 = 1;
const VECTOR: u8 = 2;

static DISPATCH: AtomicU8 = AtomicU8::new(UNDECIDED);

/// `true` when this build + CPU can run the vector kernels at all
/// (x86-64 with AVX2 and FMA), independent of any forced override.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn decide() -> u8 {
    let forced_off = std::env::var("LTE_SIM_SIMD")
        .map(|v| matches!(v.as_str(), "scalar" | "off" | "0"))
        .unwrap_or(false);
    let mode = if !forced_off && simd_available() {
        VECTOR
    } else {
        SCALAR
    };
    DISPATCH.store(mode, Ordering::Relaxed);
    mode
}

/// `true` when kernels will take the vector path.
#[inline]
pub fn simd_enabled() -> bool {
    let mode = DISPATCH.load(Ordering::Relaxed);
    let mode = if mode == UNDECIDED { decide() } else { mode };
    mode == VECTOR
}

/// Forces (or releases) scalar dispatch process-wide. Used by
/// `lte-sim vectors --check --scalar` and the differential tests to pin
/// both paths in one process. Because the two paths are bit-identical,
/// flipping this concurrently with running kernels changes nothing
/// observable.
pub fn force_scalar(on: bool) {
    let mode = if on || !simd_available() {
        SCALAR
    } else {
        VECTOR
    };
    DISPATCH.store(mode, Ordering::Relaxed);
}

/// A short label for reports: which path kernels currently take.
pub fn dispatch_label() -> &'static str {
    if simd_enabled() {
        "avx2+fma"
    } else {
        "scalar"
    }
}

/// `acc[i] = acc[i] + w[i]·x[i]` for every element, with the exact
/// arithmetic of [`Complex32::mul_add`] (`acc.mul_add(w, x)`) per
/// element — the MMSE per-symbol combining kernel.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn cmul_add_assign(acc: &mut [Complex32], w: &[Complex32], x: &[Complex32]) {
    assert_eq!(acc.len(), w.len(), "weight length mismatch");
    assert_eq!(acc.len(), x.len(), "sample length mismatch");
    let mut start = 0;
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() && acc.len() >= 4 {
        start = acc.len() & !3;
        // SAFETY: AVX2+FMA presence was checked by `simd_enabled`.
        unsafe { x86::cmul_add_assign(&mut acc[..start], &w[..start], &x[..start]) };
    }
    for i in start..acc.len() {
        acc[i] = acc[i].mul_add(w[i], x[i]);
    }
}

/// `out[i] = y[i]·w[i]` for every element, with the exact arithmetic of
/// [`Complex32::mul`] per element — the reference-sequence rotation
/// kernel (Zadoff-Chu cyclic shift).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn cmul_into(out: &mut [Complex32], y: &[Complex32], w: &[Complex32]) {
    assert_eq!(out.len(), y.len(), "sample length mismatch");
    assert_eq!(out.len(), w.len(), "rotation length mismatch");
    let mut start = 0;
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() && out.len() >= 4 {
        start = out.len() & !3;
        // SAFETY: AVX2+FMA presence was checked by `simd_enabled`.
        unsafe { x86::cmul_into(&mut out[..start], &y[..start], &w[..start]) };
    }
    for i in start..out.len() {
        out[i] = y[i] * w[i];
    }
}

/// `out[i] = y[i]·x[i].conj()` for every element, with the exact
/// arithmetic of [`Complex32::mul`] per element — the channel-estimate
/// matched-filter kernel.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn cmul_conj_into(out: &mut [Complex32], y: &[Complex32], x: &[Complex32]) {
    assert_eq!(out.len(), y.len(), "received length mismatch");
    assert_eq!(out.len(), x.len(), "reference length mismatch");
    let mut start = 0;
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() && out.len() >= 4 {
        start = out.len() & !3;
        // SAFETY: AVX2+FMA presence was checked by `simd_enabled`.
        unsafe { x86::cmul_conj_into(&mut out[..start], &y[..start], &x[..start]) };
    }
    for i in start..out.len() {
        out[i] = y[i] * x[i].conj();
    }
}

/// In-place variant of [`cmul_conj_into`]: `y[i] = y[i]·x[i].conj()`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn cmul_conj_assign(y: &mut [Complex32], x: &[Complex32]) {
    assert_eq!(y.len(), x.len(), "reference length mismatch");
    let mut start = 0;
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() && y.len() >= 4 {
        start = y.len() & !3;
        // SAFETY: AVX2+FMA presence was checked by `simd_enabled`.
        unsafe { x86::cmul_conj_assign(&mut y[..start], &x[..start]) };
    }
    for i in start..y.len() {
        y[i] *= x[i].conj();
    }
}

/// State-parallel forward (alpha) and backward (beta) recursions of the
/// max-log-MAP SISO over the information section, interleaved in one
/// loop: each 8-state trellis row is one AVX2 vector, and because the
/// two walks are independent the fused loop keeps two dependency chains
/// in flight where the separate passes were each latency-bound on one.
/// `alpha` row 0 and `beta` row `sys.len()` must already be seeded;
/// alpha rows `1..=sys.len()` and beta rows `sys.len()-1..=0` are
/// written. Returns `false` when the caller should run the scalar
/// reference passes.
pub(crate) fn turbo_alpha_beta(
    sys: &[f32],
    par: &[f32],
    apriori: &[f32],
    alpha: &mut [f32],
    beta: &mut [f32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if !simd_enabled() {
            return false;
        }
        // SAFETY: AVX2+FMA presence was checked by `simd_enabled`.
        unsafe { x86::turbo_alpha_beta(sys, par, apriori, alpha, beta) };
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (sys, par, apriori, alpha, beta);
        false
    }
}

/// State-parallel branch-metric/LLR extraction of the max-log-MAP SISO.
/// Returns `false` when the caller should run the scalar reference.
pub(crate) fn turbo_extrinsic(
    sys: &[f32],
    par: &[f32],
    apriori: &[f32],
    alpha: &[f32],
    beta: &[f32],
    extrinsic: &mut [f32],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if !simd_enabled() {
            return false;
        }
        // SAFETY: AVX2+FMA presence was checked by `simd_enabled`.
        unsafe { x86::turbo_extrinsic(sys, par, apriori, alpha, beta, extrinsic) };
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (sys, par, apriori, alpha, beta, extrinsic);
        false
    }
}

/// Max-log demap of a whole symbol block, appending LLRs to `out`.
/// Returns `false` when the caller should run the scalar loop instead
/// (vector path unavailable or block too short).
///
/// # Panics
///
/// Panics if `noise_var <= 0` (matching the scalar demapper).
pub(crate) fn demap_block_maxlog(
    modulation: Modulation,
    symbols: &[Complex32],
    noise_var: f32,
    out: &mut Vec<f32>,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if !simd_enabled() || symbols.len() < 8 {
            return false;
        }
        assert!(noise_var > 0.0, "noise variance must be positive");
        let bits = modulation.bits_per_symbol();
        // Reserve the whole block up front so the scalar-tail pushes below
        // never reallocate (the hot path's output buffers are reused
        // across subframes, so steady state stays allocation-free).
        out.reserve(symbols.len() * bits);
        let start = out.len();
        let split = symbols.len() & !7;
        out.resize(start + split * bits, 0.0);
        let dst = &mut out[start..];
        // SAFETY: AVX2+FMA presence was checked by `simd_enabled`.
        unsafe {
            match modulation {
                Modulation::Qpsk => {
                    x86::demap_qpsk(&symbols[..split], noise_var, dst);
                }
                Modulation::Qam16 => {
                    x86::demap_qam16(&symbols[..split], noise_var, dst);
                }
                Modulation::Qam64 => {
                    x86::demap_qam64(&symbols[..split], noise_var, dst);
                }
            }
        }
        // Scalar tail, appended with the reference demapper.
        for &y in &symbols[split..] {
            crate::llr::maxlog_llr(modulation, y, noise_var, out);
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (modulation, symbols, noise_var, out);
        false
    }
}

/// The AVX2+FMA kernels. Every function is a line-by-line vector
/// transcription of the scalar reference it replaces; comments in each
/// note the scalar expression being reproduced.
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use core::arch::x86_64::*;

    use crate::complex::Complex32;
    use crate::modulation::Modulation;

    /// Sign mask that negates the *even* (real) lane of each complex pair.
    #[inline]
    unsafe fn even_sign() -> __m256 {
        unsafe { _mm256_setr_ps(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0) }
    }

    /// Sign mask that negates the *odd* (imaginary) lane of each pair.
    #[inline]
    unsafe fn odd_sign() -> __m256 {
        unsafe { _mm256_setr_ps(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0) }
    }

    #[inline]
    pub(crate) unsafe fn load(p: *const Complex32) -> __m256 {
        unsafe { _mm256_loadu_ps(p.cast::<f32>()) }
    }

    #[inline]
    pub(crate) unsafe fn store(p: *mut Complex32, v: __m256) {
        unsafe { _mm256_storeu_ps(p.cast::<f32>(), v) }
    }

    /// Complex multiply `b·w` (four pairs), reproducing `Complex32::mul`:
    /// `re = b.re·w.re − b.im·w.im`, `im = b.re·w.im + b.im·w.re`
    /// (`addsub` computes `b.im·w.re + b.re·w.im`; f32 addition is
    /// commutative bit-for-bit on non-NaN values).
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn cmul(b: __m256, w: __m256) -> __m256 {
        let w_re = _mm256_moveldup_ps(w);
        let w_im = _mm256_movehdup_ps(w);
        let b_swap = _mm256_permute_ps(b, 0xB1);
        _mm256_addsub_ps(_mm256_mul_ps(b, w_re), _mm256_mul_ps(b_swap, w_im))
    }

    /// `acc + a·b` with `b` varying per lane, reproducing
    /// `Complex32::mul_add`:
    /// `re = fma(a.re, b.re, fma(−a.im, b.im, acc.re))`,
    /// `im = fma(a.re, b.im, fma(a.im, b.re, acc.im))`.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn cfma(acc: __m256, a: __m256, b: __m256) -> __m256 {
        unsafe {
            let a_re = _mm256_moveldup_ps(a);
            let a_im = _mm256_movehdup_ps(a);
            // (−a.im, a.im) so one fmadd covers both half-expressions.
            let a_im_alt = _mm256_xor_ps(a_im, even_sign());
            let b_swap = _mm256_permute_ps(b, 0xB1);
            let inner = _mm256_fmadd_ps(a_im_alt, b_swap, acc);
            _mm256_fmadd_ps(a_re, b, inner)
        }
    }

    /// [`cfma`] with a broadcast complex constant `b`.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn cfma_broadcast(acc: __m256, a: __m256, b: Complex32) -> __m256 {
        unsafe {
            let packed =
                f64::from_bits((u64::from(b.im.to_bits()) << 32) | u64::from(b.re.to_bits()));
            let b_pair = _mm256_castpd_ps(_mm256_set1_pd(packed));
            cfma(acc, a, b_pair)
        }
    }

    /// Rotate each pair by −90°: `(re, im) → (im, −re)` (`mul_neg_i`).
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn mul_neg_i(z: __m256) -> __m256 {
        unsafe { _mm256_xor_ps(_mm256_permute_ps(z, 0xB1), odd_sign()) }
    }

    /// Rotate each pair by +90°: `(re, im) → (−im, re)` (`mul_i`).
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn mul_i(z: __m256) -> __m256 {
        unsafe { _mm256_xor_ps(_mm256_permute_ps(z, 0xB1), even_sign()) }
    }

    /// `acc[i] = acc[i].mul_add(w[i], x[i])` over length-multiple-of-4
    /// slices.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn cmul_add_assign(acc: &mut [Complex32], w: &[Complex32], x: &[Complex32]) {
        unsafe {
            let n = acc.len();
            let ap = acc.as_mut_ptr();
            let wp = w.as_ptr();
            let xp = x.as_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let a = load(ap.add(i));
                let wv = load(wp.add(i));
                let xv = load(xp.add(i));
                store(ap.add(i), cfma(a, wv, xv));
                i += 4;
            }
        }
    }

    /// `out[i] = y[i]·w[i]` over length-multiple-of-4 slices.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn cmul_into(out: &mut [Complex32], y: &[Complex32], w: &[Complex32]) {
        unsafe {
            let n = out.len();
            let op = out.as_mut_ptr();
            let yp = y.as_ptr();
            let wp = w.as_ptr();
            let mut i = 0;
            while i + 4 <= n {
                store(op.add(i), cmul(load(yp.add(i)), load(wp.add(i))));
                i += 4;
            }
        }
    }

    /// `out[i] = y[i]·x[i].conj()` over length-multiple-of-4 slices: the
    /// conjugate is a sign flip of the imaginary lanes, then the shared
    /// [`cmul`] DAG.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn cmul_conj_into(out: &mut [Complex32], y: &[Complex32], x: &[Complex32]) {
        unsafe {
            let n = out.len();
            let op = out.as_mut_ptr();
            let yp = y.as_ptr();
            let xp = x.as_ptr();
            let conj = odd_sign();
            let mut i = 0;
            while i + 4 <= n {
                let xc = _mm256_xor_ps(load(xp.add(i)), conj);
                store(op.add(i), cmul(load(yp.add(i)), xc));
                i += 4;
            }
        }
    }

    /// In-place [`cmul_conj_into`] over length-multiple-of-4 slices.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn cmul_conj_assign(y: &mut [Complex32], x: &[Complex32]) {
        unsafe {
            let n = y.len();
            let yp = y.as_mut_ptr();
            let xp = x.as_ptr();
            let conj = odd_sign();
            let mut i = 0;
            while i + 4 <= n {
                let xc = _mm256_xor_ps(load(xp.add(i)), conj);
                store(yp.add(i), cmul(load(yp.add(i)), xc));
                i += 4;
            }
        }
    }

    // ---- state-parallel turbo SISO kernels ----
    //
    // One 8-lane vector holds a whole trellis row (alpha[i][0..8] or
    // beta[i][0..8]); the recursions become two `permutevar` gathers,
    // sign-flipped branch-metric adds, and a max chain seeded at the NEG
    // sentinel — lane `t` computes exactly the scalar gather expression
    // for state `t`, so the paths are bit-identical by construction.

    use crate::turbo::{
        ALPHA_INPUT, ALPHA_PARITY, ALPHA_PRED, BRANCH_PARITY, NEG, NEXT_STATE, STATES,
    };

    /// Lane-gather indices for `_mm256_permutevar8x32_ps`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn perm_index(p: [usize; STATES]) -> __m256i {
        _mm256_setr_epi32(
            p[0] as i32,
            p[1] as i32,
            p[2] as i32,
            p[3] as i32,
            p[4] as i32,
            p[5] as i32,
            p[6] as i32,
            p[7] as i32,
        )
    }

    /// Per-lane sign mask: `-0.0` where the branch bit is 1 (XOR with the
    /// mask is the vector twin of the scalar `signed()` sign flip).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn sign_mask(bits: [u8; STATES]) -> __m256 {
        let f = |b: u8| if b == 0 { 0.0f32 } else { -0.0 };
        _mm256_setr_ps(
            f(bits[0]),
            f(bits[1]),
            f(bits[2]),
            f(bits[3]),
            f(bits[4]),
            f(bits[5]),
            f(bits[6]),
            f(bits[7]),
        )
    }

    /// Vector twin of `turbo::scalar_alpha` + `turbo::scalar_beta`, fused:
    /// both recursions walk the information section in one loop (alpha
    /// forward from row 0, beta backward from row `n`). Each row's
    /// operation DAG is exactly the separate scalar pass's — the walks
    /// never read each other's planes — but fusing them keeps two
    /// independent permute→add→max dependency chains in flight, which is
    /// what the latency-bound trellis recursion needs to fill the vector
    /// ports.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support; `alpha` and `beta`
    /// must each hold at least `(sys.len() + 1) * 8` elements, with
    /// alpha row 0 and beta row `sys.len()` seeded.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn turbo_alpha_beta(
        sys: &[f32],
        par: &[f32],
        apriori: &[f32],
        alpha: &mut [f32],
        beta: &mut [f32],
    ) {
        unsafe {
            let p0 = perm_index(ALPHA_PRED[0]);
            let p1 = perm_index(ALPHA_PRED[1]);
            let u0 = sign_mask(ALPHA_INPUT[0]);
            let u1 = sign_mask(ALPHA_INPUT[1]);
            let aq0 = sign_mask(ALPHA_PARITY[0]);
            let aq1 = sign_mask(ALPHA_PARITY[1]);
            let n0 = perm_index(NEXT_STATE[0]);
            let n1 = perm_index(NEXT_STATE[1]);
            let bq0 = sign_mask(BRANCH_PARITY[0]);
            let bq1 = sign_mask(BRANCH_PARITY[1]);
            let neg_zero = _mm256_set1_ps(-0.0);
            let negv = _mm256_set1_ps(NEG);
            let n = sys.len();
            let ap = alpha.as_mut_ptr();
            let bp = beta.as_mut_ptr();
            let mut prev = _mm256_loadu_ps(ap);
            let mut next = _mm256_loadu_ps(bp.add(n * STATES));
            for i in 0..n {
                let j = n - 1 - i;
                // Alpha step i: predecessors gathered by state, branch
                // metric signs applied per lane.
                let hs = _mm256_set1_ps(0.5 * (sys[i] + apriori[i]));
                let hp = _mm256_set1_ps(0.5 * par[i]);
                let c0 = _mm256_add_ps(
                    _mm256_add_ps(_mm256_permutevar8x32_ps(prev, p0), _mm256_xor_ps(hs, u0)),
                    _mm256_xor_ps(hp, aq0),
                );
                let c1 = _mm256_add_ps(
                    _mm256_add_ps(_mm256_permutevar8x32_ps(prev, p1), _mm256_xor_ps(hs, u1)),
                    _mm256_xor_ps(hp, aq1),
                );
                // max(c1, max(c0, NEG)): candidate-first operand order so
                // MAXPS tie/NaN semantics match the scalar `if c > best`.
                let arow = _mm256_max_ps(c1, _mm256_max_ps(c0, negv));
                _mm256_storeu_ps(ap.add((i + 1) * STATES), arow);
                prev = arow;
                // Beta step j: successors gathered by state; u = 0 adds
                // +hs on every lane, u = 1 adds −hs.
                let hs = _mm256_set1_ps(0.5 * (sys[j] + apriori[j]));
                let hp = _mm256_set1_ps(0.5 * par[j]);
                let d0 = _mm256_add_ps(
                    _mm256_add_ps(_mm256_permutevar8x32_ps(next, n0), hs),
                    _mm256_xor_ps(hp, bq0),
                );
                let d1 = _mm256_add_ps(
                    _mm256_add_ps(
                        _mm256_permutevar8x32_ps(next, n1),
                        _mm256_xor_ps(hs, neg_zero),
                    ),
                    _mm256_xor_ps(hp, bq1),
                );
                let brow = _mm256_max_ps(d1, _mm256_max_ps(d0, negv));
                _mm256_storeu_ps(bp.add(j * STATES), brow);
                next = brow;
            }
        }
    }

    /// In-register twin of `turbo::reduce_states`: the same balanced tree
    /// (adjacent pairs, quads, halves, then the NEG seed), built from
    /// candidate-first MAXPS so every node has the scalar `pick`
    /// semantics. Lane 0 of the result holds the reduction.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn reduce_states_lane0(m: __m256, negv: __m256) -> __m256 {
        // Pairs: lane 2t ← pick(m[2t], m[2t+1]).
        let r1 = _mm256_max_ps(_mm256_movehdup_ps(m), _mm256_moveldup_ps(m));
        // Quads: lane 4t ← pick(pair 4t, pair 4t+2).
        let r2 = _mm256_max_ps(_mm256_permute_ps(r1, 0b01_00_11_10), r1);
        // Halves: lane 0 ← pick(quad 0, quad 4).
        let r3 = _mm256_max_ps(_mm256_permute2f128_ps(r2, r2, 0x01), r2);
        // Seed: pick(NEG, tree) with the tree as the candidate.
        _mm256_max_ps(r3, negv)
    }

    /// Vector twin of `turbo::scalar_extrinsic`: the two 8-branch metric
    /// rows are formed vectorized and reduced in-register by the same
    /// balanced tree `finish_llr` uses (`turbo::reduce_states`), so the
    /// reduction never round-trips through memory and the max order is
    /// identical on both paths by construction. The final APP assembly
    /// repeats `finish_llr`'s scalar arithmetic on the extracted maxima.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support; `alpha`/`beta` must
    /// hold at least `(sys.len() + 1) * 8` elements.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn turbo_extrinsic(
        sys: &[f32],
        par: &[f32],
        apriori: &[f32],
        alpha: &[f32],
        beta: &[f32],
        extrinsic: &mut [f32],
    ) {
        unsafe {
            let n0 = perm_index(NEXT_STATE[0]);
            let n1 = perm_index(NEXT_STATE[1]);
            let q0 = sign_mask(BRANCH_PARITY[0]);
            let q1 = sign_mask(BRANCH_PARITY[1]);
            let negv = _mm256_set1_ps(NEG);
            for i in 0..sys.len() {
                let a = _mm256_loadu_ps(alpha.as_ptr().add(i * STATES));
                let b = _mm256_loadu_ps(beta.as_ptr().add((i + 1) * STATES));
                let hp = _mm256_set1_ps(0.5 * par[i]);
                let v0 = _mm256_add_ps(
                    _mm256_add_ps(a, _mm256_permutevar8x32_ps(b, n0)),
                    _mm256_xor_ps(hp, q0),
                );
                let v1 = _mm256_add_ps(
                    _mm256_add_ps(a, _mm256_permutevar8x32_ps(b, n1)),
                    _mm256_xor_ps(hp, q1),
                );
                let best0 = _mm256_cvtss_f32(reduce_states_lane0(v0, negv));
                let best1 = _mm256_cvtss_f32(reduce_states_lane0(v1, negv));
                let ls = sys[i] + apriori[i];
                let app = (best0 + 0.5 * ls) - (best1 - 0.5 * ls);
                extrinsic[i] = app - ls;
            }
        }
    }

    /// Deinterleaves 8 complex symbols (two vectors) into an (re×8, im×8)
    /// pair in symbol order.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn deinterleave8(v0: __m256, v1: __m256) -> (__m256, __m256) {
        let order = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
        let re = _mm256_permutevar8x32_ps(_mm256_shuffle_ps(v0, v1, 0x88), order);
        let im = _mm256_permutevar8x32_ps(_mm256_shuffle_ps(v0, v1, 0xDD), order);
        (re, im)
    }

    /// QPSK max-log demap: `out = a·y.re, a·y.im` per symbol with
    /// `a = 2·√2 / noise_var` — identical to the scalar expression, just
    /// eight floats per instruction (the LLR stream layout matches the
    /// interleaved complex layout exactly).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support. `symbols.len()` must be
    /// a multiple of 8 and `out.len() == 2·symbols.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn demap_qpsk(symbols: &[Complex32], noise_var: f32, out: &mut [f32]) {
        unsafe {
            debug_assert_eq!(out.len(), symbols.len() * 2);
            let a = 2.0 * std::f32::consts::SQRT_2 / noise_var;
            let av = _mm256_set1_ps(a);
            let sp = symbols.as_ptr();
            let op = out.as_mut_ptr();
            let mut i = 0;
            while i + 4 <= symbols.len() {
                let v = load(sp.add(i));
                _mm256_storeu_ps(op.add(2 * i), _mm256_mul_ps(av, v));
                i += 4;
            }
        }
    }

    /// One Gray-coded PAM axis of the 16-QAM max-log demap, vectorized
    /// across 8 symbols. Reproduces `axis_llr_2bit`'s level table and min
    /// chains exactly (sequential `min` in table order, seeded at +∞).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn axis_llr_2bit_x8(x: __m256, d: f32, inv: __m256) -> (__m256, __m256) {
        // Levels in scalar table order: 00→d, 01→3d, 10→−d, 11→−3d.
        let dist = |level: f32| {
            let t = _mm256_sub_ps(x, _mm256_set1_ps(level));
            _mm256_mul_ps(t, t)
        };
        let d00 = dist(d);
        let d01 = dist(3.0 * d);
        let d10 = dist(-d);
        let d11 = dist(-3.0 * d);
        let inf = _mm256_set1_ps(f32::INFINITY);
        // k = 0 (mask 0b10): best0 over {00, 01}, best1 over {10, 11}.
        let b0 = _mm256_min_ps(_mm256_min_ps(inf, d00), d01);
        let b1 = _mm256_min_ps(_mm256_min_ps(inf, d10), d11);
        let l0 = _mm256_mul_ps(_mm256_sub_ps(b1, b0), inv);
        // k = 1 (mask 0b01): best0 over {00, 10}, best1 over {01, 11}.
        let b0 = _mm256_min_ps(_mm256_min_ps(inf, d00), d10);
        let b1 = _mm256_min_ps(_mm256_min_ps(inf, d01), d11);
        let l1 = _mm256_mul_ps(_mm256_sub_ps(b1, b0), inv);
        (l0, l1)
    }

    /// 16-QAM max-log demap over a multiple-of-8 block; output order per
    /// symbol is `[i0, q0, i1, q1]`, matching the scalar interleave swap.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support. `symbols.len()` must be
    /// a multiple of 8 and `out.len() == 4·symbols.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn demap_qam16(symbols: &[Complex32], noise_var: f32, out: &mut [f32]) {
        unsafe {
            debug_assert_eq!(out.len(), symbols.len() * 4);
            let d = Modulation::Qam16.norm();
            let inv = _mm256_set1_ps(1.0 / noise_var);
            let sp = symbols.as_ptr();
            let mut i = 0;
            while i + 8 <= symbols.len() {
                let (re, im) = deinterleave8(load(sp.add(i)), load(sp.add(i + 4)));
                let (i0, i1) = axis_llr_2bit_x8(re, d, inv);
                let (q0, q1) = axis_llr_2bit_x8(im, d, inv);
                let mut li0 = [0.0f32; 8];
                let mut li1 = [0.0f32; 8];
                let mut lq0 = [0.0f32; 8];
                let mut lq1 = [0.0f32; 8];
                _mm256_storeu_ps(li0.as_mut_ptr(), i0);
                _mm256_storeu_ps(li1.as_mut_ptr(), i1);
                _mm256_storeu_ps(lq0.as_mut_ptr(), q0);
                _mm256_storeu_ps(lq1.as_mut_ptr(), q1);
                for s in 0..8 {
                    let base = (i + s) * 4;
                    out[base] = li0[s];
                    out[base + 1] = lq0[s];
                    out[base + 2] = li1[s];
                    out[base + 3] = lq1[s];
                }
                i += 8;
            }
        }
    }

    /// One Gray-coded PAM axis of the 64-QAM max-log demap, vectorized
    /// across 8 symbols. Level table and min order match `axis_llr_3bit`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn axis_llr_3bit_x8(x: __m256, d: f32, inv: __m256) -> (__m256, __m256, __m256) {
        // Scalar table order: 000→3d, 001→d, 010→5d, 011→7d,
        //                     100→−3d, 101→−d, 110→−5d, 111→−7d.
        let dist = |level: f32| {
            let t = _mm256_sub_ps(x, _mm256_set1_ps(level));
            _mm256_mul_ps(t, t)
        };
        let d000 = dist(3.0 * d);
        let d001 = dist(d);
        let d010 = dist(5.0 * d);
        let d011 = dist(7.0 * d);
        let d100 = dist(-3.0 * d);
        let d101 = dist(-d);
        let d110 = dist(-5.0 * d);
        let d111 = dist(-7.0 * d);
        let inf = _mm256_set1_ps(f32::INFINITY);
        let chain4 = |a, b, c, e| {
            _mm256_min_ps(_mm256_min_ps(_mm256_min_ps(_mm256_min_ps(inf, a), b), c), e)
        };
        // k = 0 (mask 0b100).
        let l0 = _mm256_mul_ps(
            _mm256_sub_ps(
                chain4(d100, d101, d110, d111),
                chain4(d000, d001, d010, d011),
            ),
            inv,
        );
        // k = 1 (mask 0b010).
        let l1 = _mm256_mul_ps(
            _mm256_sub_ps(
                chain4(d010, d011, d110, d111),
                chain4(d000, d001, d100, d101),
            ),
            inv,
        );
        // k = 2 (mask 0b001).
        let l2 = _mm256_mul_ps(
            _mm256_sub_ps(
                chain4(d001, d011, d101, d111),
                chain4(d000, d010, d100, d110),
            ),
            inv,
        );
        (l0, l1, l2)
    }

    /// 64-QAM max-log demap over a multiple-of-8 block; output order per
    /// symbol is `[i0, q0, i1, q1, i2, q2]`, matching the scalar reorder.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support. `symbols.len()` must be
    /// a multiple of 8 and `out.len() == 6·symbols.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn demap_qam64(symbols: &[Complex32], noise_var: f32, out: &mut [f32]) {
        unsafe {
            debug_assert_eq!(out.len(), symbols.len() * 6);
            let d = Modulation::Qam64.norm();
            let inv = _mm256_set1_ps(1.0 / noise_var);
            let sp = symbols.as_ptr();
            let mut i = 0;
            while i + 8 <= symbols.len() {
                let (re, im) = deinterleave8(load(sp.add(i)), load(sp.add(i + 4)));
                let (i0, i1, i2) = axis_llr_3bit_x8(re, d, inv);
                let (q0, q1, q2) = axis_llr_3bit_x8(im, d, inv);
                let mut lanes = [[0.0f32; 8]; 6];
                _mm256_storeu_ps(lanes[0].as_mut_ptr(), i0);
                _mm256_storeu_ps(lanes[1].as_mut_ptr(), q0);
                _mm256_storeu_ps(lanes[2].as_mut_ptr(), i1);
                _mm256_storeu_ps(lanes[3].as_mut_ptr(), q1);
                _mm256_storeu_ps(lanes[4].as_mut_ptr(), i2);
                _mm256_storeu_ps(lanes[5].as_mut_ptr(), q2);
                for s in 0..8 {
                    let base = (i + s) * 6;
                    for (b, lane) in lanes.iter().enumerate() {
                        out[base + b] = lane[s];
                    }
                }
                i += 8;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llr::{demap_block, maxlog_llr};
    use crate::rng::Xoshiro256;

    fn random_symbols(n: usize, seed: u64, spread: f32) -> Vec<Complex32> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Complex32::new(
                    spread * (rng.next_f32() - 0.5),
                    spread * (rng.next_f32() - 0.5),
                )
            })
            .collect()
    }

    #[test]
    fn dispatch_toggles_and_labels() {
        // The only test that mutates the global dispatch mode; safe to run
        // alongside the others because both paths are bit-identical.
        force_scalar(true);
        assert!(!simd_enabled());
        assert_eq!(dispatch_label(), "scalar");
        force_scalar(false);
        assert_eq!(simd_enabled(), simd_available());
        let label = dispatch_label();
        assert!(label == "avx2+fma" || label == "scalar");
    }

    #[test]
    fn cmul_add_assign_matches_scalar_bitwise() {
        for n in [1, 3, 4, 7, 8, 12, 300, 301] {
            let w = random_symbols(n, 10 + n as u64, 2.0);
            let x = random_symbols(n, 20 + n as u64, 2.0);
            let mut acc = random_symbols(n, 30 + n as u64, 2.0);
            let mut reference = acc.clone();
            for i in 0..n {
                reference[i] = reference[i].mul_add(w[i], x[i]);
            }
            cmul_add_assign(&mut acc, &w, &x);
            for i in 0..n {
                assert!(
                    acc[i].re.to_bits() == reference[i].re.to_bits()
                        && acc[i].im.to_bits() == reference[i].im.to_bits(),
                    "n={n} i={i}: {:?} vs {:?}",
                    acc[i],
                    reference[i]
                );
            }
        }
    }

    #[test]
    fn demap_matches_scalar_bitwise_all_modulations() {
        for m in Modulation::ALL {
            for n in [8, 16, 24, 37, 300] {
                let symbols = random_symbols(n, 100 + n as u64, 3.0);
                let noise_var = 0.137f32;
                let mut scalar = Vec::new();
                for &y in &symbols {
                    maxlog_llr(m, y, noise_var, &mut scalar);
                }
                // demap_block routes through the SIMD path when available.
                let fast = demap_block(m, &symbols, noise_var);
                assert_eq!(fast.len(), scalar.len(), "{m} n={n}");
                for (i, (a, b)) in fast.iter().zip(&scalar).enumerate() {
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "{m} n={n} bit {i}: {a} vs {b} ({:08x} vs {:08x})",
                        a.to_bits(),
                        b.to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn cmul_wrappers_match_scalar_bitwise() {
        for n in [1, 3, 4, 5, 8, 33, 300] {
            let y = random_symbols(n, 40 + n as u64, 3.0);
            let x = random_symbols(n, 50 + n as u64, 3.0);
            let mut out = vec![Complex32::ZERO; n];
            cmul_into(&mut out, &y, &x);
            let mut conj_out = vec![Complex32::ZERO; n];
            cmul_conj_into(&mut conj_out, &y, &x);
            let mut assign = y.clone();
            cmul_conj_assign(&mut assign, &x);
            for i in 0..n {
                let plain = y[i] * x[i];
                let conj = y[i] * x[i].conj();
                for (got, want, what) in [
                    (out[i], plain, "cmul_into"),
                    (conj_out[i], conj, "cmul_conj_into"),
                    (assign[i], conj, "cmul_conj_assign"),
                ] {
                    assert!(
                        got.re.to_bits() == want.re.to_bits()
                            && got.im.to_bits() == want.im.to_bits(),
                        "{what} n={n} i={i}: {got:?} vs {want:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn demap_handles_extreme_but_finite_inputs() {
        for m in Modulation::ALL {
            let symbols: Vec<Complex32> = (0..16)
                .map(|i| {
                    let huge = if i % 2 == 0 { 1.0e30 } else { -1.0e30 };
                    Complex32::new(huge, 1.0e-30)
                })
                .collect();
            let mut scalar = Vec::new();
            for &y in &symbols {
                maxlog_llr(m, y, 0.5, &mut scalar);
            }
            let fast = demap_block(m, &symbols, 0.5);
            assert_eq!(fast.len(), scalar.len());
            for (a, b) in fast.iter().zip(&scalar) {
                assert_eq!(a.to_bits(), b.to_bits(), "{m}");
            }
        }
    }
}
