//! FIR filtering for the receiver front-end.
//!
//! The paper's Fig. 2 front-end includes a receive filter ahead of CP
//! removal. This module provides direct-form FIR filtering and a
//! windowed-sinc low-pass designer good enough for the benchmark's
//! oversampled front-end model.

use crate::complex::Complex32;

/// A real-coefficient FIR filter applied to complex samples.
#[derive(Clone, Debug, PartialEq)]
pub struct FirFilter {
    taps: Vec<f32>,
}

impl FirFilter {
    /// Builds a filter from explicit taps.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<f32>) -> Self {
        assert!(!taps.is_empty(), "filter needs at least one tap");
        FirFilter { taps }
    }

    /// Designs a windowed-sinc (Hamming) low-pass filter with normalised
    /// cutoff `cutoff` (fraction of Nyquist, in `(0, 1)`) and `n_taps`
    /// taps, unit DC gain.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` is outside `(0, 1)` or `n_taps == 0`.
    pub fn low_pass(cutoff: f32, n_taps: usize) -> Self {
        assert!(cutoff > 0.0 && cutoff < 1.0, "cutoff must be in (0, 1)");
        assert!(n_taps > 0, "need at least one tap");
        let mid = (n_taps - 1) as f32 / 2.0;
        let mut taps: Vec<f32> = (0..n_taps)
            .map(|i| {
                let x = i as f32 - mid;
                let sinc = if x.abs() < 1e-6 {
                    cutoff
                } else {
                    (std::f32::consts::PI * cutoff * x).sin() / (std::f32::consts::PI * x)
                };
                let hamming = 0.54
                    - 0.46 * (std::f32::consts::TAU * i as f32 / (n_taps.max(2) - 1) as f32).cos();
                sinc * hamming
            })
            .collect();
        let sum: f32 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        FirFilter { taps }
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// `true` if the filter has no taps (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// The taps.
    pub fn taps(&self) -> &[f32] {
        &self.taps
    }

    /// Filters a block, returning `input.len()` samples with the filter's
    /// group delay compensated (the output is aligned with the input; the
    /// first and last `len/2` samples see zero-padded edges).
    pub fn filter(&self, input: &[Complex32]) -> Vec<Complex32> {
        let half = self.taps.len() / 2;
        let n = input.len();
        (0..n)
            .map(|i| {
                let mut acc = Complex32::ZERO;
                for (k, &t) in self.taps.iter().enumerate() {
                    // Output sample i uses input[i + half - k] (aligned).
                    let idx = i as isize + half as isize - k as isize;
                    if idx >= 0 && (idx as usize) < n {
                        acc += input[idx as usize].scale(t);
                    }
                }
                acc
            })
            .collect()
    }

    /// Magnitude response at normalised frequency `f` (fraction of
    /// Nyquist).
    pub fn magnitude_at(&self, f: f32) -> f32 {
        let omega = std::f32::consts::PI * f;
        let mut acc = Complex32::ZERO;
        for (k, &t) in self.taps.iter().enumerate() {
            acc += Complex32::cis(-omega * k as f32).scale(t);
        }
        acc.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn identity_filter_passes_through() {
        let f = FirFilter::new(vec![1.0]);
        let x: Vec<Complex32> = (0..8).map(|i| Complex32::new(i as f32, -1.0)).collect();
        assert_eq!(f.filter(&x), x);
    }

    #[test]
    fn low_pass_has_unit_dc_gain() {
        let f = FirFilter::low_pass(0.4, 31);
        assert!((f.magnitude_at(0.0) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn low_pass_attenuates_high_frequencies() {
        let f = FirFilter::low_pass(0.25, 63);
        let passband = f.magnitude_at(0.1);
        let stopband = f.magnitude_at(0.8);
        assert!(passband > 0.95, "passband {passband}");
        assert!(stopband < 0.05, "stopband {stopband}");
    }

    #[test]
    fn filtering_suppresses_a_high_frequency_tone() {
        let f = FirFilter::low_pass(0.25, 63);
        let n = 256;
        // High-frequency tone at 0.9 × Nyquist.
        let tone: Vec<Complex32> = (0..n)
            .map(|i| Complex32::cis(std::f32::consts::PI * 0.9 * i as f32))
            .collect();
        let out = f.filter(&tone);
        let in_power = crate::complex::mean_power(&tone[64..192]);
        let out_power = crate::complex::mean_power(&out[64..192]);
        assert!(
            out_power < 0.01 * in_power,
            "tone not suppressed: {out_power} vs {in_power}"
        );
    }

    #[test]
    fn filtering_preserves_a_low_frequency_tone() {
        let f = FirFilter::low_pass(0.5, 63);
        let n = 256;
        let tone: Vec<Complex32> = (0..n)
            .map(|i| Complex32::cis(std::f32::consts::PI * 0.05 * i as f32))
            .collect();
        let out = f.filter(&tone);
        let in_power = crate::complex::mean_power(&tone[64..192]);
        let out_power = crate::complex::mean_power(&out[64..192]);
        assert!((out_power / in_power - 1.0).abs() < 0.05);
    }

    #[test]
    fn group_delay_is_compensated() {
        // An impulse stays centred at its original position.
        let f = FirFilter::low_pass(0.5, 31);
        let mut x = vec![Complex32::ZERO; 64];
        x[32] = Complex32::ONE;
        let y = f.filter(&x);
        let peak = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(peak, 32);
    }

    #[test]
    fn random_signal_energy_bounded() {
        let f = FirFilter::low_pass(0.5, 31);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let x: Vec<Complex32> = (0..128)
            .map(|_| Complex32::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5))
            .collect();
        let y = f.filter(&x);
        // A half-band low-pass keeps roughly half the white-noise power.
        let ratio = crate::complex::mean_power(&y) / crate::complex::mean_power(&x);
        assert!((0.3..=0.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn invalid_cutoff_rejected() {
        FirFilter::low_pass(1.5, 11);
    }
}
