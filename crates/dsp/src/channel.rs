//! MIMO fading and AWGN channel models.
//!
//! The benchmark synthesises its subframe input data at initialisation; to
//! make the receiver do realistic work we pass the transmitted grid through
//! a frequency-selective block-fading MIMO channel with additive white
//! Gaussian noise. Each (receive antenna, layer) pair gets an independent
//! L-tap channel impulse response, constant over a subframe — the standard
//! quasi-static model for a 1 ms slot at walking speeds.

use crate::complex::Complex32;
use crate::rng::Xoshiro256;

/// A frequency-selective MIMO channel realisation for one subframe.
///
/// # Example
///
/// ```
/// use lte_dsp::channel::MimoChannel;
/// use lte_dsp::Xoshiro256;
///
/// let mut rng = Xoshiro256::seed_from_u64(1);
/// let ch = MimoChannel::randomize(2, 2, 4, &mut rng);
/// let h = ch.frequency_response(0, 1, 48); // rx 0, layer 1, 48 subcarriers
/// assert_eq!(h.len(), 48);
/// ```
#[derive(Clone, Debug)]
pub struct MimoChannel {
    n_rx: usize,
    n_layers: usize,
    /// `taps[rx][layer]` — time-domain impulse response.
    taps: Vec<Vec<Vec<Complex32>>>,
}

impl MimoChannel {
    /// Draws an independent Rayleigh channel with `n_taps` equal-average-
    /// power taps for each (rx, layer) pair, normalised to unit average
    /// energy per pair.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn randomize(n_rx: usize, n_layers: usize, n_taps: usize, rng: &mut Xoshiro256) -> Self {
        assert!(
            n_rx > 0 && n_layers > 0 && n_taps > 0,
            "dimensions must be positive"
        );
        let scale = (1.0 / (n_taps as f64)).sqrt() as f32 / std::f32::consts::SQRT_2;
        let taps = (0..n_rx)
            .map(|_| {
                (0..n_layers)
                    .map(|_| {
                        (0..n_taps)
                            .map(|_| {
                                Complex32::new(
                                    rng.next_gaussian() as f32 * scale,
                                    rng.next_gaussian() as f32 * scale,
                                )
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        MimoChannel {
            n_rx,
            n_layers,
            taps,
        }
    }

    /// An ideal channel: identity mapping from layer `l` to antenna `l`
    /// (requires `n_rx >= n_layers`), flat response. Useful for tests.
    pub fn identity(n_rx: usize, n_layers: usize) -> Self {
        assert!(n_rx >= n_layers, "identity channel needs n_rx >= n_layers");
        let taps = (0..n_rx)
            .map(|rx| {
                (0..n_layers)
                    .map(|l| {
                        vec![if rx == l {
                            Complex32::ONE
                        } else {
                            Complex32::ZERO
                        }]
                    })
                    .collect()
            })
            .collect();
        MimoChannel {
            n_rx,
            n_layers,
            taps,
        }
    }

    /// Number of receive antennas.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// Number of transmit layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Frequency response of the (rx, layer) path over `n_sc` contiguous
    /// subcarriers: the DFT of the tap vector evaluated at fractions of the
    /// allocation width.
    ///
    /// # Panics
    ///
    /// Panics if `rx` or `layer` is out of range, or `n_sc == 0`.
    pub fn frequency_response(&self, rx: usize, layer: usize, n_sc: usize) -> Vec<Complex32> {
        assert!(n_sc > 0, "need at least one subcarrier");
        let taps = &self.taps[rx][layer];
        (0..n_sc)
            .map(|k| {
                let mut h = Complex32::ZERO;
                for (t, &tap) in taps.iter().enumerate() {
                    let theta = -std::f64::consts::TAU * (t as f64) * (k as f64)
                        / (n_sc.max(2 * taps.len())) as f64;
                    h += tap * Complex32::new(theta.cos() as f32, theta.sin() as f32);
                }
                h
            })
            .collect()
    }

    /// Precomputes all `(rx, layer)` frequency responses for an
    /// allocation: `responses[rx][layer][subcarrier]`. The taps are
    /// static per subframe, so callers applying the channel to many
    /// symbols should hoist this once (see [`apply_with`]).
    ///
    /// [`apply_with`]: MimoChannel::apply_with
    pub fn responses(&self, n_sc: usize) -> Vec<Vec<Vec<Complex32>>> {
        (0..self.n_rx)
            .map(|rx| {
                (0..self.n_layers)
                    .map(|l| self.frequency_response(rx, l, n_sc))
                    .collect()
            })
            .collect()
    }

    /// Applies the channel to per-layer frequency-domain symbols:
    /// `y[rx][k] = Σ_layer H[rx][layer][k] · x[layer][k]`.
    ///
    /// Convenience wrapper that recomputes the frequency responses; use
    /// [`responses`] + [`apply_with`] when processing many symbols of
    /// one subframe.
    ///
    /// # Panics
    ///
    /// Panics if `layers.len() != n_layers` or the layers have unequal
    /// lengths.
    ///
    /// [`responses`]: MimoChannel::responses
    /// [`apply_with`]: MimoChannel::apply_with
    pub fn apply(&self, layers: &[Vec<Complex32>]) -> Vec<Vec<Complex32>> {
        assert_eq!(layers.len(), self.n_layers, "layer count mismatch");
        let n_sc = layers.first().map_or(0, |l| l.len());
        self.apply_with(&self.responses(n_sc), layers)
    }

    /// [`apply`](MimoChannel::apply) with precomputed frequency
    /// responses.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are inconsistent.
    pub fn apply_with(
        &self,
        responses: &[Vec<Vec<Complex32>>],
        layers: &[Vec<Complex32>],
    ) -> Vec<Vec<Complex32>> {
        assert_eq!(layers.len(), self.n_layers, "layer count mismatch");
        assert_eq!(responses.len(), self.n_rx, "response antenna mismatch");
        let n_sc = layers[0].len();
        for l in layers {
            assert_eq!(l.len(), n_sc, "all layers must have equal length");
        }
        responses
            .iter()
            .map(|per_layer| {
                assert_eq!(per_layer.len(), self.n_layers, "response layer mismatch");
                (0..n_sc)
                    .map(|k| {
                        let mut y = Complex32::ZERO;
                        for (l, x) in layers.iter().enumerate() {
                            y = y.mul_add(per_layer[l][k], x[k]);
                        }
                        y
                    })
                    .collect()
            })
            .collect()
    }
}

/// Adds complex AWGN with total noise power `noise_var` (`E[|n|²]`) to a
/// block, in place.
pub fn add_awgn(samples: &mut [Complex32], noise_var: f32, rng: &mut Xoshiro256) {
    let sigma = (noise_var / 2.0).sqrt();
    for z in samples.iter_mut() {
        *z += Complex32::new(
            sigma * rng.next_gaussian() as f32,
            sigma * rng.next_gaussian() as f32,
        );
    }
}

/// Noise variance that achieves the given SNR (dB) for unit-power signal.
pub fn noise_var_for_snr_db(snr_db: f64) -> f32 {
    crate::math::from_db(-snr_db) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::mean_power;

    #[test]
    fn identity_channel_passes_through() {
        let ch = MimoChannel::identity(2, 2);
        let layers = vec![
            vec![Complex32::new(1.0, 0.0); 12],
            vec![Complex32::new(0.0, 1.0); 12],
        ];
        let y = ch.apply(&layers);
        assert_eq!(y[0], layers[0]);
        assert_eq!(y[1], layers[1]);
    }

    #[test]
    fn random_channel_has_unit_average_energy() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let mut total = 0.0f64;
        let trials = 500;
        for _ in 0..trials {
            let ch = MimoChannel::randomize(1, 1, 4, &mut rng);
            let e: f32 = ch.taps[0][0].iter().map(|t| t.norm_sqr()).sum();
            total += e as f64;
        }
        let avg = total / trials as f64;
        assert!((avg - 1.0).abs() < 0.1, "average tap energy {avg}");
    }

    #[test]
    fn frequency_response_is_selective_with_multiple_taps() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let ch = MimoChannel::randomize(1, 1, 6, &mut rng);
        let h = ch.frequency_response(0, 0, 120);
        let first = h[0].abs();
        let varied = h.iter().any(|z| (z.abs() - first).abs() > 0.05);
        assert!(varied, "6-tap channel should be frequency selective");
    }

    #[test]
    fn flat_for_single_tap() {
        let mut rng = Xoshiro256::seed_from_u64(12);
        let ch = MimoChannel::randomize(2, 1, 1, &mut rng);
        let h = ch.frequency_response(1, 0, 36);
        for z in &h {
            assert!((z.abs() - h[0].abs()).abs() < 1e-6);
        }
    }

    #[test]
    fn apply_superimposes_layers() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let ch = MimoChannel::randomize(2, 2, 1, &mut rng);
        let x0 = vec![Complex32::ONE; 12];
        let x1 = vec![Complex32::I; 12];
        let both = ch.apply(&[x0.clone(), x1.clone()]);
        let only0 = ch.apply(&[x0, vec![Complex32::ZERO; 12]]);
        let only1 = ch.apply(&[vec![Complex32::ZERO; 12], x1]);
        for rx in 0..2 {
            for k in 0..12 {
                let sum = only0[rx][k] + only1[rx][k];
                assert!((both[rx][k] - sum).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn awgn_power_matches_request() {
        let mut rng = Xoshiro256::seed_from_u64(14);
        let mut block = vec![Complex32::ZERO; 50_000];
        add_awgn(&mut block, 0.25, &mut rng);
        let p = mean_power(&block);
        assert!((p - 0.25).abs() < 0.01, "noise power {p}");
    }

    #[test]
    fn snr_to_noise_var() {
        assert!((noise_var_for_snr_db(0.0) - 1.0).abs() < 1e-6);
        assert!((noise_var_for_snr_db(10.0) - 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "layer count")]
    fn apply_checks_layer_count() {
        MimoChannel::identity(2, 2).apply(&[vec![Complex32::ZERO; 4]]);
    }
}

/// A standardised power-delay profile (TS 36.101 Annex B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DelayProfile {
    /// Extended Pedestrian A: 410 ns excess delay, mild selectivity.
    Epa,
    /// Extended Vehicular A: 2.5 µs excess delay.
    Eva,
    /// Extended Typical Urban: 5 µs excess delay, strong selectivity.
    Etu,
}

impl DelayProfile {
    /// `(delay in ns, relative power in dB)` taps of the profile.
    pub fn taps(self) -> &'static [(f64, f64)] {
        match self {
            DelayProfile::Epa => &[
                (0.0, 0.0),
                (30.0, -1.0),
                (70.0, -2.0),
                (90.0, -3.0),
                (110.0, -8.0),
                (190.0, -17.2),
                (410.0, -20.8),
            ],
            DelayProfile::Eva => &[
                (0.0, 0.0),
                (30.0, -1.5),
                (150.0, -1.4),
                (310.0, -3.6),
                (370.0, -0.6),
                (710.0, -9.1),
                (1090.0, -7.0),
                (1730.0, -12.0),
                (2510.0, -16.9),
            ],
            DelayProfile::Etu => &[
                (0.0, -1.0),
                (50.0, -1.0),
                (120.0, -1.0),
                (200.0, 0.0),
                (230.0, 0.0),
                (500.0, 0.0),
                (1600.0, -3.0),
                (2300.0, -5.0),
                (5000.0, -7.0),
            ],
        }
    }

    /// Per-sample-delay tap powers for an allocation of `n_sc`
    /// subcarriers (sample rate `n_sc × 15 kHz`): profile delays are
    /// quantised to sample indices and coincident taps' powers combined,
    /// normalised to unit total power.
    pub fn sampled_powers(self, n_sc: usize) -> Vec<f64> {
        assert!(n_sc > 0, "need at least one subcarrier");
        let sample_rate = n_sc as f64 * 15_000.0;
        let mut powers: Vec<f64> = Vec::new();
        for &(delay_ns, power_db) in self.taps() {
            let idx = (delay_ns * 1e-9 * sample_rate).round() as usize;
            if powers.len() <= idx {
                powers.resize(idx + 1, 0.0);
            }
            powers[idx] += crate::math::from_db(power_db);
        }
        let total: f64 = powers.iter().sum();
        for p in &mut powers {
            *p /= total;
        }
        powers
    }
}

impl MimoChannel {
    /// Draws a Rayleigh channel whose tap powers follow a standardised
    /// delay profile at the allocation's sample rate.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn from_profile(
        n_rx: usize,
        n_layers: usize,
        profile: DelayProfile,
        n_sc: usize,
        rng: &mut Xoshiro256,
    ) -> Self {
        assert!(n_rx > 0 && n_layers > 0, "dimensions must be positive");
        let powers = profile.sampled_powers(n_sc);
        let taps = (0..n_rx)
            .map(|_| {
                (0..n_layers)
                    .map(|_| {
                        powers
                            .iter()
                            .map(|&p| {
                                let sigma = (p / 2.0).sqrt() as f32;
                                Complex32::new(
                                    sigma * rng.next_gaussian() as f32,
                                    sigma * rng.next_gaussian() as f32,
                                )
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        MimoChannel {
            n_rx,
            n_layers,
            taps,
        }
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;

    #[test]
    fn profiles_normalise_to_unit_power() {
        for profile in [DelayProfile::Epa, DelayProfile::Eva, DelayProfile::Etu] {
            for n_sc in [12usize, 120, 1200] {
                let p = profile.sampled_powers(n_sc);
                let total: f64 = p.iter().sum();
                assert!((total - 1.0).abs() < 1e-12, "{profile:?} n_sc={n_sc}");
            }
        }
    }

    #[test]
    fn delay_spread_orders_epa_eva_etu() {
        let n_sc = 1200; // 18 MHz sampling: resolves the profiles
        let spread = |p: DelayProfile| p.sampled_powers(n_sc).len();
        assert!(spread(DelayProfile::Epa) < spread(DelayProfile::Eva));
        assert!(spread(DelayProfile::Eva) < spread(DelayProfile::Etu));
    }

    #[test]
    fn narrow_allocation_collapses_epa_to_nearly_flat() {
        // 12 subcarriers = 180 kHz sampling: EPA's 410 ns is < 1 sample.
        let p = DelayProfile::Epa.sampled_powers(12);
        assert_eq!(p.len(), 1, "all EPA taps collapse at 180 kHz: {p:?}");
    }

    #[test]
    fn profile_channel_has_unit_average_energy() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let trials = 400;
        let mut total = 0.0f64;
        for _ in 0..trials {
            let ch = MimoChannel::from_profile(1, 1, DelayProfile::Eva, 600, &mut rng);
            let e: f32 = ch.taps[0][0].iter().map(|t| t.norm_sqr()).sum();
            total += e as f64;
        }
        let avg = total / trials as f64;
        assert!((avg - 1.0).abs() < 0.1, "average energy {avg}");
    }

    #[test]
    fn etu_is_more_selective_than_epa() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let variation = |profile: DelayProfile, rng: &mut Xoshiro256| {
            let mut acc = 0.0f64;
            for _ in 0..50 {
                let ch = MimoChannel::from_profile(1, 1, profile, 600, rng);
                let h = ch.frequency_response(0, 0, 600);
                let mean: f32 = h.iter().map(|z| z.abs()).sum::<f32>() / 600.0;
                let var: f32 = h.iter().map(|z| (z.abs() - mean).powi(2)).sum::<f32>() / 600.0;
                acc += (var / (mean * mean).max(1e-9)) as f64;
            }
            acc
        };
        let epa = variation(DelayProfile::Epa, &mut rng);
        let etu = variation(DelayProfile::Etu, &mut rng);
        assert!(etu > epa, "ETU {etu} must vary more than EPA {epa}");
    }
}
