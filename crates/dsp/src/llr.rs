//! Soft symbol demapping (the `soft demap` kernel of Fig. 3).
//!
//! Produces per-bit log-likelihood ratios `LLR = ln P(b=0|y) − ln P(b=1|y)`
//! for equalised symbols, either exactly (log-sum-exp over the
//! constellation) or with the max-log approximation used by practical
//! receivers. A positive LLR favours bit 0.

use crate::complex::Complex32;
use crate::modulation::Modulation;

/// Exact LLRs for one equalised symbol under AWGN with noise variance
/// `noise_var` (per complex dimension pair, i.e. `E[|n|²]`).
///
/// Output length is [`Modulation::bits_per_symbol`], ordered `b0, b1, …`.
///
/// # Panics
///
/// Panics if `noise_var <= 0`.
pub fn exact_llr(modulation: Modulation, y: Complex32, noise_var: f32, out: &mut Vec<f32>) {
    assert!(noise_var > 0.0, "noise variance must be positive");
    let m = modulation.bits_per_symbol();
    let constellation = modulation.constellation();
    let inv = 1.0 / noise_var;
    for k in 0..m {
        let bit_mask = 1usize << (m - 1 - k);
        let mut num = f64::NEG_INFINITY; // log Σ over b_k = 0
        let mut den = f64::NEG_INFINITY; // log Σ over b_k = 1
        for (label, s) in constellation.iter().enumerate() {
            let metric = (-(y - *s).norm_sqr() * inv) as f64;
            if label & bit_mask == 0 {
                num = log_add(num, metric);
            } else {
                den = log_add(den, metric);
            }
        }
        out.push((num - den) as f32);
    }
}

/// Max-log LLRs for one equalised symbol: replaces the log-sum-exp with a
/// max, the standard receiver approximation.
///
/// # Panics
///
/// Panics if `noise_var <= 0`.
pub fn maxlog_llr(modulation: Modulation, y: Complex32, noise_var: f32, out: &mut Vec<f32>) {
    assert!(noise_var > 0.0, "noise variance must be positive");
    match modulation {
        // QPSK max-log is exactly linear in y.
        Modulation::Qpsk => {
            let a = 2.0 * std::f32::consts::SQRT_2 / noise_var;
            out.push(a * y.re);
            out.push(a * y.im);
        }
        Modulation::Qam16 => {
            let d = modulation.norm();
            axis_llr_2bit(y.re, d, noise_var, out);
            let i = out.len();
            axis_llr_2bit(y.im, d, noise_var, out);
            // Interleave: produced [i0 i1 q0 q1], need [b0=i0 b1=q0 b2=i1 b3=q1].
            let q0 = out[i];
            let i1 = out[i - 1];
            out[i - 1] = q0;
            out[i] = i1;
        }
        Modulation::Qam64 => {
            let d = modulation.norm();
            let base = out.len();
            axis_llr_3bit(y.re, d, noise_var, out);
            axis_llr_3bit(y.im, d, noise_var, out);
            // Reorder [i0 i1 i2 q0 q1 q2] → [i0 q0 i1 q1 i2 q2].
            let tmp = [
                out[base],
                out[base + 3],
                out[base + 1],
                out[base + 4],
                out[base + 2],
                out[base + 5],
            ];
            out[base..base + 6].copy_from_slice(&tmp);
        }
    }
}

/// Demaps a block of symbols with the max-log demapper.
pub fn demap_block(modulation: Modulation, symbols: &[Complex32], noise_var: f32) -> Vec<f32> {
    let mut out = Vec::with_capacity(symbols.len() * modulation.bits_per_symbol());
    demap_block_into(modulation, symbols, noise_var, &mut out);
    out
}

/// [`demap_block`] appending into a caller-owned buffer — the
/// zero-allocation hot path writes straight into an arena slice.
///
/// Dispatches to the AVX2 demapper when available (see [`crate::simd`]);
/// the vector path is bit-identical to the scalar loop below.
pub fn demap_block_into(
    modulation: Modulation,
    symbols: &[Complex32],
    noise_var: f32,
    out: &mut Vec<f32>,
) {
    if crate::simd::demap_block_maxlog(modulation, symbols, noise_var, out) {
        return;
    }
    for &y in symbols {
        maxlog_llr(modulation, y, noise_var, out);
    }
}

/// Demaps a block of symbols with the exact log-sum-exp demapper — the
/// high-fidelity path the `DegradeDemap` overload policy falls back
/// from when a subframe is behind its deadline budget.
pub fn demap_block_exact(
    modulation: Modulation,
    symbols: &[Complex32],
    noise_var: f32,
) -> Vec<f32> {
    let mut out = Vec::with_capacity(symbols.len() * modulation.bits_per_symbol());
    demap_block_exact_into(modulation, symbols, noise_var, &mut out);
    out
}

/// [`demap_block_exact`] appending into a caller-owned buffer.
pub fn demap_block_exact_into(
    modulation: Modulation,
    symbols: &[Complex32],
    noise_var: f32,
    out: &mut Vec<f32>,
) {
    for &y in symbols {
        exact_llr(modulation, y, noise_var, out);
    }
}

/// Hard decisions from LLRs (`llr >= 0` → bit 0).
pub fn hard_decisions(llrs: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(llrs.len());
    hard_decisions_into(llrs, &mut out);
    out
}

/// [`hard_decisions`] appending into a caller-owned buffer.
pub fn hard_decisions_into(llrs: &[f32], out: &mut Vec<u8>) {
    out.extend(llrs.iter().map(|&l| if l >= 0.0 { 0u8 } else { 1 }));
}

/// HARQ chase combining: accumulates a retransmission's LLRs into the
/// running per-bit sums.
///
/// Chase combining retransmits the identical encoded block; under
/// independent noise the per-bit LLRs of the attempts add, so the
/// combined stream carries the energy of every transmission. The kernel
/// is deliberately a plain element-wise add — the `harq_combining` bench
/// guards its cost.
///
/// # Panics
///
/// Panics if the slices differ in length (retransmissions of one
/// transport block always demap to the same bit count).
pub fn combine_llrs(acc: &mut [f32], update: &[f32]) {
    assert_eq!(
        acc.len(),
        update.len(),
        "chase combining requires identical LLR lengths"
    );
    for (a, &u) in acc.iter_mut().zip(update) {
        *a += u;
    }
}

/// Per-axis Gray-coded 2-bit PAM max-log LLRs (16-QAM axis with levels
/// ±d, ±3d): closed-form piecewise-linear expressions.
fn axis_llr_2bit(x: f32, d: f32, noise_var: f32, out: &mut Vec<f32>) {
    let levels = [(0b00, d), (0b01, 3.0 * d), (0b10, -d), (0b11, -3.0 * d)];
    push_axis_llrs::<2>(x, &levels, 1.0 / noise_var, out);
}

/// Per-axis Gray-coded 3-bit PAM max-log LLRs (64-QAM axis).
fn axis_llr_3bit(x: f32, d: f32, noise_var: f32, out: &mut Vec<f32>) {
    let inv = 1.0 / noise_var;
    let levels = [
        (0b000, 3.0 * d),
        (0b001, d),
        (0b010, 5.0 * d),
        (0b011, 7.0 * d),
        (0b100, -3.0 * d),
        (0b101, -d),
        (0b110, -5.0 * d),
        (0b111, -7.0 * d),
    ];
    push_axis_llrs::<3>(x, &levels, inv, out);
}

/// Shared max-log PAM demapper over an explicit (label, level) table.
fn push_axis_llrs<const BITS: usize>(
    x: f32,
    levels: &[(usize, f32)],
    inv_noise: f32,
    out: &mut Vec<f32>,
) {
    for k in 0..BITS {
        let mask = 1usize << (BITS - 1 - k);
        let mut best0 = f32::INFINITY;
        let mut best1 = f32::INFINITY;
        for &(label, level) in levels {
            let dist = (x - level) * (x - level);
            if label & mask == 0 {
                best0 = best0.min(dist);
            } else {
                best1 = best1.min(dist);
            }
        }
        out.push((best1 - best0) * inv_noise);
    }
}

fn log_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a > b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn maxlog_reference(m: Modulation, y: Complex32, nv: f32) -> Vec<f32> {
        // Set-based max-log over the full constellation — the executable
        // specification the fast per-axis demappers must match.
        let bits = m.bits_per_symbol();
        let c = m.constellation();
        let mut out = Vec::with_capacity(bits);
        for k in 0..bits {
            let mask = 1usize << (bits - 1 - k);
            let mut b0 = f32::INFINITY;
            let mut b1 = f32::INFINITY;
            for (label, s) in c.iter().enumerate() {
                let d = (y - *s).norm_sqr();
                if label & mask == 0 {
                    b0 = b0.min(d);
                } else {
                    b1 = b1.min(d);
                }
            }
            out.push((b1 - b0) / nv);
        }
        out
    }

    #[test]
    fn noiseless_llr_signs_recover_bits() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for m in Modulation::ALL {
            let bits: Vec<u8> = (0..m.bits_per_symbol() * 64)
                .map(|_| (rng.next_u64() & 1) as u8)
                .collect();
            let symbols = m.map_bits(&bits);
            let llrs = demap_block(m, &symbols, 0.01);
            assert_eq!(hard_decisions(&llrs), bits, "{m}");
        }
    }

    #[test]
    fn fast_maxlog_matches_set_based_reference() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for m in Modulation::ALL {
            for _ in 0..500 {
                let y = Complex32::new(3.0 * (rng.next_f32() - 0.5), 3.0 * (rng.next_f32() - 0.5));
                let nv = 0.05 + rng.next_f32();
                let mut fast = Vec::new();
                maxlog_llr(m, y, nv, &mut fast);
                let reference = maxlog_reference(m, y, nv);
                assert_eq!(fast.len(), reference.len());
                for (a, b) in fast.iter().zip(&reference) {
                    assert!(
                        (a - b).abs() <= 1e-3 * (1.0 + b.abs()),
                        "{m}: y={y:?} fast={a} ref={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_llr_close_to_maxlog_at_high_snr() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        for m in Modulation::ALL {
            let bits: Vec<u8> = (0..m.bits_per_symbol())
                .map(|_| (rng.next_u64() & 1) as u8)
                .collect();
            let y = m.map_bits(&bits)[0];
            let nv = 1e-3;
            let mut exact = Vec::new();
            exact_llr(m, y, nv, &mut exact);
            let mut approx = Vec::new();
            maxlog_llr(m, y, nv, &mut approx);
            for (a, b) in exact.iter().zip(&approx) {
                // At high SNR the dominant term wins; signs must agree and
                // magnitudes be within a few percent.
                assert_eq!(a.signum(), b.signum(), "{m}");
                assert!((a - b).abs() < 0.05 * a.abs().max(1.0), "{m}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn llr_scales_inversely_with_noise() {
        let y = Complex32::new(0.4, -0.2);
        let mut l1 = Vec::new();
        let mut l2 = Vec::new();
        maxlog_llr(Modulation::Qam16, y, 0.1, &mut l1);
        maxlog_llr(Modulation::Qam16, y, 0.2, &mut l2);
        for (a, b) in l1.iter().zip(&l2) {
            assert!((a - 2.0 * b).abs() < 1e-4);
        }
    }

    #[test]
    fn qpsk_llr_is_linear() {
        let nv = 0.3;
        let mut out = Vec::new();
        maxlog_llr(Modulation::Qpsk, Complex32::new(0.5, -0.7), nv, &mut out);
        let a = 2.0 * std::f32::consts::SQRT_2 / nv;
        assert!((out[0] - a * 0.5).abs() < 1e-4);
        assert!((out[1] - a * -0.7).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_noise_panics() {
        let mut out = Vec::new();
        maxlog_llr(Modulation::Qpsk, Complex32::ONE, 0.0, &mut out);
    }

    #[test]
    fn hard_decisions_threshold() {
        assert_eq!(hard_decisions(&[1.0, -0.5, 0.0, -0.0]), vec![0, 1, 0, 0]);
    }

    #[test]
    fn combine_llrs_is_elementwise_addition() {
        let mut acc = vec![1.0, -2.0, 0.5, 0.0];
        combine_llrs(&mut acc, &[0.5, -1.0, -2.0, 3.0]);
        assert_eq!(acc, vec![1.5, -3.0, -1.5, 3.0]);
    }

    #[test]
    fn combining_opposed_weak_llrs_follows_the_stronger_vote() {
        // A weak wrong decision is outvoted by a stronger correct one —
        // the essence of chase combining.
        let mut acc = vec![-0.2]; // wrong lean for a transmitted 0
        combine_llrs(&mut acc, &[0.9]); // confident correct retransmission
        assert_eq!(hard_decisions(&acc), vec![0]);
    }

    #[test]
    #[should_panic(expected = "identical LLR lengths")]
    fn combine_llrs_rejects_length_mismatch() {
        let mut acc = vec![0.0; 3];
        combine_llrs(&mut acc, &[0.0; 4]);
    }
}
