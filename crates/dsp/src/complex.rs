//! Single-precision complex arithmetic.
//!
//! The benchmark operates on `f32` baseband samples exactly as the original
//! C implementation did; a dedicated type (rather than `(f32, f32)` tuples)
//! keeps kernel code readable and lets the compiler vectorise butterflies.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f32` real and imaginary parts.
///
/// # Example
///
/// ```
/// use lte_dsp::Complex32;
///
/// let a = Complex32::new(1.0, 2.0);
/// let b = Complex32::new(3.0, -1.0);
/// assert_eq!(a * b, Complex32::new(5.0, 5.0));
/// assert_eq!(a.conj(), Complex32::new(1.0, -2.0));
/// ```
/// Layout note: `repr(C)` guarantees `re` precedes `im` with no padding,
/// so a `&[Complex32]` is reinterpretable as an interleaved `&[f32]` of
/// twice the length — the contract the SIMD kernels in [`crate::simd`]
/// rely on.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex32 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex32 = Complex32 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Complex32 { re, im }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// # Example
    ///
    /// ```
    /// use lte_dsp::Complex32;
    /// let z = Complex32::from_polar(2.0, std::f32::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-6 && (z.im - 2.0).abs() < 1e-6);
    /// ```
    #[inline]
    pub fn from_polar(r: f32, theta: f32) -> Self {
        let (s, c) = theta.sin_cos();
        Complex32::new(r * c, r * s)
    }

    /// `e^{iθ}` — a unit phasor; the workhorse of twiddle-factor generation.
    #[inline]
    pub fn cis(theta: f32) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex32::new(self.re, -self.im)
    }

    /// The squared magnitude `re² + im²` (avoids the square root of [`abs`]).
    ///
    /// [`abs`]: Complex32::abs
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `√(re² + im²)`.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// The argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f32) -> Self {
        Complex32::new(self.re * k, self.im * k)
    }

    /// The multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `self` is zero, mirroring `f32`
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex32::new(self.re / d, -self.im / d)
    }

    /// Fused multiply-accumulate: `self + a * b`.
    ///
    /// Channel-estimation and combining inner loops are chains of these.
    #[inline]
    pub fn mul_add(self, a: Complex32, b: Complex32) -> Self {
        Complex32::new(
            a.re.mul_add(b.re, (-a.im).mul_add(b.im, self.re)),
            a.re.mul_add(b.im, a.im.mul_add(b.re, self.im)),
        )
    }

    /// `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Rotates by +90° (multiplication by `i`) without multiplications.
    #[inline]
    pub fn mul_i(self) -> Self {
        Complex32::new(-self.im, self.re)
    }

    /// Rotates by −90° (multiplication by `−i`) without multiplications.
    #[inline]
    pub fn mul_neg_i(self) -> Self {
        Complex32::new(self.im, -self.re)
    }
}

impl fmt::Debug for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl fmt::Display for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl From<f32> for Complex32 {
    #[inline]
    fn from(re: f32) -> Self {
        Complex32::new(re, 0.0)
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    #[inline]
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    #[inline]
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: f32) -> Complex32 {
        self.scale(rhs)
    }
}

impl Mul<Complex32> for f32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        rhs.scale(self)
    }
}

impl Div for Complex32 {
    type Output = Complex32;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via multiplicative inverse
    fn div(self, rhs: Complex32) -> Complex32 {
        self * rhs.inv()
    }
}

impl Div<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn div(self, rhs: f32) -> Complex32 {
        Complex32::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    #[inline]
    fn neg(self) -> Complex32 {
        Complex32::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex32) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex32) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex32) {
        *self = *self * rhs;
    }
}

impl MulAssign<f32> for Complex32 {
    #[inline]
    fn mul_assign(&mut self, rhs: f32) {
        *self = self.scale(rhs);
    }
}

impl DivAssign for Complex32 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex32) {
        *self = *self / rhs;
    }
}

impl Sum for Complex32 {
    fn sum<I: Iterator<Item = Complex32>>(iter: I) -> Complex32 {
        iter.fold(Complex32::ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a Complex32> for Complex32 {
    fn sum<I: Iterator<Item = &'a Complex32>>(iter: I) -> Complex32 {
        iter.fold(Complex32::ZERO, |acc, z| acc + *z)
    }
}

/// Mean power (average squared magnitude) of a sample block.
///
/// Returns `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// use lte_dsp::complex::mean_power;
/// use lte_dsp::Complex32;
/// let samples = [Complex32::new(1.0, 0.0), Complex32::new(0.0, 1.0)];
/// assert_eq!(mean_power(&samples), 1.0);
/// ```
pub fn mean_power(samples: &[Complex32]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|z| z.norm_sqr()).sum::<f32>() / samples.len() as f32
}

/// Maximum absolute component-wise difference between two equal-length blocks.
///
/// Used by the golden-reference verification of the parallel receiver.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[Complex32], b: &[Complex32]) -> f32 {
    assert_eq!(a.len(), b.len(), "blocks must have equal length");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x.re - y.re).abs().max((x.im - y.im).abs()))
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f32 = 1e-6;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex32::ZERO + Complex32::ONE, Complex32::ONE);
        assert_eq!(Complex32::I * Complex32::I, -Complex32::ONE);
        assert_eq!(Complex32::from(2.5), Complex32::new(2.5, 0.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex32::new(3.0, -4.0);
        let b = Complex32::new(-1.5, 2.0);
        assert_eq!(a + b - b, a);
        assert_eq!(a * Complex32::ONE, a);
        let q = (a / b) * b;
        assert!((q - a).abs() < 1e-5);
        assert_eq!(-a, Complex32::new(-3.0, 4.0));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex32::new(3.0, -4.0);
        assert_eq!(a.conj(), Complex32::new(3.0, 4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        // z * conj(z) = |z|^2
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < EPS && p.im.abs() < EPS);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex32::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn inverse() {
        let a = Complex32::new(0.5, -1.25);
        let p = a * a.inv();
        assert!((p.re - 1.0).abs() < EPS && p.im.abs() < EPS);
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let acc = Complex32::new(1.0, 1.0);
        let a = Complex32::new(2.0, -3.0);
        let b = Complex32::new(-1.0, 0.5);
        let fused = acc.mul_add(a, b);
        let plain = acc + a * b;
        assert!((fused - plain).abs() < 1e-5);
    }

    #[test]
    fn i_rotations() {
        let a = Complex32::new(2.0, 5.0);
        assert_eq!(a.mul_i(), a * Complex32::I);
        assert_eq!(a.mul_neg_i(), a * -Complex32::I);
    }

    #[test]
    fn sums() {
        let v = [
            Complex32::new(1.0, 2.0),
            Complex32::new(3.0, 4.0),
            Complex32::new(-4.0, -6.0),
        ];
        let s: Complex32 = v.iter().sum();
        assert_eq!(s, Complex32::ZERO);
        let s2: Complex32 = v.into_iter().sum();
        assert_eq!(s2, Complex32::ZERO);
    }

    #[test]
    fn mean_power_and_max_diff() {
        let a = [Complex32::new(2.0, 0.0), Complex32::new(0.0, 2.0)];
        assert_eq!(mean_power(&a), 4.0);
        assert_eq!(mean_power(&[]), 0.0);
        let b = [Complex32::new(2.0, 0.1), Complex32::new(0.0, 2.0)];
        assert!((max_abs_diff(&a, &b) - 0.1).abs() < EPS);
    }

    #[test]
    fn display_shows_sign() {
        assert_eq!(format!("{}", Complex32::new(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{:?}", Complex32::new(0.0, 0.0)), "0+0i");
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex32::new(1.0, 1.0);
        z += Complex32::ONE;
        z -= Complex32::I;
        z *= Complex32::new(0.0, 1.0);
        z /= Complex32::new(0.0, 1.0);
        z *= 2.0;
        assert_eq!(z, Complex32::new(4.0, 0.0));
    }
}
