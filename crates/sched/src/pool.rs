//! A real work-stealing thread pool mirroring the paper's Pthreads runtime.
//!
//! Structure (§IV-B/C of the paper):
//!
//! * a **global user queue** of jobs — idle workers check it *before*
//!   stealing fine-grained tasks, so new subframes start promptly;
//! * **per-worker task deques** — a user thread (the worker that dequeued
//!   a job) spawns its tasks onto *its own* deque and pops them LIFO;
//!   idle workers steal FIFO from other workers' deques (Chase–Lev via
//!   `crossbeam::deque`), exactly the paper's "each worker thread has a
//!   local task queue, and if no work exists in its own queue, it tries
//!   to steal work from another worker thread";
//! * **a bounded per-worker LIFO slot** — the most recently spawned
//!   continuation task is kept in a one-element slot private to the
//!   worker, so a dependency chain (estimate → weights → combine →
//!   finish) runs back-to-back on one core with hot caches instead of
//!   round-tripping through the deque;
//! * **batched steals** — a thief takes up to half the victim's deque in
//!   one operation ([`crossbeam::deque::MAX_BATCH`] cap), amortising the
//!   steal synchronisation over many fine-grained tasks;
//! * **spin-then-park idling** — a worker that finds no work anywhere
//!   retries briefly, then parks on a condvar with exponentially growing
//!   timeouts instead of burning a core, and is woken by the next
//!   submit/spawn;
//! * **task scopes** ([`TaskPool::scope`]) — the fork-join barrier
//!   between pipeline phases: the caller helps execute until all tasks
//!   of the scope complete;
//! * **detached tasks** ([`TaskPool::spawn`], [`PoolHandle::spawn`]) —
//!   dependency-graph continuations that block no thread: a task's
//!   completion spawns its successors, and [`TaskPool::wait_all`] counts
//!   every spawned task, so a whole subframe pipeline can drain without
//!   any user thread standing at a barrier;
//! * **cycle accounting** — every executed task is timed, the analogue of
//!   the paper's `get_cycle_count()` instrumentation, so the activity
//!   metric (Eq. 2) can be computed for real runs too.
//!
//! One deliberate difference from the paper's implementation is noted on
//! [`TaskPool::scope`]: a waiting user thread here may help execute other
//! users' tasks instead of pure spinning, which only improves utilisation
//! and cannot change results (tasks write disjoint outputs).

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use std::sync::OnceLock;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use lte_obs::{Histogram, MetricsRegistry};
use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce(&TaskPool) + Send + 'static>;
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Consecutive empty work searches a worker tolerates (yielding between
/// attempts) before it parks on the idle condvar.
const SPIN_RETRIES: u32 = 3;
/// First parking timeout; doubles on every consecutive park up to
/// [`PARK_MAX`]. Timeouts (rather than indefinite parks) also paper over
/// the shim condvar's benign missed-wakeup window.
const PARK_BASE: Duration = Duration::from_micros(50);
/// Parking timeout ceiling.
const PARK_MAX: Duration = Duration::from_millis(2);
/// Parking timeout of a governor-deactivated worker (the `nap` wake-poll
/// analogue): bounded so a raised limit — or shutdown — is noticed
/// promptly even if a wakeup is missed.
const GOVERNOR_PARK: Duration = Duration::from_micros(200);

/// Why a pool could not be constructed.
#[derive(Debug)]
pub enum PoolError {
    /// `n_workers == 0` was requested.
    ZeroWorkers,
    /// The OS refused to spawn a worker thread.
    Spawn(std::io::Error),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::ZeroWorkers => write!(f, "task pool needs at least one worker"),
            PoolError::Spawn(e) => write!(f, "failed to spawn worker thread: {e}"),
        }
    }
}

impl std::error::Error for PoolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolError::ZeroWorkers => None,
            PoolError::Spawn(e) => Some(e),
        }
    }
}

/// The host's available hardware parallelism, falling back to **1**
/// when it cannot be determined.
///
/// This is the single source of truth for every default-worker
/// decision — pool defaults, benchmark defaults, CPU pinning and the
/// perf harness all route through here, so two layers can never
/// disagree on the worker count when `available_parallelism` fails.
/// The fallback is 1 (not some optimistic core count): on a host whose
/// parallelism is unknowable, spawning extra threads only adds
/// contention noise to the measurements the pool exists to make.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Pool construction parameters beyond the worker count.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Worker threads to spawn.
    pub n_workers: usize,
    /// Pin worker `i` to CPU `i % host_cpus` (Linux only; a no-op that
    /// reports zero pinned workers elsewhere). Pinning removes OS
    /// migration noise from scaling measurements.
    pub pin_workers: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            n_workers: host_parallelism(),
            pin_workers: false,
        }
    }
}

/// Best-effort thread pinning. Linux: `sched_setaffinity` on the calling
/// thread (glibc is already linked by `std`, so no extra dependency);
/// other platforms: a no-op returning `false`.
#[cfg(target_os = "linux")]
fn pin_current_thread(cpu: usize) -> bool {
    // A fixed 1024-bit mask matches glibc's `cpu_set_t`.
    const MASK_WORDS: usize = 16;
    let mut mask = [0u64; MASK_WORDS];
    let cpu = cpu % (MASK_WORDS * 64);
    mask[cpu / 64] |= 1u64 << (cpu % 64);
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    // SAFETY: the mask outlives the call and cpusetsize matches it.
    unsafe { sched_setaffinity(0, MASK_WORDS * 8, mask.as_ptr()) == 0 }
}

#[cfg(not(target_os = "linux"))]
fn pin_current_thread(_cpu: usize) -> bool {
    false
}

/// Panic payload that fail-stops the worker executing it; the pool's
/// supervision loop catches it, counts a respawn and revives the worker
/// in place (its deque — and any tasks on it — survive).
///
/// Injected by chaos campaigns via [`TaskPool::inject_worker_kill`].
#[derive(Debug)]
pub struct WorkerKill;

/// Panic payload for seeded task-level fault injection: caught by the
/// pool, counted under `poisoned_tasks`, never kills the worker.
#[derive(Debug)]
pub struct InjectedPanic;

/// Installs (once, process-wide) a panic hook that suppresses the
/// default stderr report for [`WorkerKill`] / [`InjectedPanic`]
/// payloads, delegating everything else to the previous hook. Chaos
/// campaigns inject panics by the hundred; real failures stay loud.
pub fn silence_injected_panics() {
    static INSTALLED: std::sync::Once = std::sync::Once::new();
    INSTALLED.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected =
                info.payload().is::<WorkerKill>() || info.payload().is::<InjectedPanic>();
            if !injected {
                previous(info);
            }
        }));
    });
}

thread_local! {
    /// The local deque of the worker thread currently running, if any.
    static LOCAL_DEQUE: RefCell<Option<Worker<Task>>> = const { RefCell::new(None) };
    /// The bounded (one-element) LIFO slot holding this worker's most
    /// recently spawned task. Private to the worker — never stolen — so
    /// a continuation chain keeps its working set in cache.
    static LIFO_SLOT: RefCell<Option<Task>> = const { RefCell::new(None) };
    /// Index of the worker thread currently running, if any — used to
    /// attribute counters per worker.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// Nanoseconds this thread has spent inside [`TaskPool::scope`] for
    /// the job currently executing — subtracted from the job's own
    /// elapsed time so barrier waits and helping are not double-counted
    /// as useful work.
    static SCOPE_NANOS: Cell<u64> = const { Cell::new(0) };
}

/// Per-worker activity counters, all updated with relaxed atomics from
/// the worker's own thread (plus foreign threads helping via `scope`).
#[derive(Default)]
struct WorkerStats {
    busy_nanos: AtomicU64,
    executed_tasks: AtomicU64,
    steals: AtomicU64,
    steal_failures: AtomicU64,
    slot_hits: AtomicU64,
    steal_batches: AtomicU64,
    parks: AtomicU64,
}

/// A point-in-time copy of one worker's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Nanoseconds of useful task execution on this worker.
    pub busy_nanos: u64,
    /// Tasks this worker executed (its own plus stolen ones).
    pub executed_tasks: u64,
    /// Successful steals from other workers' deques.
    pub steals: u64,
    /// Work searches that found nothing anywhere.
    pub steal_failures: u64,
    /// Tasks this worker took from its bounded LIFO slot.
    pub slot_hits: u64,
    /// Steals that moved more than one task in a batch.
    pub steal_batches: u64,
    /// Times this worker parked on the idle condvar.
    pub parks: u64,
}

/// Distribution telemetry for the pool: lock-free histograms fed from
/// the workers' hot paths once attached via
/// [`TaskPool::attach_telemetry`]. Detached pools pay one relaxed
/// atomic load per potential record site and nothing else.
#[derive(Default)]
pub struct PoolTelemetry {
    /// Tasks moved per successful batched steal (the popped task plus
    /// the batch unloaded onto the thief's deque).
    pub steal_batch_tasks: Histogram,
    /// Nanoseconds per worker park: idle-backoff parks and governor
    /// naps alike.
    pub park_nanos: Histogram,
    /// Global job-queue depth sampled at every job submission.
    pub queue_depth: Histogram,
}

impl PoolTelemetry {
    /// Empty histograms.
    pub fn new() -> Self {
        Self::default()
    }
}

struct Inner {
    jobs: Injector<Job>,
    /// Tasks submitted from threads without a local deque.
    overflow: Injector<Task>,
    /// Stealers for every worker's local deque.
    stealers: Vec<Stealer<Task>>,
    shutdown: AtomicBool,
    pending_jobs: AtomicUsize,
    busy_nanos: AtomicU64,
    executed_tasks: AtomicU64,
    steal_count: AtomicU64,
    steal_failures: AtomicU64,
    steal_batches: AtomicU64,
    batch_stolen_tasks: AtomicU64,
    lifo_slot_hits: AtomicU64,
    parks: AtomicU64,
    pinned_workers: AtomicU64,
    poisoned_tasks: AtomicU64,
    poisoned_jobs: AtomicU64,
    worker_respawns: AtomicU64,
    worker_stats: Vec<WorkerStats>,
    /// Workers currently parked (or about to park) on `idle_cv`; wakeups
    /// are skipped entirely while this is zero, so the submit hot path
    /// pays no condvar traffic when every worker is busy.
    idle_workers: AtomicUsize,
    /// Governor cap: only workers with `index < active_limit` search for
    /// new work; the rest drain their local deque and park (the paper's
    /// proactive `nap`). Always in `[1, n_workers]`.
    active_limit: AtomicUsize,
    /// Total nanoseconds workers have spent parked by the governor cap —
    /// the real-pool analogue of the DES nap-cycle accounting.
    governor_parked_nanos: AtomicU64,
    /// `(instant, busy_nanos)` at the previous boundary measurement, for
    /// [`TaskPool::boundary_activity`].
    boundary: Mutex<(Instant, u64)>,
    /// Distribution telemetry, attached at most once after construction.
    telemetry: OnceLock<Arc<PoolTelemetry>>,
    pin_workers: bool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl Inner {
    /// Wakes parked workers if — and only if — any worker is parked.
    fn wake_idle(&self) {
        if self.idle_workers.load(Ordering::SeqCst) > 0 {
            self.idle_cv.notify_all();
        }
    }

    /// Grabs one task from anywhere: the overflow queue, then other
    /// workers' deques (round-robin from `start`). A steal from a deque
    /// takes up to half the victim's queue when the calling thread has a
    /// local deque to unload the batch into.
    fn steal_task(&self, start: usize) -> Option<Task> {
        loop {
            match self.overflow.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        let n = self.stealers.len();
        for i in 0..n {
            let victim = (start + i) % n;
            loop {
                let stolen = LOCAL_DEQUE.with(|local| {
                    let local = local.borrow();
                    match local.as_ref() {
                        // Batched steal: the oldest task comes back for
                        // immediate execution, the rest of the batch
                        // lands on our own deque.
                        Some(dest) => {
                            let before = dest.len();
                            let result = self.stealers[victim].steal_batch_and_pop(dest);
                            let moved = dest.len().saturating_sub(before);
                            (result, moved)
                        }
                        None => (self.stealers[victim].steal(), 0),
                    }
                });
                match stolen {
                    (Steal::Success(t), moved) => {
                        self.steal_count.fetch_add(1, Ordering::Relaxed);
                        if moved > 0 {
                            self.steal_batches.fetch_add(1, Ordering::Relaxed);
                            self.batch_stolen_tasks
                                .fetch_add(moved as u64, Ordering::Relaxed);
                        }
                        if let Some(t) = self.telemetry.get() {
                            t.steal_batch_tasks.record(moved as u64 + 1);
                        }
                        if let Some(w) = WORKER_INDEX.with(Cell::get) {
                            self.worker_stats[w].steals.fetch_add(1, Ordering::Relaxed);
                            if moved > 0 {
                                self.worker_stats[w]
                                    .steal_batches
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        return Some(t);
                    }
                    (Steal::Retry, _) => continue,
                    (Steal::Empty, _) => break,
                }
            }
        }
        None
    }
}

/// Takes the next locally available task: the LIFO slot first (hot
/// continuation), then the worker's own deque.
fn pop_local(inner: &Inner) -> Option<Task> {
    if let Some(task) = LIFO_SLOT.with(|slot| slot.borrow_mut().take()) {
        inner.lifo_slot_hits.fetch_add(1, Ordering::Relaxed);
        if let Some(w) = WORKER_INDEX.with(Cell::get) {
            inner.worker_stats[w]
                .slot_hits
                .fetch_add(1, Ordering::Relaxed);
        }
        return Some(task);
    }
    LOCAL_DEQUE.with(|local| local.borrow().as_ref().and_then(|d| d.pop()))
}

/// Enqueues a detached task: into the calling worker's LIFO slot when on
/// a worker thread (displacing any previous occupant onto the stealable
/// deque), or onto the shared overflow queue otherwise.
fn spawn_inner(inner: &Arc<Inner>, task: Task) {
    inner.pending_jobs.fetch_add(1, Ordering::SeqCst);
    let done_inner = Arc::clone(inner);
    let wrapped: Task = Box::new(move || {
        // The pending count must drop even when the task panics —
        // otherwise one poisoned continuation would hang `wait_all`.
        // The panic is re-raised for `run_timed` to account and contain.
        let result = catch_unwind(AssertUnwindSafe(task));
        if done_inner.pending_jobs.fetch_sub(1, Ordering::SeqCst) == 1 {
            done_inner.done_cv.notify_all();
        }
        if let Err(payload) = result {
            resume_unwind(payload);
        }
    });
    if WORKER_INDEX.with(Cell::get).is_some() {
        let displaced = LIFO_SLOT.with(|slot| slot.borrow_mut().replace(wrapped));
        if let Some(old) = displaced {
            // The displaced task becomes stealable: other workers may be
            // hungry for it.
            LOCAL_DEQUE.with(|local| match local.borrow().as_ref() {
                Some(deque) => deque.push(old),
                None => inner.overflow.push(old),
            });
            inner.wake_idle();
        }
        // A task in the slot needs no wakeup: this worker is running.
    } else {
        inner.overflow.push(wrapped);
        inner.wake_idle();
    }
}

/// A cloneable, `'static` handle for spawning detached tasks onto the
/// pool — the edge type of dependency-graph continuations: a task
/// captures a handle and spawns its successors when it completes.
///
/// Handles keep the pool's shared state alive but own no worker threads;
/// dropping the owning [`TaskPool`] still shuts the workers down.
#[derive(Clone)]
pub struct PoolHandle {
    inner: Arc<Inner>,
    n_workers: usize,
}

impl PoolHandle {
    /// Number of worker threads in the pool this handle points at.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Spawns a detached task (see [`TaskPool::spawn`]).
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        spawn_inner(&self.inner, Box::new(task));
    }
}

/// A work-stealing thread pool with a global user-job queue and
/// per-worker task deques.
///
/// # Example
///
/// ```
/// use lte_sched::TaskPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = TaskPool::new(4).expect("spawn workers");
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..10 {
///     let c = Arc::clone(&counter);
///     pool.submit_job(move |pool| {
///         // A job fans out tasks and joins them.
///         let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
///             .map(|_| {
///                 let c = Arc::clone(&c);
///                 Box::new(move || {
///                     c.fetch_add(1, Ordering::Relaxed);
///                 }) as Box<dyn FnOnce() + Send>
///             })
///             .collect();
///         pool.scope(tasks);
///     });
/// }
/// pool.wait_all();
/// assert_eq!(counter.load(Ordering::Relaxed), 80);
/// ```
pub struct TaskPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    n_workers: usize,
}

impl TaskPool {
    /// Spawns a pool with `n_workers` OS threads (no pinning).
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::ZeroWorkers`] for an empty pool and
    /// [`PoolError::Spawn`] when the OS refuses a worker thread (any
    /// already-spawned workers are shut down and joined first).
    pub fn new(n_workers: usize) -> Result<Self, PoolError> {
        Self::with_config(PoolConfig {
            n_workers,
            pin_workers: false,
        })
    }

    /// Spawns a pool from a full [`PoolConfig`].
    ///
    /// # Errors
    ///
    /// As for [`TaskPool::new`].
    pub fn with_config(cfg: PoolConfig) -> Result<Self, PoolError> {
        let n_workers = cfg.n_workers;
        if n_workers == 0 {
            return Err(PoolError::ZeroWorkers);
        }
        let deques: Vec<Worker<Task>> = (0..n_workers).map(|_| Worker::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let inner = Arc::new(Inner {
            jobs: Injector::new(),
            overflow: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            pending_jobs: AtomicUsize::new(0),
            busy_nanos: AtomicU64::new(0),
            executed_tasks: AtomicU64::new(0),
            steal_count: AtomicU64::new(0),
            steal_failures: AtomicU64::new(0),
            steal_batches: AtomicU64::new(0),
            batch_stolen_tasks: AtomicU64::new(0),
            lifo_slot_hits: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            pinned_workers: AtomicU64::new(0),
            poisoned_tasks: AtomicU64::new(0),
            poisoned_jobs: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            worker_stats: (0..n_workers).map(|_| WorkerStats::default()).collect(),
            idle_workers: AtomicUsize::new(0),
            active_limit: AtomicUsize::new(n_workers),
            governor_parked_nanos: AtomicU64::new(0),
            boundary: Mutex::new((Instant::now(), 0)),
            telemetry: OnceLock::new(),
            pin_workers: cfg.pin_workers,
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(n_workers);
        for (i, deque) in deques.into_iter().enumerate() {
            let thread_inner = Arc::clone(&inner);
            match std::thread::Builder::new()
                .name(format!("lte-worker-{i}"))
                .spawn(move || worker_entry(thread_inner, i, deque))
            {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    inner.shutdown.store(true, Ordering::SeqCst);
                    inner.idle_cv.notify_all();
                    for w in workers {
                        let _ = w.join();
                    }
                    return Err(PoolError::Spawn(e));
                }
            }
        }
        Ok(TaskPool {
            inner,
            workers,
            n_workers,
        })
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// A cloneable handle for spawning detached continuation tasks.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            inner: Arc::clone(&self.inner),
            n_workers: self.n_workers,
        }
    }

    /// Enqueues a user job on the global queue. The job runs on some
    /// worker (its "user thread") and receives a pool handle for nested
    /// [`scope`](TaskPool::scope) fan-outs.
    pub fn submit_job(&self, job: impl FnOnce(&TaskPool) + Send + 'static) {
        self.inner.pending_jobs.fetch_add(1, Ordering::SeqCst);
        self.inner.jobs.push(Box::new(job));
        if let Some(t) = self.inner.telemetry.get() {
            t.queue_depth.record(self.inner.jobs.len() as u64);
        }
        self.inner.wake_idle();
    }

    /// Attaches distribution telemetry (steal-batch sizes, park
    /// durations, queue depth). At most one sink per pool; a second
    /// attach returns `false` and the original keeps recording.
    pub fn attach_telemetry(&self, telemetry: Arc<PoolTelemetry>) -> bool {
        self.inner.telemetry.set(telemetry).is_ok()
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&Arc<PoolTelemetry>> {
        self.inner.telemetry.get()
    }

    /// Spawns a detached task: no thread blocks on its completion, but
    /// [`TaskPool::wait_all`] counts it. On a worker thread the task goes
    /// into the worker's bounded LIFO slot (displacing any previous
    /// occupant onto the stealable deque) — the building block of
    /// dependency-ordered task graphs where each task spawns its
    /// successors instead of a user thread standing at a barrier.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        spawn_inner(&self.inner, Box::new(task));
    }

    /// Runs a set of tasks to completion, helping execute them from the
    /// calling thread (fork-join barrier).
    ///
    /// When called from a worker thread the tasks go onto *that worker's*
    /// deque (LIFO for the owner, stealable FIFO by others), as in the
    /// paper. The caller may also pick up *other* pending tasks while it
    /// waits — a benign deviation from the paper's pure spin wait that
    /// can only improve core utilisation.
    pub fn scope(&self, tasks: Vec<Task>) {
        if tasks.is_empty() {
            return;
        }
        let remaining = Arc::new(AtomicUsize::new(tasks.len()));
        LOCAL_DEQUE.with(|local| {
            let local = local.borrow();
            for task in tasks {
                let remaining = Arc::clone(&remaining);
                // The barrier decrement must happen even when the task
                // panics — otherwise one poisoned task would hang the
                // scope forever. The panic itself is re-raised for
                // [`run_timed`] to account and contain.
                let wrapped: Task = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(task));
                    remaining.fetch_sub(1, Ordering::SeqCst);
                    if let Err(payload) = result {
                        resume_unwind(payload);
                    }
                });
                match local.as_ref() {
                    Some(deque) => deque.push(wrapped),
                    None => self.inner.overflow.push(wrapped),
                }
            }
        });
        self.inner.wake_idle();
        // Help until the barrier resolves: slot and own deque first,
        // then steal.
        let scope_start = Instant::now();
        while remaining.load(Ordering::SeqCst) > 0 {
            let task = pop_local(&self.inner).or_else(|| self.inner.steal_task(0));
            match task {
                Some(t) => run_timed(&self.inner, t),
                None => std::hint::spin_loop(),
            }
        }
        SCOPE_NANOS.with(|c| c.set(c.get() + scope_start.elapsed().as_nanos() as u64));
    }

    /// Blocks until every submitted job and spawned task has completed.
    pub fn wait_all(&self) {
        let mut guard = self.inner.done_lock.lock();
        while self.inner.pending_jobs.load(Ordering::SeqCst) > 0 {
            self.inner
                .done_cv
                .wait_for(&mut guard, Duration::from_millis(10));
        }
    }

    /// Total nanoseconds of useful task/job execution so far — the
    /// `get_cycle_count()` sum of Eq. 1.
    pub fn busy_nanos(&self) -> u64 {
        self.inner.busy_nanos.load(Ordering::Relaxed)
    }

    /// Total tasks executed so far.
    pub fn executed_tasks(&self) -> u64 {
        self.inner.executed_tasks.load(Ordering::Relaxed)
    }

    /// Number of successful steals from other workers' deques so far.
    pub fn steal_count(&self) -> u64 {
        self.inner.steal_count.load(Ordering::Relaxed)
    }

    /// Number of work searches that found nothing anywhere so far.
    pub fn steal_failures(&self) -> u64 {
        self.inner.steal_failures.load(Ordering::Relaxed)
    }

    /// Steals that moved more than one task (steal-half batches).
    pub fn steal_batches(&self) -> u64 {
        self.inner.steal_batches.load(Ordering::Relaxed)
    }

    /// Extra tasks moved by batched steals (beyond the popped one).
    pub fn batch_stolen_tasks(&self) -> u64 {
        self.inner.batch_stolen_tasks.load(Ordering::Relaxed)
    }

    /// Tasks executed straight from a worker's bounded LIFO slot.
    pub fn lifo_slot_hits(&self) -> u64 {
        self.inner.lifo_slot_hits.load(Ordering::Relaxed)
    }

    /// Times any worker parked on the idle condvar.
    pub fn parks(&self) -> u64 {
        self.inner.parks.load(Ordering::Relaxed)
    }

    /// Workers successfully pinned to a CPU at startup.
    pub fn pinned_workers(&self) -> u64 {
        self.inner.pinned_workers.load(Ordering::Relaxed)
    }

    /// Tasks that panicked and were contained by the pool.
    pub fn poisoned_tasks(&self) -> u64 {
        self.inner.poisoned_tasks.load(Ordering::Relaxed)
    }

    /// Job bodies that panicked and were contained by the pool.
    pub fn poisoned_jobs(&self) -> u64 {
        self.inner.poisoned_jobs.load(Ordering::Relaxed)
    }

    /// Workers revived after a [`WorkerKill`] fail-stop.
    pub fn worker_respawns(&self) -> u64 {
        self.inner.worker_respawns.load(Ordering::Relaxed)
    }

    /// Chaos injection: enqueues a task that fail-stops whichever worker
    /// executes it. The supervision loop revives the worker in place
    /// (same deque, so no queued task is lost) and counts the respawn.
    pub fn inject_worker_kill(&self) {
        self.inner.overflow.push(Box::new(|| {
            std::panic::panic_any(WorkerKill);
        }));
        self.inner.idle_cv.notify_all();
    }

    /// A point-in-time copy of worker `i`'s counters.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_workers()`.
    pub fn worker_snapshot(&self, i: usize) -> WorkerSnapshot {
        let s = &self.inner.worker_stats[i];
        WorkerSnapshot {
            busy_nanos: s.busy_nanos.load(Ordering::Relaxed),
            executed_tasks: s.executed_tasks.load(Ordering::Relaxed),
            steals: s.steals.load(Ordering::Relaxed),
            steal_failures: s.steal_failures.load(Ordering::Relaxed),
            slot_hits: s.slot_hits.load(Ordering::Relaxed),
            steal_batches: s.steal_batches.load(Ordering::Relaxed),
            parks: s.parks.load(Ordering::Relaxed),
        }
    }

    /// Publishes pool totals and per-worker counters into `metrics`
    /// under `pool.*` / `pool.worker.<i>.*` keys.
    pub fn export_metrics(&self, metrics: &MetricsRegistry) {
        metrics.set_counter("pool.busy_nanos", self.busy_nanos());
        metrics.set_counter("pool.executed_tasks", self.executed_tasks());
        metrics.set_counter("pool.steals", self.steal_count());
        metrics.set_counter("pool.steal_failures", self.steal_failures());
        metrics.set_counter("pool.steal_batches", self.steal_batches());
        metrics.set_counter("pool.batch_stolen_tasks", self.batch_stolen_tasks());
        metrics.set_counter("pool.lifo_slot_hits", self.lifo_slot_hits());
        metrics.set_counter("pool.parks", self.parks());
        metrics.set_counter("pool.pinned_workers", self.pinned_workers());
        metrics.set_counter("pool.poisoned_tasks", self.poisoned_tasks());
        metrics.set_counter("pool.poisoned_jobs", self.poisoned_jobs());
        metrics.set_counter("pool.worker_respawns", self.worker_respawns());
        metrics.set_counter("pool.workers", self.n_workers as u64);
        metrics.set_counter("pool.active_workers", self.active_workers() as u64);
        metrics.set_counter("pool.governor_parked_nanos", self.governor_parked_nanos());
        // Scratch-arena traffic (process-wide): `fresh` counts buffers
        // that had to grow, `reused` counts pool hits. In steady state
        // `fresh` must stop moving — the observable form of the
        // zero-allocation guarantee.
        let arena = lte_dsp::arena::stats();
        metrics.set_counter("pool.arena.fresh", arena.fresh);
        metrics.set_counter("pool.arena.reused", arena.reused);
        for i in 0..self.n_workers {
            let s = self.worker_snapshot(i);
            metrics.set_counter(&format!("pool.worker.{i}.busy_nanos"), s.busy_nanos);
            metrics.set_counter(&format!("pool.worker.{i}.executed_tasks"), s.executed_tasks);
            metrics.set_counter(&format!("pool.worker.{i}.steals"), s.steals);
            metrics.set_counter(&format!("pool.worker.{i}.steal_failures"), s.steal_failures);
            metrics.set_counter(&format!("pool.worker.{i}.slot_hits"), s.slot_hits);
            metrics.set_counter(&format!("pool.worker.{i}.steal_batches"), s.steal_batches);
            metrics.set_counter(&format!("pool.worker.{i}.parks"), s.parks);
        }
    }

    /// Activity over a wall-clock window per Eq. 2: useful time divided
    /// by `n_workers × window`.
    pub fn activity_since(&self, busy_start: u64, window: Duration) -> f64 {
        let busy = self.busy_nanos().saturating_sub(busy_start) as f64;
        busy / (self.n_workers as f64 * window.as_nanos() as f64)
    }

    /// Caps execution to the first `n` workers (clamped to
    /// `[1, n_workers]`) — the elastic-control analogue of the paper's
    /// proactive core deactivation. Workers at or above the cap finish
    /// their local work, then park; their deques remain stealable, so
    /// applying a target at a subframe boundary cannot change results.
    pub fn set_active_workers(&self, n: usize) {
        let n = n.clamp(1, self.n_workers);
        self.inner.active_limit.store(n, Ordering::SeqCst);
        // Parked workers re-check the limit on wake; the bounded park
        // timeout covers any missed notification.
        self.inner.wake_idle();
    }

    /// Workers currently allowed to search for work.
    pub fn active_workers(&self) -> usize {
        self.inner.active_limit.load(Ordering::SeqCst)
    }

    /// Parks `n` additional workers (never below one active) — the
    /// `nap` analogue.
    pub fn park_workers(&self, n: usize) {
        self.set_active_workers(self.active_workers().saturating_sub(n));
    }

    /// Returns `n` parked workers to service (never above `n_workers`).
    pub fn unpark_workers(&self, n: usize) {
        self.set_active_workers(self.active_workers().saturating_add(n));
    }

    /// Total nanoseconds workers have spent parked under the governor
    /// cap — the real-pool "deactivated core time" of Tables I–II.
    pub fn governor_parked_nanos(&self) -> u64 {
        self.inner.governor_parked_nanos.load(Ordering::Relaxed)
    }

    /// Eq. 2 activity over the wall-clock window since the previous call
    /// (or since pool construction): Δ`busy_nanos` over
    /// `n_workers × Δt`. Designed for subframe-boundary sampling, where
    /// it is the measured side of the Fig. 12 estimated-vs-measured
    /// comparison.
    pub fn boundary_activity(&self) -> f64 {
        let mut last = self.inner.boundary.lock();
        let now = Instant::now();
        let busy = self.busy_nanos();
        let (t0, busy0) = *last;
        *last = (now, busy);
        let window = now.duration_since(t0).as_nanos() as f64;
        if window <= 0.0 {
            return 0.0;
        }
        busy.saturating_sub(busy0) as f64 / (self.n_workers as f64 * window)
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        // Only the owning pool (the one holding the worker join handles)
        // may initiate shutdown. `worker_loop` builds a borrowed handle
        // with no threads for jobs to fan out through; that handle is
        // dropped on every worker exit — including a WorkerKill unwind —
        // and must not tear down the pool it borrows.
        if self.workers.is_empty() {
            return;
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.idle_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Executes one task with cycle accounting and panic containment: a
/// panicking task is counted under `poisoned_tasks` and swallowed — the
/// worker (or helping user thread) survives. The one exception is the
/// [`WorkerKill`] chaos payload, which is re-raised after accounting so
/// it fail-stops the executing worker (the supervision loop in
/// [`worker_entry`] then revives it).
fn run_timed(inner: &Inner, task: Task) {
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(task));
    let nanos = start.elapsed().as_nanos() as u64;
    inner.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
    inner.executed_tasks.fetch_add(1, Ordering::Relaxed);
    if let Some(w) = WORKER_INDEX.with(Cell::get) {
        let s = &inner.worker_stats[w];
        s.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        s.executed_tasks.fetch_add(1, Ordering::Relaxed);
    }
    if let Err(payload) = result {
        inner.poisoned_tasks.fetch_add(1, Ordering::Relaxed);
        if payload.is::<WorkerKill>() && WORKER_INDEX.with(Cell::get).is_some() {
            resume_unwind(payload);
        }
    }
}

/// Worker thread body: a supervision loop around [`worker_loop`]. A
/// [`WorkerKill`] unwinding out of the work loop models a core dying;
/// the supervisor counts the respawn and re-enters the loop on the same
/// thread with the same deque — and the same LIFO slot — so queued tasks
/// survive the "death".
fn worker_entry(inner: Arc<Inner>, index: usize, deque: Worker<Task>) {
    LOCAL_DEQUE.with(|local| *local.borrow_mut() = Some(deque));
    WORKER_INDEX.with(|w| w.set(Some(index)));
    if inner.pin_workers {
        let cpus = host_parallelism();
        if pin_current_thread(index % cpus) {
            inner.pinned_workers.fetch_add(1, Ordering::Relaxed);
        }
    }
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| worker_loop(&inner, index)));
        match result {
            Ok(()) => return, // clean shutdown
            Err(_) => {
                inner.worker_respawns.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, index: usize) {
    let n_workers = inner.stealers.len();
    let pool_handle = TaskPool {
        inner: Arc::clone(inner),
        workers: Vec::new(), // handle owns no threads; Drop join is a no-op
        n_workers,
    };
    // Consecutive failed work searches; reset by any successful find.
    let mut idle_streak: u32 = 0;
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Governor gate: a worker at or above the active limit drains
        // its local work (slot + own deque — the remainder of the
        // subframe it was already running), then parks until the limit
        // rises. It never takes a new job or steals, so a target applied
        // at a subframe boundary changes where work runs, never what is
        // computed. Its deque stays stealable throughout, so nothing it
        // holds can be stranded.
        if index >= inner.active_limit.load(Ordering::SeqCst) {
            if let Some(t) = pop_local(inner) {
                idle_streak = 0;
                run_timed(inner, t);
                continue;
            }
            let park_start = Instant::now();
            inner.idle_workers.fetch_add(1, Ordering::SeqCst);
            let mut guard = inner.idle_lock.lock();
            if index >= inner.active_limit.load(Ordering::SeqCst)
                && !inner.shutdown.load(Ordering::SeqCst)
            {
                inner.idle_cv.wait_for(&mut guard, GOVERNOR_PARK);
            }
            drop(guard);
            inner.idle_workers.fetch_sub(1, Ordering::SeqCst);
            let parked_ns = park_start.elapsed().as_nanos() as u64;
            inner
                .governor_parked_nanos
                .fetch_add(parked_ns, Ordering::Relaxed);
            if let Some(t) = inner.telemetry.get() {
                t.park_nanos.record(parked_ns);
            }
            continue;
        }
        // LIFO slot and own deque first, …
        if let Some(t) = pop_local(inner) {
            idle_streak = 0;
            run_timed(inner, t);
            continue;
        }
        // … then the global user queue (§IV-C: checked before stealing), …
        match inner.jobs.steal() {
            Steal::Success(job) => {
                idle_streak = 0;
                let scope_before = SCOPE_NANOS.with(Cell::get);
                let start = Instant::now();
                // Contain job panics so one poisoned user cannot hang
                // `wait_all`: the pending count always drops, then a
                // WorkerKill (raised while this job helped at a barrier)
                // still fail-stops the worker.
                let result = catch_unwind(AssertUnwindSafe(|| job(&pool_handle)));
                let scoped = SCOPE_NANOS.with(Cell::get) - scope_before;
                let useful = (start.elapsed().as_nanos() as u64).saturating_sub(scoped);
                inner.busy_nanos.fetch_add(useful, Ordering::Relaxed);
                if inner.pending_jobs.fetch_sub(1, Ordering::SeqCst) == 1 {
                    inner.done_cv.notify_all();
                }
                if let Err(payload) = result {
                    if payload.is::<WorkerKill>() {
                        resume_unwind(payload);
                    }
                    inner.poisoned_jobs.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
            Steal::Retry => continue,
            Steal::Empty => {}
        }
        // … then steal tasks from anyone (batched when possible).
        if let Some(t) = inner.steal_task(index + 1) {
            idle_streak = 0;
            run_timed(inner, t);
            continue;
        }
        // Nothing to do: count the failed search, then back off — a few
        // cheap yields first (work often arrives within microseconds),
        // then park on the idle condvar with exponentially growing
        // timeouts (the IDLE policy analogue).
        inner.steal_failures.fetch_add(1, Ordering::Relaxed);
        inner.worker_stats[index]
            .steal_failures
            .fetch_add(1, Ordering::Relaxed);
        idle_streak = idle_streak.saturating_add(1);
        if idle_streak <= SPIN_RETRIES {
            std::thread::yield_now();
            continue;
        }
        let exp = (idle_streak - SPIN_RETRIES - 1).min(10);
        let timeout = PARK_MAX.min(PARK_BASE * 2u32.saturating_pow(exp));
        inner.idle_workers.fetch_add(1, Ordering::SeqCst);
        let mut guard = inner.idle_lock.lock();
        if inner.jobs.is_empty()
            && inner.overflow.is_empty()
            && !inner.shutdown.load(Ordering::SeqCst)
        {
            inner.parks.fetch_add(1, Ordering::Relaxed);
            inner.worker_stats[index]
                .parks
                .fetch_add(1, Ordering::Relaxed);
            let park_start = Instant::now();
            inner.idle_cv.wait_for(&mut guard, timeout);
            if let Some(t) = inner.telemetry.get() {
                t.park_nanos.record(park_start.elapsed().as_nanos() as u64);
            }
        }
        drop(guard);
        inner.idle_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn telemetry_observes_queue_depth_and_steals() {
        let pool = TaskPool::new(4).unwrap();
        let telemetry = Arc::new(PoolTelemetry::new());
        assert!(pool.attach_telemetry(Arc::clone(&telemetry)));
        // Second sink is refused; the first keeps recording.
        assert!(!pool.attach_telemetry(Arc::new(PoolTelemetry::new())));
        for _ in 0..64 {
            pool.submit_job(|p| {
                let tasks: Vec<Task> = (0..8)
                    .map(|_| Box::new(|| std::hint::black_box(())) as Task)
                    .collect();
                p.scope(tasks);
            });
        }
        pool.wait_all();
        let depth = telemetry.queue_depth.snapshot();
        assert_eq!(depth.count, 64, "one depth sample per submitted job");
        // Parks/steals depend on timing; the histograms must simply be
        // well-formed (recording crashed nothing, counts are coherent).
        let parks = telemetry.park_nanos.snapshot();
        assert!(parks.quantile(0.99) >= parks.min);
    }

    #[test]
    fn executes_all_jobs() {
        let pool = TaskPool::new(4).unwrap();
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.submit_job(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_all();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn scope_runs_every_task_exactly_once() {
        let pool = TaskPool::new(4).unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        pool.submit_job(move |p| {
            let tasks: Vec<Task> = (0..64)
                .map(|_| {
                    let h = Arc::clone(&h);
                    Box::new(move || {
                        h.fetch_add(1, Ordering::SeqCst);
                    }) as Task
                })
                .collect();
            p.scope(tasks);
            assert_eq!(h.load(Ordering::SeqCst), 64, "barrier must be complete");
        });
        pool.wait_all();
        assert_eq!(hits.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_from_non_worker_thread_works() {
        // Calling scope() from the main thread (no local deque) routes
        // through the overflow queue.
        let pool = TaskPool::new(2).unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let tasks: Vec<Task> = (0..16)
            .map(|_| {
                let h = Arc::clone(&hits);
                Box::new(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                }) as Task
            })
            .collect();
        pool.scope(tasks);
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn nested_phases_preserve_order() {
        // Phase 2 tasks must observe every phase 1 effect.
        let pool = TaskPool::new(8).unwrap();
        let phase1 = Arc::new(AtomicU32::new(0));
        let violations = Arc::new(AtomicU32::new(0));
        for _ in 0..20 {
            let p1 = Arc::clone(&phase1);
            let bad = Arc::clone(&violations);
            pool.submit_job(move |p| {
                let before = p1.load(Ordering::SeqCst);
                let mine = 8;
                let tasks: Vec<Task> = (0..mine)
                    .map(|_| {
                        let p1 = Arc::clone(&p1);
                        Box::new(move || {
                            p1.fetch_add(1, Ordering::SeqCst);
                        }) as Task
                    })
                    .collect();
                p.scope(tasks);
                if p1.load(Ordering::SeqCst) < before + mine {
                    bad.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        pool.wait_all();
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn accounting_accumulates() {
        let pool = TaskPool::new(2).unwrap();
        pool.submit_job(|p| {
            let tasks: Vec<Task> = (0..4)
                .map(|_| {
                    Box::new(|| {
                        std::thread::sleep(Duration::from_millis(5));
                    }) as Task
                })
                .collect();
            p.scope(tasks);
        });
        pool.wait_all();
        assert!(
            pool.busy_nanos() >= 4 * 5_000_000 / 2,
            "{}",
            pool.busy_nanos()
        );
        assert_eq!(pool.executed_tasks(), 4);
    }

    #[test]
    fn parallel_speedup_on_sleep_tasks() {
        // 8 × 20 ms of sleeping on 8 workers should take well under the
        // 160 ms serial time.
        let pool = TaskPool::new(8).unwrap();
        let start = Instant::now();
        pool.submit_job(|p| {
            let tasks: Vec<Task> = (0..8)
                .map(|_| Box::new(|| std::thread::sleep(Duration::from_millis(20))) as Task)
                .collect();
            p.scope(tasks);
        });
        pool.wait_all();
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(120),
            "took {elapsed:?}, expected parallel execution"
        );
    }

    #[test]
    fn stealing_happens_under_load() {
        // With several workers and sleeping tasks spawned on one user
        // thread, other workers must steal to overlap the sleeps.
        let pool = TaskPool::new(4).unwrap();
        pool.submit_job(|p| {
            let tasks: Vec<Task> = (0..12)
                .map(|_| Box::new(|| std::thread::sleep(Duration::from_millis(3))) as Task)
                .collect();
            p.scope(tasks);
        });
        pool.wait_all();
        assert!(
            pool.steal_count() > 0,
            "parallel sleeps require successful steals"
        );
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = TaskPool::new(1).unwrap();
        pool.submit_job(|p| p.scope(Vec::new()));
        pool.wait_all();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let pool = TaskPool::new(4).unwrap();
        pool.submit_job(|_| {});
        pool.wait_all();
        drop(pool); // must not hang
    }

    #[test]
    fn many_jobs_stress() {
        let pool = TaskPool::new(4).unwrap();
        let total = Arc::new(AtomicU32::new(0));
        for j in 0..200 {
            let total = Arc::clone(&total);
            pool.submit_job(move |p| {
                let tasks: Vec<Task> = (0..(j % 7 + 1))
                    .map(|_| {
                        let t = Arc::clone(&total);
                        Box::new(move || {
                            t.fetch_add(1, Ordering::SeqCst);
                        }) as Task
                    })
                    .collect();
                p.scope(tasks);
            });
        }
        pool.wait_all();
        let expect: u32 = (0..200).map(|j| j % 7 + 1).sum();
        assert_eq!(total.load(Ordering::SeqCst), expect);
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(matches!(TaskPool::new(0), Err(PoolError::ZeroWorkers)));
        assert!(matches!(
            TaskPool::with_config(PoolConfig {
                n_workers: 0,
                pin_workers: true
            }),
            Err(PoolError::ZeroWorkers)
        ));
    }

    #[test]
    fn spawned_tasks_counted_by_wait_all() {
        let pool = TaskPool::new(2).unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..50 {
            let h = Arc::clone(&hits);
            pool.spawn(move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_all();
        assert_eq!(hits.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn spawned_chains_complete_and_hit_the_lifo_slot() {
        // Each chain link spawns the next from inside a worker: the
        // continuation should ride the LIFO slot, not the deque.
        let pool = TaskPool::new(2).unwrap();
        let handle = pool.handle();
        let hits = Arc::new(AtomicU32::new(0));
        fn link(handle: PoolHandle, hits: Arc<AtomicU32>, depth: u32) {
            hits.fetch_add(1, Ordering::SeqCst);
            if depth > 0 {
                let next = handle.clone();
                handle.spawn(move || link(next.clone(), hits, depth - 1));
            }
        }
        for _ in 0..4 {
            let handle = handle.clone();
            let hits = Arc::clone(&hits);
            pool.spawn(move || link(handle.clone(), hits, 24));
        }
        pool.wait_all();
        assert_eq!(hits.load(Ordering::SeqCst), 4 * 25);
        assert!(
            pool.lifo_slot_hits() > 0,
            "continuations must use the LIFO slot"
        );
    }

    #[test]
    fn lifo_slot_displacement_loses_no_task() {
        // Spawning twice in a row from one worker displaces the first
        // task from the slot to the deque; both must still run.
        let pool = TaskPool::new(1).unwrap();
        let handle = pool.handle();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        pool.spawn(move || {
            for _ in 0..10 {
                let h = Arc::clone(&h);
                handle.spawn(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        pool.wait_all();
        assert_eq!(hits.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn batched_steals_move_multiple_tasks() {
        // A single job floods its worker's deque with slow tasks; the
        // other three workers have no job of their own, so their steals
        // hit a deep deque and must move batches.
        let pool = TaskPool::new(4).unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        pool.submit_job(move |p| {
            let tasks: Vec<Task> = (0..128)
                .map(|_| {
                    let h = Arc::clone(&h);
                    Box::new(move || {
                        h.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_micros(300));
                    }) as Task
                })
                .collect();
            p.scope(tasks);
        });
        pool.wait_all();
        assert_eq!(hits.load(Ordering::SeqCst), 128);
        assert!(
            pool.steal_batches() > 0,
            "a flooded deque must trigger batch steals"
        );
        assert!(pool.batch_stolen_tasks() >= pool.steal_batches());
    }

    #[test]
    fn idle_workers_park_instead_of_spinning() {
        let pool = TaskPool::new(4).unwrap();
        pool.submit_job(|_| {});
        pool.wait_all();
        // Give the workers time to exhaust their spin retries.
        std::thread::sleep(Duration::from_millis(30));
        assert!(pool.parks() > 0, "an empty pool must park its workers");
    }

    #[test]
    fn pinning_is_counted_when_requested() {
        let pool = TaskPool::with_config(PoolConfig {
            n_workers: 2,
            pin_workers: true,
        })
        .unwrap();
        pool.submit_job(|_| {});
        pool.wait_all();
        if cfg!(target_os = "linux") {
            assert_eq!(pool.pinned_workers(), 2, "both workers must pin on Linux");
        } else {
            assert_eq!(pool.pinned_workers(), 0);
        }
        // And an unpinned pool reports zero.
        let plain = TaskPool::new(2).unwrap();
        assert_eq!(plain.pinned_workers(), 0);
    }

    #[test]
    fn poisoned_task_does_not_hang_the_scope() {
        silence_injected_panics();
        let pool = TaskPool::new(4).unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        pool.submit_job(move |p| {
            let mut tasks: Vec<Task> = (0..15)
                .map(|_| {
                    let h = Arc::clone(&h);
                    Box::new(move || {
                        h.fetch_add(1, Ordering::SeqCst);
                    }) as Task
                })
                .collect();
            tasks.push(Box::new(|| std::panic::panic_any(InjectedPanic)) as Task);
            p.scope(tasks);
        });
        pool.wait_all();
        assert_eq!(hits.load(Ordering::SeqCst), 15);
        assert_eq!(pool.poisoned_tasks(), 1);
        // The panic stayed inside the pool: no worker died for it.
        assert_eq!(pool.worker_respawns(), 0);
    }

    #[test]
    fn poisoned_spawned_task_does_not_hang_wait_all() {
        silence_injected_panics();
        let pool = TaskPool::new(2).unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        for i in 0..10 {
            let h = Arc::clone(&hits);
            pool.spawn(move || {
                if i == 3 {
                    std::panic::panic_any(InjectedPanic);
                }
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_all();
        assert_eq!(hits.load(Ordering::SeqCst), 9);
        assert_eq!(pool.poisoned_tasks(), 1);
    }

    #[test]
    fn poisoned_job_does_not_hang_wait_all() {
        silence_injected_panics();
        let pool = TaskPool::new(2).unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        for i in 0..10 {
            let h = Arc::clone(&hits);
            pool.submit_job(move |_| {
                if i == 3 {
                    std::panic::panic_any(InjectedPanic);
                }
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_all();
        assert_eq!(hits.load(Ordering::SeqCst), 9);
        assert_eq!(pool.poisoned_jobs(), 1);
    }

    #[test]
    fn killed_worker_respawns_without_losing_tasks() {
        silence_injected_panics();
        let pool = TaskPool::new(4).unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        for round in 0..8 {
            if round == 3 || round == 5 {
                pool.inject_worker_kill();
            }
            for _ in 0..25 {
                let h = Arc::clone(&hits);
                pool.submit_job(move |_| {
                    h.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.wait_all();
        }
        assert_eq!(
            hits.load(Ordering::SeqCst),
            8 * 25,
            "no task lost or doubled"
        );
        // Kills travel through the overflow queue, which `wait_all` does
        // not track — give the workers a moment to consume them.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.worker_respawns() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.worker_respawns(), 2);
        // The pool is still fully functional after both revivals.
        let h = Arc::clone(&hits);
        pool.submit_job(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        pool.wait_all();
        assert_eq!(hits.load(Ordering::SeqCst), 8 * 25 + 1);
    }

    #[test]
    fn per_worker_counters_sum_to_totals() {
        let pool = TaskPool::new(4).unwrap();
        for _ in 0..8 {
            pool.submit_job(|p| {
                let tasks: Vec<Task> = (0..16)
                    .map(|_| Box::new(|| std::thread::sleep(Duration::from_micros(200))) as Task)
                    .collect();
                p.scope(tasks);
            });
        }
        pool.wait_all();
        let per_worker: Vec<WorkerSnapshot> = (0..pool.n_workers())
            .map(|i| pool.worker_snapshot(i))
            .collect();
        let tasks: u64 = per_worker.iter().map(|s| s.executed_tasks).sum();
        assert_eq!(tasks, pool.executed_tasks());
        assert_eq!(tasks, 8 * 16);
        let steals: u64 = per_worker.iter().map(|s| s.steals).sum();
        assert_eq!(steals, pool.steal_count());
        let batches: u64 = per_worker.iter().map(|s| s.steal_batches).sum();
        assert_eq!(batches, pool.steal_batches());
        let busy: u64 = per_worker.iter().map(|s| s.busy_nanos).sum();
        // Worker task time is a subset of total busy time (which also
        // counts job bodies run outside any single task).
        assert!(busy > 0 && busy <= pool.busy_nanos());
    }

    #[test]
    fn metrics_export_covers_every_worker() {
        let pool = TaskPool::new(3).unwrap();
        pool.submit_job(|p| {
            let tasks: Vec<Task> = (0..6)
                .map(|_| Box::new(|| std::thread::sleep(Duration::from_micros(100))) as Task)
                .collect();
            p.scope(tasks);
        });
        pool.wait_all();
        let metrics = lte_obs::MetricsRegistry::new();
        pool.export_metrics(&metrics);
        assert_eq!(
            metrics.get("pool.workers"),
            Some(lte_obs::MetricValue::Counter(3))
        );
        for key in [
            "pool.steal_batches",
            "pool.batch_stolen_tasks",
            "pool.lifo_slot_hits",
            "pool.parks",
            "pool.pinned_workers",
        ] {
            assert!(metrics.get(key).is_some(), "missing {key}");
        }
        for i in 0..3 {
            // Each worker's counters are reachable both directly and
            // through the registry's prefix query.
            let per_worker = metrics.counters_with_prefix(&format!("pool.worker.{i}."));
            for key in [
                "busy_nanos",
                "executed_tasks",
                "steals",
                "steal_failures",
                "slot_hits",
                "steal_batches",
                "parks",
            ] {
                let full = format!("pool.worker.{i}.{key}");
                assert!(metrics.get(&full).is_some(), "missing {full}");
                assert!(
                    per_worker.iter().any(|(name, _)| *name == full),
                    "prefix query missing {full}"
                );
            }
        }
        let json = metrics.to_json();
        assert!(json.contains("\"pool.executed_tasks\": 6"), "{json}");
    }
    #[test]
    fn governor_cap_clamps_and_parks() {
        let pool = TaskPool::new(4).unwrap();
        assert_eq!(pool.active_workers(), 4);
        pool.park_workers(3);
        assert_eq!(pool.active_workers(), 1);
        // Can never drop below one active worker.
        pool.park_workers(10);
        assert_eq!(pool.active_workers(), 1);
        // Give the gated workers a moment to accumulate parked time.
        std::thread::sleep(Duration::from_millis(5));
        assert!(pool.governor_parked_nanos() > 0, "parked time must accrue");
        pool.unpark_workers(10);
        assert_eq!(pool.active_workers(), 4);
    }

    #[test]
    fn capped_pool_still_completes_all_work() {
        let pool = TaskPool::new(4).unwrap();
        pool.set_active_workers(1);
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.submit_job(move |pool| {
                let c2 = Arc::clone(&c);
                pool.spawn(move || {
                    c2.fetch_add(1, Ordering::SeqCst);
                });
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_all();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        pool.set_active_workers(4);
    }

    #[test]
    fn boundary_activity_tracks_busy_windows() {
        let pool = TaskPool::new(2).unwrap();
        // First call establishes the window baseline.
        let _ = pool.boundary_activity();
        let idle = {
            std::thread::sleep(Duration::from_millis(2));
            pool.boundary_activity()
        };
        assert!(idle < 0.5, "idle window must read (near) zero: {idle}");
        for _ in 0..4 {
            pool.submit_job(|_| {
                let start = Instant::now();
                while start.elapsed() < Duration::from_millis(2) {
                    std::hint::spin_loop();
                }
            });
        }
        pool.wait_all();
        let busy = pool.boundary_activity();
        assert!(busy > 0.0, "busy window must read positive: {busy}");
        assert!(busy <= 1.5, "activity is a fraction of capacity: {busy}");
    }
}
