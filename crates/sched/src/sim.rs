//! Deterministic discrete-event simulator of a 64-core tile machine.
//!
//! This is the reproduction's stand-in for the Tilera TILEPro64: the power
//! experiments of the paper are occupancy phenomena — which cores are
//! busy, spinning, or napping at each instant under a given resource-
//! management policy — and this simulator reproduces exactly those
//! occupancy traces for the benchmark's task graph, deterministically.
//!
//! Modelled behaviour (matching §IV/§VI of the paper):
//!
//! * one global user queue; idle workers check it **before** stealing;
//! * per-worker task queues; the user thread spawns its tasks locally and
//!   pops LIFO, thieves steal FIFO from the front with a steal latency;
//! * the user thread **waits** (spins) at each phase barrier instead of
//!   stealing, exactly as described in §IV-C;
//! * the `nap` instruction clock-gates a core; "there is no easy way to
//!   reactivate a napping core; a core therefore periodically wakes up to
//!   see if its status has changed" — napping cores here wake every
//!   [`SimConfig::wake_period`] cycles, pay a wake pulse, and re-check;
//! * proactive policies (NAP) deactivate cores whose id exceeds the
//!   per-subframe active-core target (Eq. 5); reactive policies (IDLE)
//!   nap cores that find no work; NAP+IDLE combines both.
//!
//! Per-bucket occupancy statistics (busy / spin / nap cycles, wake pulses)
//! feed the `lte-power` model, and the busy-cycle counts are the
//! `get_cycle_count()` sums behind the paper's activity metric (Eq. 2).
//!
//! The simulator is generic over an [`lte_obs::Recorder`]; with the
//! default [`NoopRecorder`] every trace emission compiles away. A real
//! recorder receives per-core state-transition spans (stage- and
//! subframe-attributed when busy), wake pulses, steals, dispatches and
//! per-subframe latency spans, all timestamped in simulated cycles.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use lte_fault::{DeadlineBudget, FaultPlan, OverloadPolicy};
use lte_obs::{Event as TraceEvent, FaultKind, NoopRecorder, Recorder, Stage};

use crate::cycles::SimJob;

/// Resource-management policy (§VI-B of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NapPolicy {
    /// Idle cores spin; nothing is ever deactivated.
    NoNap,
    /// Reactive: cores that find no work nap and poll periodically.
    Idle,
    /// Proactive: cores above the estimated requirement nap; active
    /// cores spin when idle.
    Nap,
    /// Proactive + reactive combined.
    NapIdle,
}

impl NapPolicy {
    /// `true` if the policy deactivates cores above the subframe target.
    pub fn proactive(self) -> bool {
        matches!(self, NapPolicy::Nap | NapPolicy::NapIdle)
    }

    /// `true` if idle cores nap instead of spinning.
    pub fn reactive(self) -> bool {
        matches!(self, NapPolicy::Idle | NapPolicy::NapIdle)
    }

    /// All four policies in the paper's presentation order.
    pub const ALL: [NapPolicy; 4] = [
        NapPolicy::NoNap,
        NapPolicy::Idle,
        NapPolicy::Nap,
        NapPolicy::NapIdle,
    ];
}

impl std::fmt::Display for NapPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NapPolicy::NoNap => "NONAP",
            NapPolicy::Idle => "IDLE",
            NapPolicy::Nap => "NAP",
            NapPolicy::NapIdle => "NAP+IDLE",
        };
        f.write_str(s)
    }
}

/// Machine and runtime parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Worker cores (the paper: 62 of the 64, one for drivers, one for
    /// the maintenance thread).
    pub n_workers: usize,
    /// Cycles between subframe dispatches (the paper's DELTA; 5 ms at
    /// 700 MHz when running the TILEPro64 at its sustainable rate).
    pub dispatch_period: u64,
    /// Cycles to locate and steal a task from another queue.
    pub steal_latency: u64,
    /// Fixed per-task dispatch overhead.
    pub task_overhead: u64,
    /// Nap wake-poll period in cycles.
    pub wake_period: u64,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// The resource-management policy.
    pub policy: NapPolicy,
}

impl SimConfig {
    /// The paper's evaluation platform: 62 workers at 700 MHz, subframes
    /// every 5 ms, 1 ms nap wake polling.
    pub fn tilepro64(policy: NapPolicy) -> Self {
        SimConfig {
            n_workers: 62,
            dispatch_period: 3_500_000,
            steal_latency: 400,
            task_overhead: 200,
            wake_period: 700_000,
            clock_hz: 700.0e6,
            policy,
        }
    }

    /// Simulated seconds per dispatch period.
    pub fn dispatch_seconds(&self) -> f64 {
        self.dispatch_period as f64 / self.clock_hz
    }
}

/// One subframe's workload: the user jobs plus the policy's active-core
/// target (ignored by non-proactive policies).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubframeLoad {
    /// User jobs to dispatch.
    pub jobs: Vec<SimJob>,
    /// Active-core target from the workload estimator (Eq. 5).
    pub active_target: usize,
}

/// Occupancy statistics for one dispatch-period bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BucketStats {
    /// Cycles spent in useful compute (the Eq. 1 sums).
    pub busy_cycles: u64,
    /// Cycles spent spinning: idle work search plus barrier waits.
    pub spin_cycles: u64,
    /// Cycles spent napping (clock-gated).
    pub nap_cycles: u64,
    /// Nap wake pulses taken in this bucket (total).
    pub wake_pulses: u64,
    /// The subset of wake pulses that only checked a status flag
    /// (proactively napped cores). The paper attributes IDLE's extra
    /// power to the remaining, costlier work-polling pulses.
    pub wake_pulses_status: u64,
    /// The policy's active-core target during this bucket.
    pub active_target: usize,
    /// Jobs completed in this bucket.
    pub jobs_completed: u64,
}

impl BucketStats {
    /// Activity per Eq. 2: useful cycles over total worker cycles.
    pub fn activity(&self, n_workers: usize, bucket_cycles: u64) -> f64 {
        self.busy_cycles as f64 / (n_workers as u64 * bucket_cycles) as f64
    }
}

/// The simulator's output.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Per-dispatch-period occupancy.
    pub buckets: Vec<BucketStats>,
    /// Completion latency (cycles from dispatch) of every job, in
    /// completion order.
    pub job_latencies: Vec<u64>,
    /// Simulated end time in cycles.
    pub end_time: u64,
    /// Total jobs executed.
    pub jobs_total: usize,
    /// Largest number of *subframes* with unfinished jobs at any instant
    /// — the paper: "A base station therefore processes no more than two
    /// to three subframes concurrently."
    pub max_concurrent_subframes: usize,
    /// Total busy cycles per core over the run — shows how proactive
    /// policies concentrate work on the low-numbered (always-active)
    /// cores.
    pub busy_per_core: Vec<u64>,
    /// Busy cycles attributed to each coarse stage, indexed in
    /// [`Stage::SIM`] order (estimation, weights, combine, finish).
    /// The four entries sum exactly to the run's total busy cycles.
    pub stage_cycles: [u64; 4],
    /// Successful steals per core.
    pub steals_per_core: Vec<u64>,
    /// Work searches per core that found nothing to run or steal.
    pub steal_fails_per_core: Vec<u64>,
    /// Tasks (including continuations) executed per core.
    pub tasks_per_core: Vec<u64>,
    /// Nap wake pulses taken per core.
    pub wake_pulses_per_core: Vec<u64>,
    /// Subframes that completed after their deadline budget (only
    /// counted when a [`DeadlineBudget`] is attached).
    pub overruns: u64,
    /// Subframes discarded whole by the `DropSubframe` overload policy.
    pub dropped_subframes: u64,
    /// User jobs shed by the `ShedUsers` / `DropSubframe` policies.
    pub shed_jobs: u64,
    /// Subframes whose demap work was degraded (exact → max-log) by the
    /// `DegradeDemap` policy.
    pub degraded_subframes: u64,
    /// Tasks that hit a seeded panic and were re-executed (chaos runs).
    pub poisoned_tasks: u64,
    /// Jobs whose user-thread ownership was adopted by a surviving core
    /// after their owner fail-stopped.
    pub adopted_jobs: u64,
}

impl SimReport {
    /// Latency percentile in cycles (`p` in 0..=100); 0 for empty runs.
    pub fn latency_percentile(&self, p: usize) -> u64 {
        if self.job_latencies.is_empty() {
            return 0;
        }
        let mut sorted = self.job_latencies.clone();
        sorted.sort_unstable();
        let idx = (sorted.len() - 1).min(sorted.len() * p.min(100) / 100);
        sorted[idx]
    }

    /// Mean activity over the whole run (Eq. 2 with a run-length window).
    pub fn mean_activity(&self, cfg: &SimConfig) -> f64 {
        let busy: u64 = self.buckets.iter().map(|b| b.busy_cycles).sum();
        let total = cfg.n_workers as u64 * cfg.dispatch_period * self.buckets.len().max(1) as u64;
        busy as f64 / total as f64
    }

    /// Activity averaged over windows of `per` buckets (the paper uses
    /// 1-second windows = 200 subframes).
    pub fn windowed_activity(&self, cfg: &SimConfig, per: usize) -> Vec<f64> {
        assert!(per > 0, "window must be positive");
        self.buckets
            .chunks(per)
            .map(|w| {
                let busy: u64 = w.iter().map(|b| b.busy_cycles).sum();
                busy as f64 / (cfg.n_workers as u64 * cfg.dispatch_period * w.len() as u64) as f64
            })
            .collect()
    }

    /// Busy cycles per coarse pipeline stage, in pipeline order.
    ///
    /// The stage totals sum exactly to the run's busy cycles, i.e. to
    /// the Eq. 2 activity figure times `n_workers × cycles` capacity.
    pub fn stage_breakdown(&self) -> [(Stage, u64); 4] {
        [
            (Stage::Estimation, self.stage_cycles[0]),
            (Stage::Weights, self.stage_cycles[1]),
            (Stage::Combine, self.stage_cycles[2]),
            (Stage::Finish, self.stage_cycles[3]),
        ]
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Estimation,
    Weights,
    Combine,
    Finish,
}

struct JobState {
    spec: SimJob,
    phase: Phase,
    pending: usize,
    user_core: usize,
    ready_continuation: bool,
    dispatched_at: u64,
    subframe: usize,
    done: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Work {
    /// A stealable phase task of `job`.
    Task { job: usize, cost: u64 },
    /// The combiner-weight continuation of `job`.
    Weights { job: usize },
    /// The serial tail of `job`.
    Finish { job: usize },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CoreState {
    SpinIdle,
    Busy,
    WaitBarrier,
    NapReactive,
    NapProactive,
    /// Fail-stopped by a chaos plan; never transitions out.
    Dead,
}

/// Maps the simulator's internal state onto the trace vocabulary.
fn trace_state(state: CoreState) -> lte_obs::CoreState {
    match state {
        CoreState::Busy => lte_obs::CoreState::Busy,
        CoreState::SpinIdle => lte_obs::CoreState::Spin,
        CoreState::WaitBarrier => lte_obs::CoreState::Barrier,
        CoreState::NapReactive => lte_obs::CoreState::NapReactive,
        CoreState::NapProactive => lte_obs::CoreState::NapProactive,
        CoreState::Dead => lte_obs::CoreState::Dead,
    }
}

/// Index of a coarse stage in [`SimReport::stage_cycles`].
fn stage_slot(stage: Stage) -> usize {
    match stage {
        Stage::Estimation => 0,
        Stage::Weights => 1,
        Stage::Combine => 2,
        Stage::Finish => 3,
        other => unreachable!("simulator never runs fine-grained stage {other}"),
    }
}

struct Core {
    state: CoreState,
    state_since: u64,
    deque: VecDeque<Work>,
    current: Option<Work>,
    /// Stage attribution of the in-flight work (busy state only).
    current_stage: Option<Stage>,
    /// Subframe attribution of the in-flight work (busy state only).
    current_subframe: Option<u32>,
    owned_job: Option<usize>,
    wake_seq: u64,
    wake_pending: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Dispatch { subframe: usize },
    TaskDone { core: usize },
    Wake { core: usize, seq: u64 },
    CoreDeath { core: usize },
}

/// The discrete-event simulator. Construct with a config, feed it a
/// subframe sequence with [`Simulator::run`].
///
/// Generic over the trace [`Recorder`]; [`Simulator::new`] uses the
/// zero-cost [`NoopRecorder`], [`Simulator::with_recorder`] attaches a
/// real sink.
pub struct Simulator<R: Recorder = NoopRecorder> {
    cfg: SimConfig,
    recorder: R,
    cores: Vec<Core>,
    jobs: Vec<JobState>,
    user_queue: VecDeque<usize>,
    events: BinaryHeap<Reverse<(u64, u64, Event)>>,
    event_seq: u64,
    now: u64,
    target: usize,
    buckets: Vec<BucketStats>,
    job_latencies: Vec<u64>,
    jobs_completed: usize,
    dispatched_all: bool,
    steal_cursor: usize,
    /// Unfinished-job count per subframe index (for concurrency stats).
    open_jobs_per_subframe: Vec<usize>,
    /// Dispatch time per subframe (for latency spans).
    subframe_dispatched_at: Vec<u64>,
    busy_per_core: Vec<u64>,
    stage_cycles: [u64; 4],
    steals_per_core: Vec<u64>,
    steal_fails_per_core: Vec<u64>,
    tasks_per_core: Vec<u64>,
    wake_pulses_per_core: Vec<u64>,
    open_subframes: usize,
    max_concurrent_subframes: usize,
    /// Per-subframe deadline budget and overload policy, if attached.
    degradation: Option<DeadlineBudget>,
    /// Seeded chaos plan (core death, slow cores, task poisoning).
    chaos: Option<FaultPlan>,
    /// Jobs whose user core died mid-flight, bundled with their stranded
    /// work, awaiting adoption by a surviving core.
    orphan_owners: VecDeque<(usize, Vec<Work>)>,
    /// Per-subframe count of tasks drawn against the chaos plan (the
    /// deterministic task ordinal for `FaultPlan::task_panics`).
    tasks_drawn_per_subframe: Vec<usize>,
    overruns: u64,
    dropped_subframes: u64,
    shed_jobs: u64,
    degraded_subframes: u64,
    poisoned_tasks: u64,
    adopted_jobs: u64,
}

impl Simulator {
    /// Creates a simulator with tracing disabled.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_workers == 0` or `cfg.dispatch_period == 0`.
    pub fn new(cfg: SimConfig) -> Self {
        Simulator::with_recorder(cfg, NoopRecorder)
    }
}

impl<R: Recorder> Simulator<R> {
    /// Creates a simulator that emits trace events into `recorder`.
    ///
    /// Pass `&recorder` (or an `Arc`) to keep the sink afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_workers == 0` or `cfg.dispatch_period == 0`.
    pub fn with_recorder(cfg: SimConfig, recorder: R) -> Self {
        assert!(cfg.n_workers > 0, "need at least one worker");
        assert!(cfg.dispatch_period > 0, "dispatch period must be positive");
        let cores = (0..cfg.n_workers)
            .map(|_| Core {
                state: CoreState::SpinIdle,
                state_since: 0,
                deque: VecDeque::new(),
                current: None,
                current_stage: None,
                current_subframe: None,
                owned_job: None,
                wake_seq: 0,
                wake_pending: false,
            })
            .collect();
        Simulator {
            cfg,
            recorder,
            cores,
            jobs: Vec::new(),
            user_queue: VecDeque::new(),
            events: BinaryHeap::new(),
            event_seq: 0,
            now: 0,
            target: cfg.n_workers,
            buckets: Vec::new(),
            job_latencies: Vec::new(),
            jobs_completed: 0,
            dispatched_all: false,
            steal_cursor: 0,
            open_jobs_per_subframe: Vec::new(),
            subframe_dispatched_at: Vec::new(),
            busy_per_core: vec![0; cfg.n_workers],
            stage_cycles: [0; 4],
            steals_per_core: vec![0; cfg.n_workers],
            steal_fails_per_core: vec![0; cfg.n_workers],
            tasks_per_core: vec![0; cfg.n_workers],
            wake_pulses_per_core: vec![0; cfg.n_workers],
            open_subframes: 0,
            max_concurrent_subframes: 0,
            degradation: None,
            chaos: None,
            orphan_owners: VecDeque::new(),
            tasks_drawn_per_subframe: Vec::new(),
            overruns: 0,
            dropped_subframes: 0,
            shed_jobs: 0,
            degraded_subframes: 0,
            poisoned_tasks: 0,
            adopted_jobs: 0,
        }
    }

    /// Attaches a per-subframe deadline budget: subframes finishing past
    /// `budget.budget` cycles after dispatch count as overruns, and new
    /// subframes dispatched while older ones are still open are subjected
    /// to `budget.policy` (drop / shed / degrade).
    pub fn with_degradation(mut self, budget: DeadlineBudget) -> Self {
        self.degradation = Some(budget);
        self
    }

    /// Attaches a seeded chaos plan. The DES honours the plan's
    /// `dead_core` (fail-stop + orphan adoption), `slow_cores` (task-time
    /// multipliers) and `task_panic_permille` (poisoned tasks burn their
    /// cost, are counted, and re-execute).
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Runs the subframe sequence to completion and reports occupancy.
    pub fn run(mut self, subframes: &[SubframeLoad]) -> SimReport {
        self.buckets = vec![BucketStats::default(); subframes.len().max(1)];
        self.open_jobs_per_subframe = vec![0; subframes.len()];
        self.subframe_dispatched_at = vec![0; subframes.len()];
        self.tasks_drawn_per_subframe = vec![0; subframes.len()];
        if let Some(plan) = self.chaos.clone() {
            if let Some(dc) = plan.dead_core {
                if dc.core < self.cfg.n_workers {
                    self.push_event(dc.at_cycle, Event::CoreDeath { core: dc.core });
                }
            }
            if self.recorder.enabled() {
                for sc in &plan.slow_cores {
                    if sc.core < self.cfg.n_workers {
                        self.recorder.record(TraceEvent::Fault {
                            kind: FaultKind::SlowCore,
                            core: sc.core as u32,
                            subframe: u32::MAX,
                            t: 0,
                        });
                    }
                }
            }
        }
        for (i, _) in subframes.iter().enumerate() {
            self.push_event(
                i as u64 * self.cfg.dispatch_period,
                Event::Dispatch { subframe: i },
            );
        }
        if subframes.is_empty() {
            self.dispatched_all = true;
        }
        while let Some(Reverse((t, _, ev))) = self.events.pop() {
            self.now = t;
            match ev {
                Event::Dispatch { subframe } => self.handle_dispatch(subframe, subframes),
                Event::TaskDone { core } => self.handle_task_done(core),
                Event::Wake { core, seq } => self.handle_wake(core, seq),
                Event::CoreDeath { core } => self.handle_core_death(core),
            }
        }
        // Flush terminal states.
        let end = self.now;
        for c in 0..self.cores.len() {
            let (state, since) = (self.cores[c].state, self.cores[c].state_since);
            self.account(state, since, end);
            if state == CoreState::Busy && end > since {
                self.busy_per_core[c] += end - since;
                if let Some(stage) = self.cores[c].current_stage {
                    self.stage_cycles[stage_slot(stage)] += end - since;
                }
            }
            if self.recorder.enabled() && end > since {
                let busy = state == CoreState::Busy;
                self.recorder.record(TraceEvent::CoreSpan {
                    core: c as u32,
                    state: trace_state(state),
                    start: since,
                    end,
                    stage: if busy {
                        self.cores[c].current_stage
                    } else {
                        None
                    },
                    subframe: if busy {
                        self.cores[c].current_subframe
                    } else {
                        None
                    },
                });
            }
        }
        debug_assert_eq!(self.jobs_completed, self.jobs.len(), "all jobs must finish");
        SimReport {
            buckets: self.buckets,
            job_latencies: self.job_latencies,
            end_time: end,
            jobs_total: self.jobs.len(),
            max_concurrent_subframes: self.max_concurrent_subframes,
            busy_per_core: self.busy_per_core,
            stage_cycles: self.stage_cycles,
            steals_per_core: self.steals_per_core,
            steal_fails_per_core: self.steal_fails_per_core,
            tasks_per_core: self.tasks_per_core,
            wake_pulses_per_core: self.wake_pulses_per_core,
            overruns: self.overruns,
            dropped_subframes: self.dropped_subframes,
            shed_jobs: self.shed_jobs,
            degraded_subframes: self.degraded_subframes,
            poisoned_tasks: self.poisoned_tasks,
            adopted_jobs: self.adopted_jobs,
        }
    }

    fn push_event(&mut self, t: u64, ev: Event) {
        self.event_seq += 1;
        self.events.push(Reverse((t, self.event_seq, ev)));
    }

    fn all_work_done(&self) -> bool {
        self.dispatched_all && self.jobs_completed == self.jobs.len()
    }

    /// Splits a state interval across buckets and accumulates it.
    fn account(&mut self, state: CoreState, from: u64, to: u64) {
        if to <= from {
            return;
        }
        let width = self.cfg.dispatch_period;
        let last = self.buckets.len() - 1;
        let mut t = from;
        while t < to {
            let idx = ((t / width) as usize).min(last);
            let bucket_end = if idx == last {
                to
            } else {
                ((t / width) + 1) * width
            };
            let span = bucket_end.min(to) - t;
            let b = &mut self.buckets[idx];
            match state {
                CoreState::Busy => b.busy_cycles += span,
                CoreState::SpinIdle | CoreState::WaitBarrier => b.spin_cycles += span,
                // A dead core is power-gated: account it like a nap so
                // occupancy still tiles workers × time.
                CoreState::NapReactive | CoreState::NapProactive | CoreState::Dead => {
                    b.nap_cycles += span
                }
            }
            t = bucket_end.min(to);
        }
    }

    fn bucket_idx(&self, t: u64) -> usize {
        ((t / self.cfg.dispatch_period) as usize).min(self.buckets.len() - 1)
    }

    /// Transitions a core to a new state, accounting the old interval
    /// and emitting it as a trace span.
    fn set_state(&mut self, core: usize, state: CoreState) {
        let (old, since) = (self.cores[core].state, self.cores[core].state_since);
        let now = self.now;
        self.account(old, since, now);
        if old == CoreState::Busy && now > since {
            self.busy_per_core[core] += now - since;
            if let Some(stage) = self.cores[core].current_stage {
                self.stage_cycles[stage_slot(stage)] += now - since;
            }
        }
        if self.recorder.enabled() && now > since {
            let busy = old == CoreState::Busy;
            self.recorder.record(TraceEvent::CoreSpan {
                core: core as u32,
                state: trace_state(old),
                start: since,
                end: now,
                stage: if busy {
                    self.cores[core].current_stage
                } else {
                    None
                },
                subframe: if busy {
                    self.cores[core].current_subframe
                } else {
                    None
                },
            });
        }
        let c = &mut self.cores[core];
        c.state = state;
        c.state_since = now;
        if state != CoreState::Busy {
            c.current_stage = None;
            c.current_subframe = None;
        }
    }

    /// Applies the attached overload policy to an incoming subframe when
    /// the receiver is behind (older subframes still open at dispatch).
    /// Returns the job list that actually runs.
    fn apply_overload_policy(&mut self, subframe: usize, jobs: Vec<SimJob>) -> Vec<SimJob> {
        let Some(budget) = self.degradation else {
            return jobs;
        };
        if self.open_subframes == 0 || jobs.is_empty() {
            return jobs;
        }
        let record_fault = |sim: &mut Self, kind: FaultKind| {
            if sim.recorder.enabled() {
                sim.recorder.record(TraceEvent::Fault {
                    kind,
                    core: u32::MAX,
                    subframe: subframe as u32,
                    t: sim.now,
                });
            }
        };
        match budget.policy {
            OverloadPolicy::DropSubframe => {
                self.dropped_subframes += 1;
                self.shed_jobs += jobs.len() as u64;
                record_fault(self, FaultKind::SubframeDropped);
                Vec::new()
            }
            OverloadPolicy::ShedUsers => {
                // Shed lowest-cost (lowest-PRB) users until the remainder
                // fits the budget's cycle capacity; always shed at least
                // one and always keep at least one.
                let capacity = budget.budget.saturating_mul(self.target as u64);
                let mut order: Vec<usize> = (0..jobs.len()).collect();
                order.sort_by_key(|&i| (jobs[i].total_cycles(), i));
                let mut total: u64 = jobs.iter().map(|j| j.total_cycles()).sum();
                let mut shed = vec![false; jobs.len()];
                let mut n_shed = 0;
                for &i in &order {
                    if (total <= capacity && n_shed > 0) || n_shed + 1 == jobs.len() {
                        break;
                    }
                    total -= jobs[i].total_cycles();
                    shed[i] = true;
                    n_shed += 1;
                    record_fault(self, FaultKind::UserShed);
                }
                self.shed_jobs += n_shed as u64;
                jobs.into_iter()
                    .zip(shed)
                    .filter_map(|(j, s)| (!s).then_some(j))
                    .collect()
            }
            OverloadPolicy::DegradeDemap => {
                // Max-log demapping costs ~70% of the exact kernel; the
                // subframe keeps every user at reduced combine cost.
                self.degraded_subframes += 1;
                record_fault(self, FaultKind::DemapDegraded);
                jobs.into_iter()
                    .map(|mut j| {
                        for c in &mut j.combine_tasks {
                            *c = *c * 7 / 10;
                        }
                        j
                    })
                    .collect()
            }
        }
    }

    fn handle_dispatch(&mut self, subframe: usize, subframes: &[SubframeLoad]) {
        let load = &subframes[subframe];
        self.target = if self.cfg.policy.proactive() {
            load.active_target.clamp(1, self.cfg.n_workers)
        } else {
            self.cfg.n_workers
        };
        let idx = self.bucket_idx(self.now);
        self.buckets[idx].active_target = self.target;
        self.subframe_dispatched_at[subframe] = self.now;
        let jobs = self.apply_overload_policy(subframe, load.jobs.clone());
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent::Dispatch {
                subframe: subframe as u32,
                t: self.now,
                jobs: jobs.len() as u32,
                active_target: self.target as u32,
            });
        }
        if !jobs.is_empty() {
            self.open_jobs_per_subframe[subframe] = jobs.len();
            self.open_subframes += 1;
            self.max_concurrent_subframes = self.max_concurrent_subframes.max(self.open_subframes);
        }
        for job in &jobs {
            let id = self.jobs.len();
            self.jobs.push(JobState {
                spec: job.clone(),
                phase: Phase::Estimation,
                pending: 0,
                user_core: usize::MAX,
                ready_continuation: false,
                dispatched_at: self.now,
                subframe,
                done: false,
            });
            self.user_queue.push_back(id);
        }
        if subframe + 1 == subframes.len() {
            self.dispatched_all = true;
        }
        // A proactive target drop naps spinning cores above the line;
        // new work wakes the rest.
        self.renap_spinners_above_target();
        self.notify_spinners();
    }

    /// The proactive active-core line, shifted up to compensate for dead
    /// cores below it so a chaos plan cannot starve the machine.
    fn effective_target(&self) -> usize {
        let dead_below = self
            .cores
            .iter()
            .take(self.target)
            .filter(|c| c.state == CoreState::Dead)
            .count();
        (self.target + dead_below).min(self.cfg.n_workers)
    }

    /// Proactively naps spinning cores whose id is at or above the target.
    fn renap_spinners_above_target(&mut self) {
        if !self.cfg.policy.proactive() {
            return;
        }
        for core in self.effective_target()..self.cfg.n_workers {
            if self.cores[core].state == CoreState::SpinIdle && self.cores[core].owned_job.is_none()
            {
                self.enter_nap(core, CoreState::NapProactive);
            }
        }
    }

    /// Schedules immediate work-search wakeups for all spinning cores.
    fn notify_spinners(&mut self) {
        for core in 0..self.cfg.n_workers {
            if self.cores[core].state == CoreState::SpinIdle && !self.cores[core].wake_pending {
                self.cores[core].wake_pending = true;
                self.cores[core].wake_seq += 1;
                let seq = self.cores[core].wake_seq;
                self.push_event(self.now, Event::Wake { core, seq });
            }
        }
    }

    fn enter_nap(&mut self, core: usize, kind: CoreState) {
        debug_assert!(matches!(
            kind,
            CoreState::NapReactive | CoreState::NapProactive
        ));
        self.set_state(core, kind);
        if !self.all_work_done() {
            self.cores[core].wake_seq += 1;
            self.cores[core].wake_pending = true;
            let seq = self.cores[core].wake_seq;
            let t = self.now + self.cfg.wake_period;
            self.push_event(t, Event::Wake { core, seq });
        }
    }

    fn handle_wake(&mut self, core: usize, seq: u64) {
        if self.cores[core].wake_seq != seq {
            return; // stale wakeup
        }
        self.cores[core].wake_pending = false;
        match self.cores[core].state {
            CoreState::NapReactive | CoreState::NapProactive => {
                let status_only = self.cores[core].state == CoreState::NapProactive;
                let idx = self.bucket_idx(self.now);
                self.buckets[idx].wake_pulses += 1;
                if status_only {
                    self.buckets[idx].wake_pulses_status += 1;
                }
                self.wake_pulses_per_core[core] += 1;
                if self.recorder.enabled() {
                    self.recorder.record(TraceEvent::WakePulse {
                        core: core as u32,
                        t: self.now,
                        status_only,
                    });
                }
                self.find_work(core);
            }
            CoreState::SpinIdle => self.find_work(core),
            _ => {}
        }
    }

    /// Fail-stops a core per the chaos plan: queued and in-flight work is
    /// re-routed to surviving owners, and the core's own job (if any) is
    /// bundled for adoption by the next free survivor.
    fn handle_core_death(&mut self, core: usize) {
        if self.cores[core].state == CoreState::Dead {
            return;
        }
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent::Fault {
                kind: FaultKind::CoreDeath,
                core: core as u32,
                subframe: u32::MAX,
                t: self.now,
            });
        }
        let inflight = self.cores[core].current.take();
        self.set_state(core, CoreState::Dead);
        // Cancel any pending wake; the Dead guard voids the pending
        // TaskDone of the in-flight work.
        self.cores[core].wake_seq += 1;
        self.cores[core].wake_pending = false;
        let mut stranded: Vec<Work> = self.cores[core].deque.drain(..).collect();
        if let Some(w) = inflight {
            stranded.push(w);
        }
        let owned = self.cores[core].owned_job.take();
        let mut own_bundle: Vec<Work> = Vec::new();
        for w in stranded {
            let job = match w {
                Work::Task { job, .. } | Work::Weights { job } | Work::Finish { job } => job,
            };
            if Some(job) == owned {
                own_bundle.push(w);
                continue;
            }
            let uc = self.jobs[job].user_core;
            if self.cores[uc].state == CoreState::Dead {
                // That owner died earlier; grow its adoption bundle.
                if let Some(entry) = self.orphan_owners.iter_mut().find(|(j, _)| *j == job) {
                    entry.1.push(w);
                } else {
                    let alive = self.first_alive_core();
                    self.cores[alive].deque.push_back(w);
                }
            } else if self.cores[uc].state == CoreState::WaitBarrier {
                // The owner is waiting on exactly this work: re-run it
                // there, paying a steal latency for the migration.
                self.start_work(uc, w, self.cfg.steal_latency);
            } else {
                self.cores[uc].deque.push_back(w);
            }
        }
        if let Some(job) = owned {
            self.orphan_owners.push_back((job, own_bundle));
        }
        // Wake survivors so stranded work and orphaned ownership are
        // picked up promptly.
        self.notify_spinners();
    }

    fn start_work(&mut self, core: usize, work: Work, extra_latency: u64) {
        let (job, mut cost, stage) = match work {
            Work::Task { job, cost } => {
                let stage = match self.jobs[job].phase {
                    Phase::Estimation => Stage::Estimation,
                    Phase::Combine => Stage::Combine,
                    p => unreachable!("tasks only run in estimation/combine, not {p:?}"),
                };
                (job, cost, stage)
            }
            Work::Weights { job } => (job, self.jobs[job].spec.weights_cost, Stage::Weights),
            Work::Finish { job } => (job, self.jobs[job].spec.finish_cost, Stage::Finish),
        };
        if let Some(plan) = &self.chaos {
            if let Some(sc) = plan.slow_cores.iter().find(|s| s.core == core) {
                cost = cost.saturating_mul(u64::from(sc.factor_permille)) / 1000;
            }
        }
        self.set_state(core, CoreState::Busy);
        let subframe = self.jobs[job].subframe as u32;
        let c = &mut self.cores[core];
        c.current = Some(work);
        c.current_stage = Some(stage);
        c.current_subframe = Some(subframe);
        self.tasks_per_core[core] += 1;
        let done_at = self.now + extra_latency + self.cfg.task_overhead + cost;
        self.push_event(done_at, Event::TaskDone { core });
    }

    /// Spawns the current phase's stealable tasks onto the user core's
    /// deque and sets the pending barrier count.
    fn spawn_phase_tasks(&mut self, job_id: usize) {
        let (costs, phase) = {
            let j = &self.jobs[job_id];
            match j.phase {
                Phase::Estimation => (j.spec.est_tasks.clone(), Phase::Estimation),
                Phase::Combine => (j.spec.combine_tasks.clone(), Phase::Combine),
                _ => unreachable!("only estimation/combine spawn task sets"),
            }
        };
        let _ = phase;
        let sf = self.jobs[job_id].subframe;
        // If the owning core died before this phase spawned (its Weights
        // continuation ran elsewhere as an orphan), spawn onto the first
        // surviving core instead.
        let core = {
            let uc = self.jobs[job_id].user_core;
            if self.cores[uc].state == CoreState::Dead {
                self.first_alive_core()
            } else {
                uc
            }
        };
        self.jobs[job_id].pending = 0;
        for cost in costs {
            let mut copies = 1;
            if let Some(plan) = &self.chaos {
                let ord = self.tasks_drawn_per_subframe[sf];
                self.tasks_drawn_per_subframe[sf] += 1;
                if plan.task_panics(sf, ord) {
                    // A poisoned task burns a full execution, is counted,
                    // and re-runs: queue it twice, barrier on both.
                    copies = 2;
                    self.poisoned_tasks += 1;
                    if self.recorder.enabled() {
                        self.recorder.record(TraceEvent::Fault {
                            kind: FaultKind::TaskPanic,
                            core: core as u32,
                            subframe: sf as u32,
                            t: self.now,
                        });
                    }
                }
            }
            self.jobs[job_id].pending += copies;
            for _ in 0..copies {
                self.cores[core]
                    .deque
                    .push_back(Work::Task { job: job_id, cost });
            }
        }
        self.notify_spinners();
    }

    /// Lowest-index core that has not fail-stopped. Panics only if every
    /// core is dead, which a single-`dead_core` plan cannot produce.
    fn first_alive_core(&self) -> usize {
        self.cores
            .iter()
            .position(|c| c.state != CoreState::Dead)
            .expect("at least one core must survive")
    }

    fn handle_task_done(&mut self, core: usize) {
        if self.cores[core].state == CoreState::Dead {
            // The core died mid-task; its in-flight work was re-queued at
            // death time, so this completion is void.
            return;
        }
        let work = self.cores[core]
            .current
            .take()
            .expect("TaskDone without current work");
        match work {
            Work::Task { job, .. } => {
                self.jobs[job].pending -= 1;
                if self.jobs[job].pending == 0 {
                    self.barrier_complete(job);
                }
            }
            Work::Weights { job } => {
                self.jobs[job].phase = Phase::Combine;
                self.spawn_phase_tasks(job);
            }
            Work::Finish { job } => {
                self.jobs[job].done = true;
                self.jobs_completed += 1;
                let latency = self.now - self.jobs[job].dispatched_at;
                self.job_latencies.push(latency);
                let idx = self.bucket_idx(self.now);
                self.buckets[idx].jobs_completed += 1;
                let sf = self.jobs[job].subframe;
                self.open_jobs_per_subframe[sf] -= 1;
                if self.open_jobs_per_subframe[sf] == 0 {
                    self.open_subframes -= 1;
                    if let Some(budget) = self.degradation {
                        if self.now - self.subframe_dispatched_at[sf] > budget.budget {
                            self.overruns += 1;
                            if self.recorder.enabled() {
                                self.recorder.record(TraceEvent::Fault {
                                    kind: FaultKind::DeadlineOverrun,
                                    core: u32::MAX,
                                    subframe: sf as u32,
                                    t: self.now,
                                });
                            }
                        }
                    }
                    if self.recorder.enabled() {
                        self.recorder.record(TraceEvent::SubframeSpan {
                            subframe: sf as u32,
                            start: self.subframe_dispatched_at[sf],
                            end: self.now,
                        });
                    }
                }
                self.cores[core].owned_job = None;
            }
        }
        self.find_work(core);
    }

    /// Called when the last task of a barrier phase finishes: makes the
    /// continuation runnable and starts it immediately if the user thread
    /// is already waiting.
    fn barrier_complete(&mut self, job_id: usize) {
        let (phase, user_core) = {
            let j = &mut self.jobs[job_id];
            j.phase = match j.phase {
                Phase::Estimation => Phase::Weights,
                Phase::Combine => Phase::Finish,
                p => p,
            };
            j.ready_continuation = true;
            (j.phase, j.user_core)
        };
        if self.cores[user_core].state == CoreState::WaitBarrier {
            self.jobs[job_id].ready_continuation = false;
            let work = match phase {
                Phase::Weights => Work::Weights { job: job_id },
                Phase::Finish => Work::Finish { job: job_id },
                _ => unreachable!(),
            };
            self.start_work(user_core, work, 0);
        }
    }

    /// The worker scheduling loop body: local queue → barrier
    /// continuation → global user queue → steal → idle (per policy).
    fn find_work(&mut self, core: usize) {
        // User threads drain their own queue, then run continuations,
        // then wait — they never steal mid-job (§IV-C).
        if let Some(job_id) = self.cores[core].owned_job {
            if let Some(task) = self.cores[core].deque.pop_back() {
                self.start_work(core, task, 0);
                return;
            }
            if self.jobs[job_id].ready_continuation {
                self.jobs[job_id].ready_continuation = false;
                let work = match self.jobs[job_id].phase {
                    Phase::Weights => Work::Weights { job: job_id },
                    Phase::Finish => Work::Finish { job: job_id },
                    _ => unreachable!("continuation only in weights/finish"),
                };
                self.start_work(core, work, 0);
                return;
            }
            self.set_state(core, CoreState::WaitBarrier);
            return;
        }

        // Adopt a job orphaned by a core death before anything else: the
        // adopter inherits ownership plus the stranded work, then re-runs
        // the scheduling loop as the new user thread.
        if let Some((job_id, stranded)) = self.orphan_owners.pop_front() {
            self.jobs[job_id].user_core = core;
            self.cores[core].owned_job = Some(job_id);
            self.adopted_jobs += 1;
            for w in stranded {
                self.cores[core].deque.push_back(w);
            }
            return self.find_work(core);
        }

        // Proactively deactivated cores go straight back to sleep.
        if self.cfg.policy.proactive() && core >= self.effective_target() {
            self.enter_nap(core, CoreState::NapProactive);
            return;
        }

        // Global user queue first (§IV-C), then steal.
        if let Some(job_id) = self.user_queue.pop_front() {
            self.jobs[job_id].user_core = core;
            self.cores[core].owned_job = Some(job_id);
            self.spawn_phase_tasks(job_id);
            if let Some(task) = self.cores[core].deque.pop_back() {
                self.start_work(core, task, 0);
            }
            return;
        }
        if let Some(victim) = self.find_victim(core) {
            let task = self.cores[victim]
                .deque
                .pop_front()
                .expect("victim verified non-empty");
            self.steals_per_core[core] += 1;
            if self.recorder.enabled() {
                self.recorder.record(TraceEvent::Steal {
                    thief: core as u32,
                    victim: victim as u32,
                    t: self.now,
                });
            }
            self.start_work(core, task, self.cfg.steal_latency);
            return;
        }

        // Nothing to do.
        self.steal_fails_per_core[core] += 1;
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent::StealFail {
                core: core as u32,
                t: self.now,
            });
        }
        if self.cfg.policy.reactive() {
            self.enter_nap(core, CoreState::NapReactive);
        } else {
            self.set_state(core, CoreState::SpinIdle);
        }
    }

    /// Round-robin victim search, deterministic and fair.
    fn find_victim(&mut self, thief: usize) -> Option<usize> {
        let n = self.cfg.n_workers;
        for i in 0..n {
            let v = (self.steal_cursor + i) % n;
            if v != thief && !self.cores[v].deque.is_empty() {
                self.steal_cursor = (v + 1) % n;
                return Some(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(policy: NapPolicy) -> SimConfig {
        SimConfig {
            n_workers: 8,
            dispatch_period: 100_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 20_000,
            clock_hz: 700.0e6,
            policy,
        }
    }

    fn job(units: u64) -> SimJob {
        SimJob {
            est_tasks: vec![units; 4],
            weights_cost: units / 2,
            combine_tasks: vec![units; 8],
            finish_cost: units,
        }
    }

    fn loads(n: usize, units: u64, target: usize) -> Vec<SubframeLoad> {
        (0..n)
            .map(|_| SubframeLoad {
                jobs: vec![job(units)],
                active_target: target,
            })
            .collect()
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        for policy in NapPolicy::ALL {
            let report = Simulator::new(small_cfg(policy)).run(&loads(10, 3_000, 4));
            assert_eq!(report.jobs_total, 10, "{policy}");
            assert_eq!(report.job_latencies.len(), 10, "{policy}");
        }
    }

    #[test]
    fn latency_percentile_bounds_are_min_and_max() {
        let report = Simulator::new(small_cfg(NapPolicy::NoNap)).run(&loads(10, 3_000, 8));
        let min = *report.job_latencies.iter().min().unwrap();
        let max = *report.job_latencies.iter().max().unwrap();
        assert_eq!(report.latency_percentile(0), min);
        assert_eq!(report.latency_percentile(100), max);
        // Out-of-range percentiles clamp to the maximum, never panic.
        assert_eq!(report.latency_percentile(1000), max);
        let p50 = report.latency_percentile(50);
        assert!((min..=max).contains(&p50));
    }

    #[test]
    fn empty_run_has_zero_latency_percentiles() {
        let report = Simulator::new(small_cfg(NapPolicy::NoNap)).run(&[]);
        assert_eq!(report.jobs_total, 0);
        for p in [0, 50, 100] {
            assert_eq!(report.latency_percentile(p), 0, "p{p} of an empty run");
        }
    }

    #[test]
    fn busy_cycles_equal_work_plus_overhead() {
        // Conservation: total busy time must equal the sum of all task
        // costs plus per-task overheads and steal latencies.
        let cfg = small_cfg(NapPolicy::NoNap);
        let subframes = loads(5, 2_000, 8);
        let report = Simulator::new(cfg).run(&subframes);
        let busy: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
        let work: u64 = subframes
            .iter()
            .flat_map(|s| &s.jobs)
            .map(|j| j.total_cycles())
            .sum();
        let tasks_per_job = 4 + 1 + 8 + 1;
        let min = work + 5 * tasks_per_job * cfg.task_overhead;
        let max = min + 5 * tasks_per_job * cfg.steal_latency;
        assert!(
            (min..=max).contains(&busy),
            "busy {busy} outside [{min}, {max}]"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = Simulator::new(small_cfg(NapPolicy::NapIdle)).run(&loads(20, 1_500, 3));
        let b = Simulator::new(small_cfg(NapPolicy::NapIdle)).run(&loads(20, 1_500, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn nonap_never_naps() {
        let report = Simulator::new(small_cfg(NapPolicy::NoNap)).run(&loads(5, 1_000, 2));
        let naps: u64 = report.buckets.iter().map(|b| b.nap_cycles).sum();
        assert_eq!(naps, 0);
        let pulses: u64 = report.buckets.iter().map(|b| b.wake_pulses).sum();
        assert_eq!(pulses, 0);
    }

    #[test]
    fn idle_policy_naps_idle_cores() {
        let report = Simulator::new(small_cfg(NapPolicy::Idle)).run(&loads(5, 1_000, 8));
        let naps: u64 = report.buckets.iter().map(|b| b.nap_cycles).sum();
        assert!(naps > 0, "reactive policy must nap idle cores");
        let pulses: u64 = report.buckets.iter().map(|b| b.wake_pulses).sum();
        assert!(pulses > 0, "napping cores must wake periodically");
    }

    #[test]
    fn nap_policy_reduces_spin_relative_to_nonap() {
        // With a low active target, proactive napping converts spin
        // cycles into nap cycles.
        let spin_of = |policy| {
            let r = Simulator::new(small_cfg(policy)).run(&loads(20, 1_000, 2));
            r.buckets.iter().map(|b| b.spin_cycles).sum::<u64>()
        };
        let nonap = spin_of(NapPolicy::NoNap);
        let nap = spin_of(NapPolicy::Nap);
        assert!(nap < nonap, "NAP spin {nap} !< NONAP spin {nonap}");
    }

    #[test]
    fn low_target_increases_latency() {
        // Throttling to 2 cores must slow jobs down vs 8 cores.
        let latency_of = |target| {
            let r = Simulator::new(small_cfg(NapPolicy::Nap)).run(&loads(10, 5_000, target));
            *r.job_latencies.iter().max().unwrap()
        };
        assert!(latency_of(2) > latency_of(8));
    }

    #[test]
    fn conservation_under_stealing_with_many_workers() {
        // Many small jobs per subframe: work must still be conserved.
        let cfg = SimConfig {
            n_workers: 16,
            ..small_cfg(NapPolicy::NoNap)
        };
        let subframes: Vec<SubframeLoad> = (0..10)
            .map(|_| SubframeLoad {
                jobs: vec![job(500); 4],
                active_target: 16,
            })
            .collect();
        let report = Simulator::new(cfg).run(&subframes);
        assert_eq!(report.jobs_total, 40);
        let busy: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
        let work: u64 = subframes
            .iter()
            .flat_map(|s| &s.jobs)
            .map(|j| j.total_cycles())
            .sum();
        assert!(busy >= work, "busy {busy} < work {work}");
    }

    #[test]
    fn occupancy_accounts_for_all_core_time() {
        // busy + spin + nap over all buckets should equal workers ×
        // end_time (within the final partial bucket's slack).
        let cfg = small_cfg(NapPolicy::NapIdle);
        let report = Simulator::new(cfg).run(&loads(10, 2_000, 4));
        let accounted: u64 = report
            .buckets
            .iter()
            .map(|b| b.busy_cycles + b.spin_cycles + b.nap_cycles)
            .sum();
        let total = cfg.n_workers as u64 * report.end_time;
        let diff = (accounted as i64 - total as i64).unsigned_abs();
        assert!(
            diff <= total / 100,
            "accounted {accounted} vs total {total}"
        );
    }

    #[test]
    fn activity_reflects_load() {
        let cfg = small_cfg(NapPolicy::NoNap);
        let light = Simulator::new(cfg).run(&loads(10, 500, 8));
        let heavy = Simulator::new(cfg).run(&loads(10, 20_000, 8));
        assert!(heavy.mean_activity(&cfg) > 3.0 * light.mean_activity(&cfg));
        assert!(heavy.mean_activity(&cfg) <= 1.0);
    }

    #[test]
    fn windowed_activity_covers_run() {
        let cfg = small_cfg(NapPolicy::NoNap);
        let report = Simulator::new(cfg).run(&loads(10, 1_000, 8));
        let w = report.windowed_activity(&cfg, 5);
        assert_eq!(w.len(), 2);
        for a in w {
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn empty_run_is_fine() {
        let report = Simulator::new(small_cfg(NapPolicy::NoNap)).run(&[]);
        assert_eq!(report.jobs_total, 0);
    }

    #[test]
    fn policy_display_names() {
        assert_eq!(NapPolicy::NoNap.to_string(), "NONAP");
        assert_eq!(NapPolicy::NapIdle.to_string(), "NAP+IDLE");
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use lte_fault::{DeadCore, SlowCore};

    fn cfg(policy: NapPolicy) -> SimConfig {
        SimConfig {
            n_workers: 8,
            dispatch_period: 100_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 20_000,
            clock_hz: 700.0e6,
            policy,
        }
    }

    fn job(units: u64) -> SimJob {
        SimJob {
            est_tasks: vec![units; 4],
            weights_cost: units / 2,
            combine_tasks: vec![units; 8],
            finish_cost: units,
        }
    }

    /// A load that overruns the dispatch period: each subframe carries
    /// several multiples of one period of work.
    fn overload(n: usize) -> Vec<SubframeLoad> {
        (0..n)
            .map(|i| SubframeLoad {
                jobs: vec![job(8_000), job(12_000 + 100 * (i as u64 % 3)), job(20_000)],
                active_target: 8,
            })
            .collect()
    }

    fn budget(policy: OverloadPolicy) -> DeadlineBudget {
        DeadlineBudget {
            budget: 100_000,
            policy,
        }
    }

    #[test]
    fn overruns_are_counted_against_the_budget() {
        let report = Simulator::new(cfg(NapPolicy::NoNap))
            .with_degradation(budget(OverloadPolicy::DegradeDemap))
            .run(&overload(10));
        assert!(report.overruns > 0, "overloaded run must overrun");
        assert!(report.degraded_subframes > 0, "policy must have engaged");
        // Degradation keeps every job: nothing shed or dropped.
        assert_eq!(report.shed_jobs, 0);
        assert_eq!(report.dropped_subframes, 0);
        assert_eq!(report.jobs_total, 30);
    }

    #[test]
    fn drop_policy_sacrifices_whole_subframes() {
        let report = Simulator::new(cfg(NapPolicy::NoNap))
            .with_degradation(budget(OverloadPolicy::DropSubframe))
            .run(&overload(10));
        assert!(report.dropped_subframes > 0);
        assert_eq!(report.shed_jobs, 3 * report.dropped_subframes);
        assert_eq!(
            report.jobs_total as u64,
            30 - report.shed_jobs,
            "dropped jobs never enter the machine"
        );
        assert_eq!(report.job_latencies.len(), report.jobs_total);
    }

    #[test]
    fn shed_policy_drops_cheapest_users_first() {
        let report = Simulator::new(cfg(NapPolicy::NoNap))
            .with_degradation(budget(OverloadPolicy::ShedUsers))
            .run(&overload(10));
        assert!(report.shed_jobs > 0);
        assert_eq!(
            report.dropped_subframes, 0,
            "shedding never drops whole subframes"
        );
        assert!(
            report.jobs_total as u64 >= 30 - report.shed_jobs,
            "at least one user survives every shed subframe"
        );
        assert_eq!(report.job_latencies.len(), report.jobs_total);
    }

    #[test]
    fn degradation_reduces_overruns_versus_no_policy() {
        let baseline = Simulator::new(cfg(NapPolicy::NoNap))
            .with_degradation(DeadlineBudget {
                budget: u64::MAX,
                policy: OverloadPolicy::DropSubframe,
            })
            .run(&overload(12));
        assert_eq!(baseline.overruns, 0, "infinite budget never overruns");
        let dropping = Simulator::new(cfg(NapPolicy::NoNap))
            .with_degradation(budget(OverloadPolicy::DropSubframe))
            .run(&overload(12));
        // Dropping load must finish the campaign sooner than running it all.
        let full = Simulator::new(cfg(NapPolicy::NoNap)).run(&overload(12));
        assert!(dropping.end_time < full.end_time);
    }

    #[test]
    fn dead_core_loses_no_jobs() {
        for policy in NapPolicy::ALL {
            let plan = FaultPlan {
                dead_core: Some(DeadCore {
                    core: 0,
                    at_cycle: 150_000,
                }),
                ..FaultPlan::quiet(11)
            };
            let report = Simulator::new(cfg(policy))
                .with_chaos(plan)
                .run(&overload(10));
            assert_eq!(report.jobs_total, 30, "{policy}");
            assert_eq!(report.job_latencies.len(), 30, "{policy}");
            // The dead core stops accumulating busy cycles; survivors
            // carry the load.
            assert!(
                report.busy_per_core[1..].iter().sum::<u64>() > 0,
                "{policy}"
            );
        }
    }

    #[test]
    fn dead_user_core_job_is_adopted() {
        // Core 0 picks up the first job immediately (it owns it) and dies
        // mid-subframe: ownership must migrate.
        let plan = FaultPlan {
            dead_core: Some(DeadCore {
                core: 0,
                at_cycle: 10_000,
            }),
            ..FaultPlan::quiet(3)
        };
        let report = Simulator::new(cfg(NapPolicy::NoNap))
            .with_chaos(plan)
            .run(&overload(6));
        assert_eq!(report.job_latencies.len(), report.jobs_total);
        assert!(report.adopted_jobs >= 1, "core 0 owned a job when it died");
    }

    #[test]
    fn poisoned_tasks_are_retried_not_lost() {
        let plan = FaultPlan {
            task_panic_permille: 100,
            ..FaultPlan::quiet(21)
        };
        let quiet = Simulator::new(cfg(NapPolicy::NoNap)).run(&overload(10));
        let chaotic = Simulator::new(cfg(NapPolicy::NoNap))
            .with_chaos(plan)
            .run(&overload(10));
        assert!(
            chaotic.poisoned_tasks > 0,
            "10% rate must fire in 360 tasks"
        );
        assert_eq!(chaotic.jobs_total, 30);
        assert_eq!(chaotic.job_latencies.len(), 30);
        // Re-executed tasks burn extra cycles.
        let busy = |r: &SimReport| r.buckets.iter().map(|b| b.busy_cycles).sum::<u64>();
        assert!(busy(&chaotic) > busy(&quiet));
    }

    #[test]
    fn slow_core_stretches_execution() {
        let plan = FaultPlan {
            slow_cores: vec![SlowCore {
                core: 0,
                factor_permille: 3000,
            }],
            ..FaultPlan::quiet(5)
        };
        let fast = Simulator::new(cfg(NapPolicy::NoNap)).run(&overload(6));
        let slowed = Simulator::new(cfg(NapPolicy::NoNap))
            .with_chaos(plan)
            .run(&overload(6));
        assert_eq!(slowed.jobs_total, fast.jobs_total);
        let busy = |r: &SimReport| r.buckets.iter().map(|b| b.busy_cycles).sum::<u64>();
        assert!(
            busy(&slowed) > busy(&fast),
            "3x slower core must inflate busy cycles"
        );
    }

    #[test]
    fn chaos_campaigns_are_deterministic() {
        let run = || {
            Simulator::new(cfg(NapPolicy::NapIdle))
                .with_chaos(FaultPlan::smoke(42))
                .with_degradation(budget(OverloadPolicy::ShedUsers))
                .run(&overload(20))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_events_reach_the_recorder() {
        let recorder = lte_obs::RingRecorder::new(1 << 20);
        let plan = FaultPlan {
            task_panic_permille: 100,
            dead_core: Some(DeadCore {
                core: 2,
                at_cycle: 120_000,
            }),
            slow_cores: vec![SlowCore {
                core: 1,
                factor_permille: 1500,
            }],
            ..FaultPlan::quiet(9)
        };
        Simulator::with_recorder(cfg(NapPolicy::NoNap), &recorder)
            .with_chaos(plan)
            .with_degradation(budget(OverloadPolicy::DropSubframe))
            .run(&overload(10));
        let events = recorder.events();
        let kinds: Vec<FaultKind> = events
            .iter()
            .filter_map(|e| match e {
                lte_obs::Event::Fault { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        for expect in [
            FaultKind::TaskPanic,
            FaultKind::CoreDeath,
            FaultKind::SlowCore,
            FaultKind::SubframeDropped,
        ] {
            assert!(kinds.contains(&expect), "missing fault kind {expect}");
        }
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            n_workers: 8,
            dispatch_period: 100_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 20_000,
            clock_hz: 700.0e6,
            policy: NapPolicy::NoNap,
        }
    }

    fn job(units: u64) -> SimJob {
        SimJob {
            est_tasks: vec![units; 4],
            weights_cost: units / 2,
            combine_tasks: vec![units; 8],
            finish_cost: units,
        }
    }

    #[test]
    fn light_load_processes_one_subframe_at_a_time() {
        let loads: Vec<SubframeLoad> = (0..10)
            .map(|_| SubframeLoad {
                jobs: vec![job(1_000)],
                active_target: 8,
            })
            .collect();
        let report = Simulator::new(cfg()).run(&loads);
        assert_eq!(report.max_concurrent_subframes, 1);
    }

    #[test]
    fn heavy_load_overlaps_subframes() {
        // Each subframe carries far more than one period of work.
        let loads: Vec<SubframeLoad> = (0..10)
            .map(|_| SubframeLoad {
                jobs: vec![job(30_000); 2],
                active_target: 8,
            })
            .collect();
        let report = Simulator::new(cfg()).run(&loads);
        assert!(
            report.max_concurrent_subframes >= 2,
            "overloaded run must overlap subframes: {}",
            report.max_concurrent_subframes
        );
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let loads: Vec<SubframeLoad> = (0..20)
            .map(|i| SubframeLoad {
                jobs: vec![job(500 + 200 * (i % 5) as u64)],
                active_target: 8,
            })
            .collect();
        let report = Simulator::new(cfg()).run(&loads);
        let p50 = report.latency_percentile(50);
        let p95 = report.latency_percentile(95);
        let p100 = report.latency_percentile(100);
        assert!(p50 <= p95 && p95 <= p100);
        assert_eq!(p100, *report.job_latencies.iter().max().unwrap());
        assert_eq!(SimReport::default().latency_percentile(99), 0);
    }
}

#[cfg(test)]
mod per_core_tests {
    use super::*;

    fn cfg(policy: NapPolicy) -> SimConfig {
        SimConfig {
            n_workers: 8,
            dispatch_period: 100_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 20_000,
            clock_hz: 700.0e6,
            policy,
        }
    }

    fn loads(n: usize, target: usize) -> Vec<SubframeLoad> {
        (0..n)
            .map(|_| SubframeLoad {
                jobs: vec![SimJob {
                    est_tasks: vec![2_000; 4],
                    weights_cost: 1_000,
                    combine_tasks: vec![2_000; 8],
                    finish_cost: 2_000,
                }],
                active_target: target,
            })
            .collect()
    }

    #[test]
    fn per_core_busy_sums_to_bucket_busy() {
        let report = Simulator::new(cfg(NapPolicy::NoNap)).run(&loads(10, 8));
        let per_core: u64 = report.busy_per_core.iter().sum();
        let buckets: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
        assert_eq!(per_core, buckets);
    }

    #[test]
    fn proactive_nap_concentrates_work_on_low_cores() {
        let report = Simulator::new(cfg(NapPolicy::Nap)).run(&loads(40, 3));
        let low: u64 = report.busy_per_core[..3].iter().sum();
        let high: u64 = report.busy_per_core[3..].iter().sum();
        assert!(
            low > 5 * high.max(1),
            "work must concentrate below the target: low {low} high {high}"
        );
    }

    #[test]
    fn nonap_spreads_work_more_evenly() {
        let report = Simulator::new(cfg(NapPolicy::NoNap)).run(&loads(40, 8));
        let busiest = *report.busy_per_core.iter().max().unwrap() as f64;
        let active = report.busy_per_core.iter().filter(|&&b| b > 0).count();
        assert!(active >= 4, "several cores should participate: {active}");
        let total: u64 = report.busy_per_core.iter().sum();
        assert!(
            busiest < 0.8 * total as f64,
            "no single core should dominate"
        );
    }
}

#[cfg(test)]
mod obs_tests {
    use super::*;
    use lte_obs::{JsonLinesRecorder, RingRecorder};

    fn cfg(policy: NapPolicy) -> SimConfig {
        SimConfig {
            n_workers: 8,
            dispatch_period: 100_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 20_000,
            clock_hz: 700.0e6,
            policy,
        }
    }

    fn loads(n: usize, units: u64, target: usize) -> Vec<SubframeLoad> {
        (0..n)
            .map(|_| SubframeLoad {
                jobs: vec![SimJob {
                    est_tasks: vec![units; 4],
                    weights_cost: units / 2,
                    combine_tasks: vec![units; 8],
                    finish_cost: units,
                }],
                active_target: target,
            })
            .collect()
    }

    #[test]
    fn stage_breakdown_sums_to_busy_cycles_under_every_policy() {
        for policy in NapPolicy::ALL {
            let report = Simulator::new(cfg(policy)).run(&loads(10, 2_000, 3));
            let stage_total: u64 = report.stage_breakdown().iter().map(|(_, c)| c).sum();
            let busy: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
            assert_eq!(stage_total, busy, "{policy}");
            // Every coarse stage ran at least once.
            for (stage, cycles) in report.stage_breakdown() {
                assert!(cycles > 0, "{policy}: stage {stage} never accounted");
            }
        }
    }

    #[test]
    fn per_core_counters_are_consistent() {
        let report = Simulator::new(cfg(NapPolicy::NapIdle)).run(&loads(10, 2_000, 3));
        // 4 est + 1 weights + 8 combine + 1 finish per job.
        let tasks: u64 = report.tasks_per_core.iter().sum();
        assert_eq!(tasks, 10 * 14);
        let pulses: u64 = report.wake_pulses_per_core.iter().sum();
        let bucket_pulses: u64 = report.buckets.iter().map(|b| b.wake_pulses).sum();
        assert_eq!(pulses, bucket_pulses);
        let steals: u64 = report.steals_per_core.iter().sum();
        assert!(steals > 0, "parallel phases require steals");
    }

    #[test]
    fn recorded_spans_cover_every_core_cycle() {
        // The emitted CoreSpans must tile [0, end_time) on every core:
        // contiguous, non-overlapping, starting at 0.
        let recorder = RingRecorder::new(1 << 20);
        let report =
            Simulator::with_recorder(cfg(NapPolicy::NapIdle), &recorder).run(&loads(10, 2_000, 3));
        let mut next_start = [0u64; 8];
        let mut busy_from_spans = 0u64;
        for ev in recorder.events() {
            if let lte_obs::Event::CoreSpan {
                core,
                state,
                start,
                end,
                ..
            } = ev
            {
                assert_eq!(start, next_start[core as usize], "gap on core {core}");
                assert!(end > start);
                next_start[core as usize] = end;
                if state == lte_obs::CoreState::Busy {
                    busy_from_spans += end - start;
                }
            }
        }
        for (core, &t) in next_start.iter().enumerate() {
            assert_eq!(t, report.end_time, "core {core} not covered to the end");
        }
        let busy: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
        assert_eq!(busy_from_spans, busy);
    }

    #[test]
    fn recorder_sees_dispatches_subframes_steals_and_wakes() {
        let recorder = RingRecorder::new(1 << 20);
        Simulator::with_recorder(cfg(NapPolicy::NapIdle), &recorder).run(&loads(10, 2_000, 3));
        let events = recorder.events();
        let count = |f: &dyn Fn(&lte_obs::Event) -> bool| events.iter().filter(|e| f(e)).count();
        assert_eq!(count(&|e| matches!(e, lte_obs::Event::Dispatch { .. })), 10);
        assert_eq!(
            count(&|e| matches!(e, lte_obs::Event::SubframeSpan { .. })),
            10
        );
        assert!(count(&|e| matches!(e, lte_obs::Event::Steal { .. })) > 0);
        assert!(count(&|e| matches!(e, lte_obs::Event::WakePulse { .. })) > 0);
    }

    #[test]
    fn tracing_does_not_change_results() {
        let plain = Simulator::new(cfg(NapPolicy::NapIdle)).run(&loads(20, 1_500, 3));
        let recorder = JsonLinesRecorder::new();
        let traced =
            Simulator::with_recorder(cfg(NapPolicy::NapIdle), &recorder).run(&loads(20, 1_500, 3));
        assert_eq!(plain, traced);
        assert!(!recorder.is_empty());
    }

    #[test]
    fn identical_runs_record_identical_traces() {
        let trace_of = || {
            let r = JsonLinesRecorder::new();
            Simulator::with_recorder(cfg(NapPolicy::NapIdle), &r).run(&loads(15, 1_500, 3));
            r.into_string()
        };
        assert_eq!(trace_of(), trace_of());
    }
}
