//! Per-kernel cycle cost model.
//!
//! The paper measures work in TILEPro64 cycles via `get_cycle_count()`
//! around every useful-processing region (Eq. 1). The simulator charges
//! the same regions with costs from this model: floating-point operation
//! counts derived from the real Rust kernels in `lte-dsp`/`lte-phy`,
//! multiplied by a cycles-per-flop factor calibrated so that a maximally
//! loaded subframe (200 PRBs, 4 layers, 64-QAM, 4 RX antennas) costs
//! ≈ 62 workers × 5 ms × 700 MHz — the paper's observed saturation point
//! ("a new subframe can be received every fifth millisecond"). The large
//! factor reflects the TILEPro64's software floating point.
//!
//! Costs are deterministic functions of the subframe input parameters,
//! which is exactly the property the paper's workload estimator exploits.

/// Subcarriers per PRB (kept local so this crate stays dependency-free).
const SC_PER_PRB: usize = 12;
/// Data symbols per subframe (two slots of six).
const DATA_SYMBOLS: usize = 12;

/// The platform cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Core clock in Hz (TILEPro64: 700 MHz).
    pub clock_hz: f64,
    /// Effective cycles per floating-point operation (software FP on the
    /// TILEPro64's integer VLIW cores).
    pub cycles_per_flop: f64,
}

impl CostModel {
    /// The calibrated TILEPro64-like model used throughout the
    /// reproduction.
    pub const fn tilepro64() -> Self {
        CostModel {
            clock_hz: 700.0e6,
            cycles_per_flop: 6.0,
        }
    }

    /// Cycles for `flops` floating-point operations.
    #[inline]
    fn cycles(&self, flops: f64) -> u64 {
        (flops * self.cycles_per_flop) as u64
    }

    /// Flops of one complex FFT/IFFT of length `n`.
    ///
    /// Modelled as a *constant cost per point* (5 × log₂ 2400 ≈ 56
    /// flops) rather than `5·n·log₂n`: on the TILEPro64 the paper
    /// measures activity to be linear in the number of PRBs (Fig. 11 —
    /// the whole premise of Eq. 3), which means per-point transform cost
    /// is effectively flat across the benchmark's size range; software-FP
    /// emulation overhead per butterfly dwarfs the `log n` spread. The
    /// constant is anchored at the largest LTE size so the maximum-load
    /// calibration point is unchanged.
    fn fft_flops(n: usize) -> f64 {
        const LOG2_MAX_SIZE: f64 = 11.23; // log₂(12 × 200 PRBs)
        5.0 * n as f64 * LOG2_MAX_SIZE
    }

    /// Cost of one channel-estimation task — matched filter, IFFT, window
    /// and FFT over both slots for one (rx antenna, layer) path.
    pub fn estimation_task(&self, prbs: usize) -> u64 {
        let n = (prbs * SC_PER_PRB) as f64;
        let per_slot = 6.0 * n              // matched filter (complex mult)
            + 2.0 * Self::fft_flops(prbs * SC_PER_PRB) // IFFT + FFT
            + 0.25 * n; // window
        self.cycles(2.0 * per_slot)
    }

    /// Cost of the combiner-weight computation (both slots, all
    /// subcarriers) — runs on the user thread, not parallelised.
    pub fn combiner_weights(&self, prbs: usize, layers: usize, n_rx: usize) -> u64 {
        let n_sc = (prbs * SC_PER_PRB) as f64;
        let l = layers as f64;
        let r = n_rx as f64;
        // Per subcarrier: Gram matrix (r·l² complex MACs), l×l inverse
        // (≈ l³), W = G⁻¹Hᴴ (l²·r).
        let per_sc = 8.0 * (r * l * l + l * l * l + l * l * r);
        self.cycles(2.0 * n_sc * per_sc)
    }

    /// Cost of one antenna-combining + IFFT task for one (symbol, layer).
    pub fn combine_task(&self, prbs: usize, n_rx: usize) -> u64 {
        let n = (prbs * SC_PER_PRB) as f64;
        let combine = 8.0 * n * n_rx as f64; // complex MAC per antenna
        self.cycles(combine + Self::fft_flops(prbs * SC_PER_PRB))
    }

    /// Cost of the serial tail on the user thread: deinterleave, soft
    /// demap, turbo pass-through, CRC.
    pub fn finish_task(&self, prbs: usize, layers: usize, mod_bits: usize) -> u64 {
        let n_sym = (prbs * SC_PER_PRB * DATA_SYMBOLS * layers) as f64;
        let bits = n_sym * mod_bits as f64;
        // Max-log demap cost grows with constellation size.
        let demap_per_symbol = match mod_bits {
            2 => 6.0,
            4 => 18.0,
            _ => 40.0,
        };
        let deinterleave = 1.0 * bits;
        let crc = 2.0 * bits;
        self.cycles(n_sym * demap_per_symbol + deinterleave + crc)
    }

    /// Total cycles for one user's subframe (all stages).
    pub fn user_total(&self, prbs: usize, layers: usize, mod_bits: usize, n_rx: usize) -> u64 {
        self.user_job(prbs, layers, mod_bits, n_rx).total_cycles()
    }

    /// Builds the simulator task graph for one user.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `mod_bits` is not 2, 4 or 6.
    pub fn user_job(&self, prbs: usize, layers: usize, mod_bits: usize, n_rx: usize) -> SimJob {
        assert!(
            prbs > 0 && layers > 0 && n_rx > 0,
            "parameters must be positive"
        );
        assert!(matches!(mod_bits, 2 | 4 | 6), "mod_bits must be 2, 4 or 6");
        let est = self.estimation_task(prbs);
        let combine = self.combine_task(prbs, n_rx);
        SimJob {
            est_tasks: vec![est; n_rx * layers],
            weights_cost: self.combiner_weights(prbs, layers, n_rx),
            combine_tasks: vec![combine; DATA_SYMBOLS * layers],
            finish_cost: self.finish_task(prbs, layers, mod_bits),
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::tilepro64()
    }
}

/// The task graph of one user job, as the simulator executes it:
/// estimation tasks (parallel) → combiner weights (user thread) →
/// combine tasks (parallel) → finish (user thread).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimJob {
    /// Channel-estimation task costs (`n_rx × layers` entries).
    pub est_tasks: Vec<u64>,
    /// Combiner-weight cost, run serially on the user thread.
    pub weights_cost: u64,
    /// Antenna-combining task costs (`12 × layers` entries).
    pub combine_tasks: Vec<u64>,
    /// Serial tail cost (deinterleave, demap, turbo pass, CRC).
    pub finish_cost: u64,
}

impl SimJob {
    /// Sum of all task costs.
    pub fn total_cycles(&self) -> u64 {
        self.est_tasks.iter().sum::<u64>()
            + self.weights_cost
            + self.combine_tasks.iter().sum::<u64>()
            + self.finish_cost
    }

    /// Length of the critical (serial) path assuming unlimited workers.
    pub fn critical_path(&self) -> u64 {
        self.est_tasks.iter().copied().max().unwrap_or(0)
            + self.weights_cost
            + self.combine_tasks.iter().copied().max().unwrap_or(0)
            + self.finish_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: CostModel = CostModel::tilepro64();

    #[test]
    fn max_load_subframe_saturates_62_workers_for_5ms() {
        // The paper: at maximum workload (200 PRBs total, every user 4
        // layers + 64-QAM) with 62 workers, one subframe per 5 ms.
        // Model it as 10 users × 20 PRBs.
        let total: u64 = (0..10).map(|_| MODEL.user_total(20, 4, 6, 4)).sum();
        let budget = 62.0 * 5.0e-3 * MODEL.clock_hz;
        let ratio = total as f64 / budget;
        assert!(
            (0.6..=1.1).contains(&ratio),
            "max-load subframe uses {ratio:.2}× the 5 ms budget"
        );
    }

    #[test]
    fn single_max_user_close_to_budget() {
        let total = MODEL.user_total(200, 4, 6, 4) as f64;
        let budget = 62.0 * 5.0e-3 * MODEL.clock_hz;
        let ratio = total / budget;
        assert!((0.7..=1.1).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn cost_grows_with_every_parameter() {
        let base = MODEL.user_total(20, 2, 4, 4);
        assert!(MODEL.user_total(40, 2, 4, 4) > base, "more PRBs");
        assert!(MODEL.user_total(20, 4, 4, 4) > base, "more layers");
        assert!(MODEL.user_total(20, 2, 6, 4) > base, "higher modulation");
        assert!(MODEL.user_total(20, 2, 4, 8) > base, "more antennas");
    }

    #[test]
    fn roughly_linear_in_prbs() {
        // Eq. 3 of the paper: activity ≈ k·PRBs for fixed layers and
        // modulation. The model has an n·log n term, so allow ±20 %.
        let k50 = MODEL.user_total(50, 2, 4, 4) as f64 / 50.0;
        let k100 = MODEL.user_total(100, 2, 4, 4) as f64 / 100.0;
        let k200 = MODEL.user_total(200, 2, 4, 4) as f64 / 200.0;
        assert!((k100 / k50 - 1.0).abs() < 0.2, "{k50} vs {k100}");
        assert!((k200 / k100 - 1.0).abs() < 0.2, "{k100} vs {k200}");
    }

    #[test]
    fn layer_and_modulation_slopes_are_ordered() {
        // Fig. 11: slope increases with layers and with modulation order.
        let mut last = 0;
        for layers in 1..=4 {
            let c = MODEL.user_total(100, layers, 2, 4);
            assert!(c > last, "layers {layers}");
            last = c;
        }
        let qpsk = MODEL.user_total(100, 2, 2, 4);
        let qam16 = MODEL.user_total(100, 2, 4, 4);
        let qam64 = MODEL.user_total(100, 2, 6, 4);
        assert!(qpsk < qam16 && qam16 < qam64);
    }

    #[test]
    fn job_structure_matches_paper_parallelism() {
        let job = MODEL.user_job(10, 3, 4, 4);
        assert_eq!(job.est_tasks.len(), 12); // rx × layers
        assert_eq!(job.combine_tasks.len(), 36); // 12 symbols × layers
        assert!(job.weights_cost > 0 && job.finish_cost > 0);
    }

    #[test]
    fn critical_path_le_total() {
        let job = MODEL.user_job(50, 4, 6, 4);
        assert!(job.critical_path() <= job.total_cycles());
        assert!(job.critical_path() > 0);
    }

    #[test]
    fn serial_tail_is_modest_fraction() {
        // The serial stages must not dominate, or the paper's task-level
        // parallelism claims would be meaningless.
        let job = MODEL.user_job(200, 4, 6, 4);
        let serial = job.weights_cost + job.finish_cost;
        let frac = serial as f64 / job.total_cycles() as f64;
        assert!(frac < 0.5, "serial fraction {frac:.2}");
    }

    #[test]
    #[should_panic(expected = "mod_bits")]
    fn invalid_modulation_rejected() {
        MODEL.user_job(10, 1, 3, 4);
    }
}
