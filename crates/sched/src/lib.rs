//! Work-stealing runtime and tile-machine simulator.
//!
//! Two execution substrates back the benchmark:
//!
//! * [`pool`] — a real work-stealing thread pool (crossbeam deques, one OS
//!   thread per worker) mirroring the paper's Pthreads runtime: a global
//!   user queue checked before stealing, per-scope task sets, and
//!   cycle-accounting instrumentation (the `get_cycle_count()` analogue).
//!   This is what the *benchmark* deliverable runs on.
//!
//! * [`sim`] — a deterministic discrete-event simulator of a 64-core tile
//!   processor (the TILEPro64 substitute): per-core queues, work stealing
//!   with steal latency, the `nap` instruction with periodic wake polling,
//!   and per-state occupancy accounting. Every power experiment in the
//!   reproduction runs here, bit-reproducibly.
//!
//! [`ingest`] adds the streaming front door: a bounded MPSC ring with
//! explicit rejection and close-to-drain semantics, feeding the pool
//! from live sources instead of a closed batch loop.
//!
//! [`shard`] adds the multi-cell bookkeeping: per-shard (per-cell)
//! spawned/completed counters and the fair round-robin dispatch order
//! the deployment layer uses to release every cell's work onto one
//! shared pool without a wide cell monopolising the queue head.
//!
//! [`cycles`] supplies the per-kernel cycle cost model that converts a
//! user's subframe parameters into the simulator's task costs, calibrated
//! so a maximally loaded subframe occupies 62 workers for ≈ 5 ms — the
//! paper's measured rate on the TILEPro64.

pub mod cycles;
pub mod ingest;
pub mod pool;
pub mod shard;
pub mod sim;

pub use cycles::{CostModel, SimJob};
pub use ingest::{IngestQueue, PushError};
pub use pool::{
    host_parallelism, silence_injected_panics, InjectedPanic, PoolConfig, PoolError, PoolHandle,
    PoolTelemetry, TaskPool, WorkerKill, WorkerSnapshot,
};
pub use shard::{interleave_shards, ShardCounters, ShardSnapshot};
pub use sim::{NapMode, SimBoundary, SimConfig, SimReport, SimSession, Simulator, SubframeLoad};
