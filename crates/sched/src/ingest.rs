//! Bounded ingest queue: the front door of the streaming service.
//!
//! A long-running receiver cannot let arrivals queue without bound — a
//! synchronous congestion burst would grow the backlog until memory (or
//! the subframe deadline) gives out. [`IngestQueue`] is therefore a
//! *bounded* multi-producer single-consumer ring: producers offer work
//! with [`try_push`](IngestQueue::try_push) and get the item back when
//! the ring is full (the admission layer turns that into an explicit
//! *reject*, never silent loss), the consumer drains one item per
//! dispatch tick, and every push/pop/reject is counted so backpressure
//! is observable rather than inferred.
//!
//! The queue also carries the service's lifecycle edge:
//! [`close`](IngestQueue::close) flips it into drain mode — producers
//! are refused from that instant, while the consumer keeps popping until
//! the ring is empty. [`drain_remaining`](IngestQueue::drain_remaining)
//! hands the consumer whatever is left so a draining service can account
//! every queued subframe as shed instead of dropping it on the floor.
//!
//! Depth is exposed both as an instantaneous gauge
//! ([`depth`](IngestQueue::depth), [`fill`](IngestQueue::fill)) and as a
//! high watermark, which is what the escalation ladder and the pressure
//! governor key off.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Why a [`IngestQueue::try_push`] was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The ring is at capacity — backpressure.
    Full,
    /// The queue is closed (the service is draining).
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => f.write_str("queue full"),
            PushError::Closed => f.write_str("queue closed"),
        }
    }
}

struct State<T> {
    ring: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC ring buffer with explicit rejection, close-to-drain
/// semantics and full admission accounting. All operations take `&self`;
/// the queue is shared by reference (or `Arc`) between the source
/// threads and the service loop.
pub struct IngestQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Signalled when an item arrives or the queue closes.
    available: Condvar,
    pushed: AtomicU64,
    popped: AtomicU64,
    rejected_full: AtomicU64,
    rejected_closed: AtomicU64,
    high_watermark: AtomicU64,
}

impl<T> IngestQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        IngestQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                ring: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            available: Condvar::new(),
            pushed: AtomicU64::new(0),
            popped: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_closed: AtomicU64::new(0),
            high_watermark: AtomicU64::new(0),
        }
    }

    /// The ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers one item. Returns it back (with the reason) when the ring
    /// is full or the queue is closed; the caller decides whether that
    /// is a reject, a retry or a shed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] under backpressure, [`PushError::Closed`]
    /// once the service is draining. The item rides back in the error.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            self.rejected_closed.fetch_add(1, Ordering::Relaxed);
            return Err((item, PushError::Closed));
        }
        if state.ring.len() >= self.capacity {
            self.rejected_full.fetch_add(1, Ordering::Relaxed);
            return Err((item, PushError::Full));
        }
        state.ring.push_back(item);
        let depth = state.ring.len() as u64;
        drop(state);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        self.high_watermark.fetch_max(depth, Ordering::Relaxed);
        self.available.notify_one();
        Ok(())
    }

    /// Pops the oldest item without waiting. `None` when the ring is
    /// empty (whether or not the queue is closed).
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let item = state.ring.pop_front();
        drop(state);
        if item.is_some() {
            self.popped.fetch_add(1, Ordering::Relaxed);
        }
        item
    }

    /// Pops the oldest item, waiting up to `timeout` for one to arrive.
    /// Returns `None` on timeout or when the queue is closed and empty.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.ring.pop_front() {
                drop(state);
                self.popped.fetch_add(1, Ordering::Relaxed);
                return Some(item);
            }
            if state.closed {
                return None;
            }
            let (next, result) = self
                .available
                .wait_timeout(state, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if result.timed_out() {
                let item = state.ring.pop_front();
                if item.is_some() {
                    self.popped.fetch_add(1, Ordering::Relaxed);
                }
                return item;
            }
        }
    }

    /// Closes the queue: producers are refused from now on, consumers
    /// drain what is already buffered. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// `true` once [`close`](IngestQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed
    }

    /// Removes and returns everything still buffered, oldest first —
    /// the drain path's "account every queued subframe" step.
    pub fn drain_remaining(&self) -> Vec<T> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let items: Vec<T> = state.ring.drain(..).collect();
        drop(state);
        self.popped.fetch_add(items.len() as u64, Ordering::Relaxed);
        items
    }

    /// Items currently buffered.
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .ring
            .len()
    }

    /// Instantaneous occupancy in `[0, 1]` — the escalation ladder's
    /// input signal.
    pub fn fill(&self) -> f64 {
        self.depth() as f64 / self.capacity as f64
    }

    /// Deepest occupancy ever observed.
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark.load(Ordering::Relaxed)
    }

    /// Items accepted so far.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Items handed to the consumer so far (including drained ones).
    pub fn popped(&self) -> u64 {
        self.popped.load(Ordering::Relaxed)
    }

    /// Offers refused because the ring was full.
    pub fn rejected_full(&self) -> u64 {
        self.rejected_full.load(Ordering::Relaxed)
    }

    /// Offers refused because the queue had closed.
    pub fn rejected_closed(&self) -> u64 {
        self.rejected_closed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_ring_rejects_when_full() {
        let q = IngestQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let (item, why) = q.try_push(3).unwrap_err();
        assert_eq!((item, why), (3, PushError::Full));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.rejected_full(), 1);
        assert_eq!(q.high_watermark(), 2);
        assert!((q.fill() - 1.0).abs() < f64::EPSILON);
        // Popping opens a slot again.
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.popped(), 1);
        assert_eq!(q.pushed(), 3);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let q = IngestQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.try_pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn close_refuses_producers_but_drains_consumers() {
        let q = IngestQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert!(q.is_closed());
        let (_, why) = q.try_push("c").unwrap_err();
        assert_eq!(why, PushError::Closed);
        assert_eq!(q.rejected_closed(), 1);
        assert_eq!(q.drain_remaining(), vec!["a", "b"]);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.popped(), 2);
    }

    #[test]
    fn pop_timeout_returns_none_on_closed_empty_and_times_out() {
        let q: IngestQueue<u32> = IngestQueue::new(2);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), None);
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_secs(60)), None);
    }

    #[test]
    fn pop_timeout_wakes_on_cross_thread_push() {
        let q = Arc::new(IngestQueue::new(2));
        let producer = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            producer.try_push(7u32).unwrap();
        });
        let got = q.pop_timeout(Duration::from_secs(5));
        t.join().unwrap();
        assert_eq!(got, Some(7));
    }

    #[test]
    fn concurrent_producers_never_exceed_capacity_or_lose_items() {
        let q = Arc::new(IngestQueue::new(16));
        let mut handles = Vec::new();
        for t in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut accepted = 0u64;
                for i in 0..200u64 {
                    if q.try_push(t * 1000 + i).is_ok() {
                        accepted += 1;
                    }
                }
                accepted
            }));
        }
        let mut drained = 0u64;
        // Consume concurrently until every producer has finished, then
        // drain the remainder.
        while !handles.iter().all(std::thread::JoinHandle::is_finished) {
            if q.try_pop().is_some() {
                drained += 1;
            }
            assert!(q.depth() <= 16);
        }
        let accepted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        drained += q.drain_remaining().len() as u64;
        assert_eq!(accepted, drained, "every accepted item is consumed");
        assert_eq!(q.pushed(), accepted);
        assert_eq!(q.pushed() + q.rejected_full(), 800);
    }
}
