//! Per-shard (per-cell) work accounting and fair dispatch order.
//!
//! The multi-cell deployment layer runs one receiver per cell on the
//! *shared* work-stealing pool: tasks from every cell mix freely, and
//! the stealing machinery balances them. What the pool cannot see is
//! which cell a task belonged to — this module adds that bookkeeping:
//!
//! * [`ShardCounters`] — lock-free per-shard spawned/completed tallies,
//!   recordable from any worker thread;
//! * [`interleave_shards`] — the fair dispatch order: instead of
//!   spawning cell 0's users, then cell 1's, …, which would let an
//!   early wide cell monopolise the queue head, work is released
//!   round-robin across shards (user 0 of every cell, then user 1 of
//!   every cell, …), so no cell waits behind another's whole subframe.

use std::sync::atomic::{AtomicU64, Ordering};

/// One shard's tallies.
#[derive(Debug, Default)]
struct ShardSlot {
    spawned: AtomicU64,
    completed: AtomicU64,
}

/// Lock-free per-shard work counters, one slot per cell.
#[derive(Debug, Default)]
pub struct ShardCounters {
    slots: Vec<ShardSlot>,
}

/// A point-in-time copy of one shard's counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Tasks handed to the pool for this shard.
    pub spawned: u64,
    /// Tasks whose completion callback ran for this shard.
    pub completed: u64,
}

impl ShardCounters {
    /// Counters for `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self {
            slots: (0..shards).map(|_| ShardSlot::default()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Records `n` tasks spawned for `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[inline]
    pub fn record_spawned(&self, shard: usize, n: u64) {
        self.slots[shard].spawned.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one task completed for `shard` (called from worker
    /// threads; relaxed atomics, no locks).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[inline]
    pub fn record_completed(&self, shard: usize) {
        self.slots[shard].completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn snapshot(&self, shard: usize) -> ShardSnapshot {
        ShardSnapshot {
            spawned: self.slots[shard].spawned.load(Ordering::Relaxed),
            completed: self.slots[shard].completed.load(Ordering::Relaxed),
        }
    }

    /// `true` once every spawned task of every shard has completed.
    pub fn all_drained(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.spawned.load(Ordering::Acquire) == s.completed.load(Ordering::Acquire))
    }
}

/// The fair cross-shard dispatch order: given per-shard work-item
/// counts, yields `(shard, item_index)` pairs round-robin — item 0 of
/// every non-empty shard, then item 1, … — so a wide shard cannot
/// monopolise the head of the pool's injection queue. The order is a
/// pure function of the counts, hence identical for every worker count.
pub fn interleave_shards(counts: &[usize]) -> Vec<(usize, usize)> {
    let total: usize = counts.iter().sum();
    let mut order = Vec::with_capacity(total);
    let deepest = counts.iter().copied().max().unwrap_or(0);
    for item in 0..deepest {
        for (shard, &n) in counts.iter().enumerate() {
            if item < n {
                order.push((shard, item));
            }
        }
    }
    debug_assert_eq!(order.len(), total);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_tally_and_drain() {
        let c = ShardCounters::new(3);
        c.record_spawned(0, 2);
        c.record_spawned(2, 1);
        assert!(!c.all_drained());
        c.record_completed(0);
        c.record_completed(0);
        c.record_completed(2);
        assert!(c.all_drained());
        assert_eq!(
            c.snapshot(0),
            ShardSnapshot {
                spawned: 2,
                completed: 2
            }
        );
        assert_eq!(c.snapshot(1).spawned, 0);
    }

    #[test]
    fn counters_survive_concurrent_hammer() {
        let c = ShardCounters::new(4);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..1000 {
                        let shard = (t + i) % 4;
                        c.record_spawned(shard, 1);
                        c.record_completed(shard);
                    }
                });
            }
        });
        assert!(c.all_drained());
        let total: u64 = (0..4).map(|s| c.snapshot(s).spawned).sum();
        assert_eq!(total, 8_000);
    }

    #[test]
    fn interleave_is_fair_and_complete() {
        let order = interleave_shards(&[3, 1, 2]);
        assert_eq!(order, vec![(0, 0), (1, 0), (2, 0), (0, 1), (2, 1), (0, 2)]);
        // Every item appears exactly once.
        let order = interleave_shards(&[5, 0, 7, 2]);
        assert_eq!(order.len(), 14);
        let mut seen = std::collections::BTreeSet::new();
        for pair in &order {
            assert!(seen.insert(*pair));
        }
        // No shard's item k appears before another shard's item k-1 has
        // been released (round-robin depth ordering).
        let depth_of = |i: usize| order[i].1;
        for w in (0..order.len()).collect::<Vec<_>>().windows(2) {
            assert!(depth_of(w[1]) + 1 >= depth_of(w[0]));
        }
    }

    #[test]
    fn interleave_handles_empty() {
        assert!(interleave_shards(&[]).is_empty());
        assert!(interleave_shards(&[0, 0]).is_empty());
    }
}
