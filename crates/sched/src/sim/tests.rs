//! Behavioural tests of the engine, carried over from the pre-split
//! `sim.rs` with `NapPolicy` call sites rewritten onto [`NapMode`].

pub use super::*;
pub use crate::cycles::SimJob;
pub use lte_fault::{DeadlineBudget, FaultPlan, OverloadPolicy};
pub use lte_obs::FaultKind;

#[cfg(test)]
mod engine_tests {
    use super::*;

    fn small_cfg(policy: NapMode) -> SimConfig {
        SimConfig {
            n_workers: 8,
            dispatch_period: 100_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 20_000,
            clock_hz: 700.0e6,
            nap: policy,
        }
    }

    fn job(units: u64) -> SimJob {
        SimJob {
            est_tasks: vec![units; 4],
            weights_cost: units / 2,
            combine_tasks: vec![units; 8],
            finish_cost: units,
        }
    }

    fn loads(n: usize, units: u64, target: usize) -> Vec<SubframeLoad> {
        (0..n)
            .map(|_| SubframeLoad {
                jobs: vec![job(units)],
                active_target: target,
            })
            .collect()
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        for policy in NapMode::ALL {
            let report = Simulator::new(small_cfg(policy)).run(&loads(10, 3_000, 4));
            assert_eq!(report.jobs_total, 10, "{policy}");
            assert_eq!(report.job_latencies.len(), 10, "{policy}");
        }
    }

    #[test]
    fn latency_percentile_bounds_are_min_and_max() {
        let report = Simulator::new(small_cfg(NapMode::NONE)).run(&loads(10, 3_000, 8));
        let min = *report.job_latencies.iter().min().unwrap();
        let max = *report.job_latencies.iter().max().unwrap();
        assert_eq!(report.latency_percentile(0), min);
        assert_eq!(report.latency_percentile(100), max);
        // Out-of-range percentiles clamp to the maximum, never panic.
        assert_eq!(report.latency_percentile(1000), max);
        let p50 = report.latency_percentile(50);
        assert!((min..=max).contains(&p50));
    }

    #[test]
    fn empty_run_has_zero_latency_percentiles() {
        let report = Simulator::new(small_cfg(NapMode::NONE)).run(&[]);
        assert_eq!(report.jobs_total, 0);
        for p in [0, 50, 100] {
            assert_eq!(report.latency_percentile(p), 0, "p{p} of an empty run");
        }
    }

    #[test]
    fn busy_cycles_equal_work_plus_overhead() {
        // Conservation: total busy time must equal the sum of all task
        // costs plus per-task overheads and steal latencies.
        let cfg = small_cfg(NapMode::NONE);
        let subframes = loads(5, 2_000, 8);
        let report = Simulator::new(cfg).run(&subframes);
        let busy: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
        let work: u64 = subframes
            .iter()
            .flat_map(|s| &s.jobs)
            .map(|j| j.total_cycles())
            .sum();
        let tasks_per_job = 4 + 1 + 8 + 1;
        let min = work + 5 * tasks_per_job * cfg.task_overhead;
        let max = min + 5 * tasks_per_job * cfg.steal_latency;
        assert!(
            (min..=max).contains(&busy),
            "busy {busy} outside [{min}, {max}]"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = Simulator::new(small_cfg(NapMode::NAP_IDLE)).run(&loads(20, 1_500, 3));
        let b = Simulator::new(small_cfg(NapMode::NAP_IDLE)).run(&loads(20, 1_500, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn nonap_never_naps() {
        let report = Simulator::new(small_cfg(NapMode::NONE)).run(&loads(5, 1_000, 2));
        let naps: u64 = report.buckets.iter().map(|b| b.nap_cycles).sum();
        assert_eq!(naps, 0);
        let pulses: u64 = report.buckets.iter().map(|b| b.wake_pulses).sum();
        assert_eq!(pulses, 0);
    }

    #[test]
    fn idle_policy_naps_idle_cores() {
        let report = Simulator::new(small_cfg(NapMode::IDLE)).run(&loads(5, 1_000, 8));
        let naps: u64 = report.buckets.iter().map(|b| b.nap_cycles).sum();
        assert!(naps > 0, "reactive policy must nap idle cores");
        let pulses: u64 = report.buckets.iter().map(|b| b.wake_pulses).sum();
        assert!(pulses > 0, "napping cores must wake periodically");
    }

    #[test]
    fn nap_policy_reduces_spin_relative_to_nonap() {
        // With a low active target, proactive napping converts spin
        // cycles into nap cycles.
        let spin_of = |policy| {
            let r = Simulator::new(small_cfg(policy)).run(&loads(20, 1_000, 2));
            r.buckets.iter().map(|b| b.spin_cycles).sum::<u64>()
        };
        let nonap = spin_of(NapMode::NONE);
        let nap = spin_of(NapMode::NAP);
        assert!(nap < nonap, "NAP spin {nap} !< NONAP spin {nonap}");
    }

    #[test]
    fn low_target_increases_latency() {
        // Throttling to 2 cores must slow jobs down vs 8 cores.
        let latency_of = |target| {
            let r = Simulator::new(small_cfg(NapMode::NAP)).run(&loads(10, 5_000, target));
            *r.job_latencies.iter().max().unwrap()
        };
        assert!(latency_of(2) > latency_of(8));
    }

    #[test]
    fn conservation_under_stealing_with_many_workers() {
        // Many small jobs per subframe: work must still be conserved.
        let cfg = SimConfig {
            n_workers: 16,
            ..small_cfg(NapMode::NONE)
        };
        let subframes: Vec<SubframeLoad> = (0..10)
            .map(|_| SubframeLoad {
                jobs: vec![job(500); 4],
                active_target: 16,
            })
            .collect();
        let report = Simulator::new(cfg).run(&subframes);
        assert_eq!(report.jobs_total, 40);
        let busy: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
        let work: u64 = subframes
            .iter()
            .flat_map(|s| &s.jobs)
            .map(|j| j.total_cycles())
            .sum();
        assert!(busy >= work, "busy {busy} < work {work}");
    }

    #[test]
    fn occupancy_accounts_for_all_core_time() {
        // busy + spin + nap over all buckets should equal workers ×
        // end_time (within the final partial bucket's slack).
        let cfg = small_cfg(NapMode::NAP_IDLE);
        let report = Simulator::new(cfg).run(&loads(10, 2_000, 4));
        let accounted: u64 = report
            .buckets
            .iter()
            .map(|b| b.busy_cycles + b.spin_cycles + b.nap_cycles)
            .sum();
        let total = cfg.n_workers as u64 * report.end_time;
        let diff = (accounted as i64 - total as i64).unsigned_abs();
        assert!(
            diff <= total / 100,
            "accounted {accounted} vs total {total}"
        );
    }

    #[test]
    fn activity_reflects_load() {
        let cfg = small_cfg(NapMode::NONE);
        let light = Simulator::new(cfg).run(&loads(10, 500, 8));
        let heavy = Simulator::new(cfg).run(&loads(10, 20_000, 8));
        assert!(heavy.mean_activity(&cfg) > 3.0 * light.mean_activity(&cfg));
        assert!(heavy.mean_activity(&cfg) <= 1.0);
    }

    #[test]
    fn windowed_activity_covers_run() {
        let cfg = small_cfg(NapMode::NONE);
        let report = Simulator::new(cfg).run(&loads(10, 1_000, 8));
        let w = report.windowed_activity(&cfg, 5);
        assert_eq!(w.len(), 2);
        for a in w {
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn empty_run_is_fine() {
        let report = Simulator::new(small_cfg(NapMode::NONE)).run(&[]);
        assert_eq!(report.jobs_total, 0);
    }

    #[test]
    fn policy_display_names() {
        assert_eq!(NapMode::NONE.to_string(), "NONAP");
        assert_eq!(NapMode::NAP_IDLE.to_string(), "NAP+IDLE");
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use lte_fault::{DeadCore, SlowCore};

    fn cfg(policy: NapMode) -> SimConfig {
        SimConfig {
            n_workers: 8,
            dispatch_period: 100_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 20_000,
            clock_hz: 700.0e6,
            nap: policy,
        }
    }

    fn job(units: u64) -> SimJob {
        SimJob {
            est_tasks: vec![units; 4],
            weights_cost: units / 2,
            combine_tasks: vec![units; 8],
            finish_cost: units,
        }
    }

    /// A load that overruns the dispatch period: each subframe carries
    /// several multiples of one period of work.
    fn overload(n: usize) -> Vec<SubframeLoad> {
        (0..n)
            .map(|i| SubframeLoad {
                jobs: vec![job(8_000), job(12_000 + 100 * (i as u64 % 3)), job(20_000)],
                active_target: 8,
            })
            .collect()
    }

    fn budget(policy: OverloadPolicy) -> DeadlineBudget {
        DeadlineBudget {
            budget: 100_000,
            policy,
        }
    }

    #[test]
    fn overruns_are_counted_against_the_budget() {
        let report = Simulator::new(cfg(NapMode::NONE))
            .with_degradation(budget(OverloadPolicy::DegradeDemap))
            .run(&overload(10));
        assert!(report.overruns > 0, "overloaded run must overrun");
        assert!(report.degraded_subframes > 0, "policy must have engaged");
        // Degradation keeps every job: nothing shed or dropped.
        assert_eq!(report.shed_jobs, 0);
        assert_eq!(report.dropped_subframes, 0);
        assert_eq!(report.jobs_total, 30);
    }

    #[test]
    fn drop_policy_sacrifices_whole_subframes() {
        let report = Simulator::new(cfg(NapMode::NONE))
            .with_degradation(budget(OverloadPolicy::DropSubframe))
            .run(&overload(10));
        assert!(report.dropped_subframes > 0);
        assert_eq!(report.shed_jobs, 3 * report.dropped_subframes);
        assert_eq!(
            report.jobs_total as u64,
            30 - report.shed_jobs,
            "dropped jobs never enter the machine"
        );
        assert_eq!(report.job_latencies.len(), report.jobs_total);
    }

    #[test]
    fn shed_policy_drops_cheapest_users_first() {
        let report = Simulator::new(cfg(NapMode::NONE))
            .with_degradation(budget(OverloadPolicy::ShedUsers))
            .run(&overload(10));
        assert!(report.shed_jobs > 0);
        assert_eq!(
            report.dropped_subframes, 0,
            "shedding never drops whole subframes"
        );
        assert!(
            report.jobs_total as u64 >= 30 - report.shed_jobs,
            "at least one user survives every shed subframe"
        );
        assert_eq!(report.job_latencies.len(), report.jobs_total);
    }

    #[test]
    fn degradation_reduces_overruns_versus_no_policy() {
        let baseline = Simulator::new(cfg(NapMode::NONE))
            .with_degradation(DeadlineBudget {
                budget: u64::MAX,
                policy: OverloadPolicy::DropSubframe,
            })
            .run(&overload(12));
        assert_eq!(baseline.overruns, 0, "infinite budget never overruns");
        let dropping = Simulator::new(cfg(NapMode::NONE))
            .with_degradation(budget(OverloadPolicy::DropSubframe))
            .run(&overload(12));
        // Dropping load must finish the campaign sooner than running it all.
        let full = Simulator::new(cfg(NapMode::NONE)).run(&overload(12));
        assert!(dropping.end_time < full.end_time);
    }

    #[test]
    fn dead_core_loses_no_jobs() {
        for policy in NapMode::ALL {
            let plan = FaultPlan {
                dead_core: Some(DeadCore {
                    core: 0,
                    at_cycle: 150_000,
                }),
                ..FaultPlan::quiet(11)
            };
            let report = Simulator::new(cfg(policy))
                .with_chaos(plan)
                .run(&overload(10));
            assert_eq!(report.jobs_total, 30, "{policy}");
            assert_eq!(report.job_latencies.len(), 30, "{policy}");
            // The dead core stops accumulating busy cycles; survivors
            // carry the load.
            assert!(
                report.busy_per_core[1..].iter().sum::<u64>() > 0,
                "{policy}"
            );
        }
    }

    #[test]
    fn dead_user_core_job_is_adopted() {
        // Core 0 picks up the first job immediately (it owns it) and dies
        // mid-subframe: ownership must migrate.
        let plan = FaultPlan {
            dead_core: Some(DeadCore {
                core: 0,
                at_cycle: 10_000,
            }),
            ..FaultPlan::quiet(3)
        };
        let report = Simulator::new(cfg(NapMode::NONE))
            .with_chaos(plan)
            .run(&overload(6));
        assert_eq!(report.job_latencies.len(), report.jobs_total);
        assert!(report.adopted_jobs >= 1, "core 0 owned a job when it died");
    }

    #[test]
    fn poisoned_tasks_are_retried_not_lost() {
        let plan = FaultPlan {
            task_panic_permille: 100,
            ..FaultPlan::quiet(21)
        };
        let quiet = Simulator::new(cfg(NapMode::NONE)).run(&overload(10));
        let chaotic = Simulator::new(cfg(NapMode::NONE))
            .with_chaos(plan)
            .run(&overload(10));
        assert!(
            chaotic.poisoned_tasks > 0,
            "10% rate must fire in 360 tasks"
        );
        assert_eq!(chaotic.jobs_total, 30);
        assert_eq!(chaotic.job_latencies.len(), 30);
        // Re-executed tasks burn extra cycles.
        let busy = |r: &SimReport| r.buckets.iter().map(|b| b.busy_cycles).sum::<u64>();
        assert!(busy(&chaotic) > busy(&quiet));
    }

    #[test]
    fn slow_core_stretches_execution() {
        let plan = FaultPlan {
            slow_cores: vec![SlowCore {
                core: 0,
                factor_permille: 3000,
            }],
            ..FaultPlan::quiet(5)
        };
        let fast = Simulator::new(cfg(NapMode::NONE)).run(&overload(6));
        let slowed = Simulator::new(cfg(NapMode::NONE))
            .with_chaos(plan)
            .run(&overload(6));
        assert_eq!(slowed.jobs_total, fast.jobs_total);
        let busy = |r: &SimReport| r.buckets.iter().map(|b| b.busy_cycles).sum::<u64>();
        assert!(
            busy(&slowed) > busy(&fast),
            "3x slower core must inflate busy cycles"
        );
    }

    #[test]
    fn chaos_campaigns_are_deterministic() {
        let run = || {
            Simulator::new(cfg(NapMode::NAP_IDLE))
                .with_chaos(FaultPlan::smoke(42))
                .with_degradation(budget(OverloadPolicy::ShedUsers))
                .run(&overload(20))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_events_reach_the_recorder() {
        let recorder = lte_obs::RingRecorder::new(1 << 20);
        let plan = FaultPlan {
            task_panic_permille: 100,
            dead_core: Some(DeadCore {
                core: 2,
                at_cycle: 120_000,
            }),
            slow_cores: vec![SlowCore {
                core: 1,
                factor_permille: 1500,
            }],
            ..FaultPlan::quiet(9)
        };
        Simulator::with_recorder(cfg(NapMode::NONE), &recorder)
            .with_chaos(plan)
            .with_degradation(budget(OverloadPolicy::DropSubframe))
            .run(&overload(10));
        let events = recorder.events();
        let kinds: Vec<FaultKind> = events
            .iter()
            .filter_map(|e| match e {
                lte_obs::Event::Fault { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        for expect in [
            FaultKind::TaskPanic,
            FaultKind::CoreDeath,
            FaultKind::SlowCore,
            FaultKind::SubframeDropped,
        ] {
            assert!(kinds.contains(&expect), "missing fault kind {expect}");
        }
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            n_workers: 8,
            dispatch_period: 100_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 20_000,
            clock_hz: 700.0e6,
            nap: NapMode::NONE,
        }
    }

    fn job(units: u64) -> SimJob {
        SimJob {
            est_tasks: vec![units; 4],
            weights_cost: units / 2,
            combine_tasks: vec![units; 8],
            finish_cost: units,
        }
    }

    #[test]
    fn light_load_processes_one_subframe_at_a_time() {
        let loads: Vec<SubframeLoad> = (0..10)
            .map(|_| SubframeLoad {
                jobs: vec![job(1_000)],
                active_target: 8,
            })
            .collect();
        let report = Simulator::new(cfg()).run(&loads);
        assert_eq!(report.max_concurrent_subframes, 1);
    }

    #[test]
    fn heavy_load_overlaps_subframes() {
        // Each subframe carries far more than one period of work.
        let loads: Vec<SubframeLoad> = (0..10)
            .map(|_| SubframeLoad {
                jobs: vec![job(30_000); 2],
                active_target: 8,
            })
            .collect();
        let report = Simulator::new(cfg()).run(&loads);
        assert!(
            report.max_concurrent_subframes >= 2,
            "overloaded run must overlap subframes: {}",
            report.max_concurrent_subframes
        );
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let loads: Vec<SubframeLoad> = (0..20)
            .map(|i| SubframeLoad {
                jobs: vec![job(500 + 200 * (i % 5) as u64)],
                active_target: 8,
            })
            .collect();
        let report = Simulator::new(cfg()).run(&loads);
        let p50 = report.latency_percentile(50);
        let p95 = report.latency_percentile(95);
        let p100 = report.latency_percentile(100);
        assert!(p50 <= p95 && p95 <= p100);
        assert_eq!(p100, *report.job_latencies.iter().max().unwrap());
        assert_eq!(SimReport::default().latency_percentile(99), 0);
    }
}

#[cfg(test)]
mod per_core_tests {
    use super::*;

    fn cfg(policy: NapMode) -> SimConfig {
        SimConfig {
            n_workers: 8,
            dispatch_period: 100_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 20_000,
            clock_hz: 700.0e6,
            nap: policy,
        }
    }

    fn loads(n: usize, target: usize) -> Vec<SubframeLoad> {
        (0..n)
            .map(|_| SubframeLoad {
                jobs: vec![SimJob {
                    est_tasks: vec![2_000; 4],
                    weights_cost: 1_000,
                    combine_tasks: vec![2_000; 8],
                    finish_cost: 2_000,
                }],
                active_target: target,
            })
            .collect()
    }

    #[test]
    fn per_core_busy_sums_to_bucket_busy() {
        let report = Simulator::new(cfg(NapMode::NONE)).run(&loads(10, 8));
        let per_core: u64 = report.busy_per_core.iter().sum();
        let buckets: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
        assert_eq!(per_core, buckets);
    }

    #[test]
    fn proactive_nap_concentrates_work_on_low_cores() {
        let report = Simulator::new(cfg(NapMode::NAP)).run(&loads(40, 3));
        let low: u64 = report.busy_per_core[..3].iter().sum();
        let high: u64 = report.busy_per_core[3..].iter().sum();
        assert!(
            low > 5 * high.max(1),
            "work must concentrate below the target: low {low} high {high}"
        );
    }

    #[test]
    fn nonap_spreads_work_more_evenly() {
        let report = Simulator::new(cfg(NapMode::NONE)).run(&loads(40, 8));
        let busiest = *report.busy_per_core.iter().max().unwrap() as f64;
        let active = report.busy_per_core.iter().filter(|&&b| b > 0).count();
        assert!(active >= 4, "several cores should participate: {active}");
        let total: u64 = report.busy_per_core.iter().sum();
        assert!(
            busiest < 0.8 * total as f64,
            "no single core should dominate"
        );
    }
}

#[cfg(test)]
mod obs_tests {
    use super::*;
    use lte_obs::{JsonLinesRecorder, RingRecorder};

    fn cfg(policy: NapMode) -> SimConfig {
        SimConfig {
            n_workers: 8,
            dispatch_period: 100_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 20_000,
            clock_hz: 700.0e6,
            nap: policy,
        }
    }

    fn loads(n: usize, units: u64, target: usize) -> Vec<SubframeLoad> {
        (0..n)
            .map(|_| SubframeLoad {
                jobs: vec![SimJob {
                    est_tasks: vec![units; 4],
                    weights_cost: units / 2,
                    combine_tasks: vec![units; 8],
                    finish_cost: units,
                }],
                active_target: target,
            })
            .collect()
    }

    #[test]
    fn stage_breakdown_sums_to_busy_cycles_under_every_policy() {
        for policy in NapMode::ALL {
            let report = Simulator::new(cfg(policy)).run(&loads(10, 2_000, 3));
            let stage_total: u64 = report.stage_breakdown().iter().map(|(_, c)| c).sum();
            let busy: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
            assert_eq!(stage_total, busy, "{policy}");
            // Every coarse stage ran at least once.
            for (stage, cycles) in report.stage_breakdown() {
                assert!(cycles > 0, "{policy}: stage {stage} never accounted");
            }
        }
    }

    #[test]
    fn per_core_counters_are_consistent() {
        let report = Simulator::new(cfg(NapMode::NAP_IDLE)).run(&loads(10, 2_000, 3));
        // 4 est + 1 weights + 8 combine + 1 finish per job.
        let tasks: u64 = report.tasks_per_core.iter().sum();
        assert_eq!(tasks, 10 * 14);
        let pulses: u64 = report.wake_pulses_per_core.iter().sum();
        let bucket_pulses: u64 = report.buckets.iter().map(|b| b.wake_pulses).sum();
        assert_eq!(pulses, bucket_pulses);
        let steals: u64 = report.steals_per_core.iter().sum();
        assert!(steals > 0, "parallel phases require steals");
    }

    #[test]
    fn recorded_spans_cover_every_core_cycle() {
        // The emitted CoreSpans must tile [0, end_time) on every core:
        // contiguous, non-overlapping, starting at 0.
        let recorder = RingRecorder::new(1 << 20);
        let report =
            Simulator::with_recorder(cfg(NapMode::NAP_IDLE), &recorder).run(&loads(10, 2_000, 3));
        let mut next_start = [0u64; 8];
        let mut busy_from_spans = 0u64;
        for ev in recorder.events() {
            if let lte_obs::Event::CoreSpan {
                core,
                state,
                start,
                end,
                ..
            } = ev
            {
                assert_eq!(start, next_start[core as usize], "gap on core {core}");
                assert!(end > start);
                next_start[core as usize] = end;
                if state == lte_obs::CoreState::Busy {
                    busy_from_spans += end - start;
                }
            }
        }
        for (core, &t) in next_start.iter().enumerate() {
            assert_eq!(t, report.end_time, "core {core} not covered to the end");
        }
        let busy: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
        assert_eq!(busy_from_spans, busy);
    }

    #[test]
    fn recorder_sees_dispatches_subframes_steals_and_wakes() {
        let recorder = RingRecorder::new(1 << 20);
        Simulator::with_recorder(cfg(NapMode::NAP_IDLE), &recorder).run(&loads(10, 2_000, 3));
        let events = recorder.events();
        let count = |f: &dyn Fn(&lte_obs::Event) -> bool| events.iter().filter(|e| f(e)).count();
        assert_eq!(count(&|e| matches!(e, lte_obs::Event::Dispatch { .. })), 10);
        assert_eq!(
            count(&|e| matches!(e, lte_obs::Event::SubframeSpan { .. })),
            10
        );
        assert!(count(&|e| matches!(e, lte_obs::Event::Steal { .. })) > 0);
        assert!(count(&|e| matches!(e, lte_obs::Event::WakePulse { .. })) > 0);
    }

    #[test]
    fn tracing_does_not_change_results() {
        let plain = Simulator::new(cfg(NapMode::NAP_IDLE)).run(&loads(20, 1_500, 3));
        let recorder = JsonLinesRecorder::new();
        let traced =
            Simulator::with_recorder(cfg(NapMode::NAP_IDLE), &recorder).run(&loads(20, 1_500, 3));
        assert_eq!(plain, traced);
        assert!(!recorder.is_empty());
    }

    #[test]
    fn identical_runs_record_identical_traces() {
        let trace_of = || {
            let r = JsonLinesRecorder::new();
            Simulator::with_recorder(cfg(NapMode::NAP_IDLE), &r).run(&loads(15, 1_500, 3));
            r.into_string()
        };
        assert_eq!(trace_of(), trace_of());
    }
}
