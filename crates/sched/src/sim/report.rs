//! Occupancy output of the discrete-event simulator.

use lte_obs::Stage;

use super::config::SimConfig;

/// Occupancy statistics for one dispatch-period bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BucketStats {
    /// Cycles spent in useful compute (the Eq. 1 sums).
    pub busy_cycles: u64,
    /// Cycles spent spinning: idle work search plus barrier waits.
    pub spin_cycles: u64,
    /// Cycles spent napping (clock-gated).
    pub nap_cycles: u64,
    /// Nap wake pulses taken in this bucket (total).
    pub wake_pulses: u64,
    /// The subset of wake pulses that only checked a status flag
    /// (proactively napped cores). The paper attributes IDLE's extra
    /// power to the remaining, costlier work-polling pulses.
    pub wake_pulses_status: u64,
    /// The policy's active-core target during this bucket.
    pub active_target: usize,
    /// Jobs completed in this bucket.
    pub jobs_completed: u64,
}

impl BucketStats {
    /// Activity per Eq. 2: useful cycles over total worker cycles.
    pub fn activity(&self, n_workers: usize, bucket_cycles: u64) -> f64 {
        self.busy_cycles as f64 / (n_workers as u64 * bucket_cycles) as f64
    }
}

/// The simulator's output.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Per-dispatch-period occupancy.
    pub buckets: Vec<BucketStats>,
    /// Completion latency (cycles from dispatch) of every job, in
    /// completion order.
    pub job_latencies: Vec<u64>,
    /// Simulated end time in cycles.
    pub end_time: u64,
    /// Total jobs executed.
    pub jobs_total: usize,
    /// Largest number of *subframes* with unfinished jobs at any instant
    /// — the paper: "A base station therefore processes no more than two
    /// to three subframes concurrently."
    pub max_concurrent_subframes: usize,
    /// Total busy cycles per core over the run — shows how proactive
    /// policies concentrate work on the low-numbered (always-active)
    /// cores.
    pub busy_per_core: Vec<u64>,
    /// Busy cycles attributed to each coarse stage, indexed in
    /// [`Stage::SIM`] order (estimation, weights, combine, finish).
    /// The four entries sum exactly to the run's total busy cycles.
    pub stage_cycles: [u64; 4],
    /// Successful steals per core.
    pub steals_per_core: Vec<u64>,
    /// Work searches per core that found nothing to run or steal.
    pub steal_fails_per_core: Vec<u64>,
    /// Tasks (including continuations) executed per core.
    pub tasks_per_core: Vec<u64>,
    /// Nap wake pulses taken per core.
    pub wake_pulses_per_core: Vec<u64>,
    /// Subframes that completed after their deadline budget (only
    /// counted when a [`lte_fault::DeadlineBudget`] is attached).
    pub overruns: u64,
    /// Subframes discarded whole by the `DropSubframe` overload policy.
    pub dropped_subframes: u64,
    /// User jobs shed by the `ShedUsers` / `DropSubframe` policies.
    pub shed_jobs: u64,
    /// Subframes whose demap work was degraded (exact → max-log) by the
    /// `DegradeDemap` policy.
    pub degraded_subframes: u64,
    /// Tasks that hit a seeded panic and were re-executed (chaos runs).
    pub poisoned_tasks: u64,
    /// Jobs whose user-thread ownership was adopted by a surviving core
    /// after their owner fail-stopped.
    pub adopted_jobs: u64,
}

impl SimReport {
    /// Latency percentile in cycles (`p` in 0..=100); 0 for empty runs.
    pub fn latency_percentile(&self, p: usize) -> u64 {
        if self.job_latencies.is_empty() {
            return 0;
        }
        let mut sorted = self.job_latencies.clone();
        sorted.sort_unstable();
        let idx = (sorted.len() - 1).min(sorted.len() * p.min(100) / 100);
        sorted[idx]
    }

    /// Mean activity over the whole run (Eq. 2 with a run-length window).
    pub fn mean_activity(&self, cfg: &SimConfig) -> f64 {
        let busy: u64 = self.buckets.iter().map(|b| b.busy_cycles).sum();
        let total = cfg.n_workers as u64 * cfg.dispatch_period * self.buckets.len().max(1) as u64;
        busy as f64 / total as f64
    }

    /// Activity averaged over windows of `per` buckets (the paper uses
    /// 1-second windows = 200 subframes).
    pub fn windowed_activity(&self, cfg: &SimConfig, per: usize) -> Vec<f64> {
        assert!(per > 0, "window must be positive");
        self.buckets
            .chunks(per)
            .map(|w| {
                let busy: u64 = w.iter().map(|b| b.busy_cycles).sum();
                busy as f64 / (cfg.n_workers as u64 * cfg.dispatch_period * w.len() as u64) as f64
            })
            .collect()
    }

    /// Busy cycles per coarse pipeline stage, in pipeline order.
    ///
    /// The stage totals sum exactly to the run's busy cycles, i.e. to
    /// the Eq. 2 activity figure times `n_workers × cycles` capacity.
    pub fn stage_breakdown(&self) -> [(Stage, u64); 4] {
        [
            (Stage::Estimation, self.stage_cycles[0]),
            (Stage::Weights, self.stage_cycles[1]),
            (Stage::Combine, self.stage_cycles[2]),
            (Stage::Finish, self.stage_cycles[3]),
        ]
    }
}
