//! Deterministic discrete-event simulator of a 64-core tile machine.
//!
//! This is the reproduction's stand-in for the Tilera TILEPro64: the power
//! experiments of the paper are occupancy phenomena — which cores are
//! busy, spinning, or napping at each instant under a given resource-
//! management policy — and this simulator reproduces exactly those
//! occupancy traces for the benchmark's task graph, deterministically.
//!
//! Modelled behaviour (matching §IV/§VI of the paper):
//!
//! * one global user queue; idle workers check it **before** stealing;
//! * per-worker task queues; the user thread spawns its tasks locally and
//!   pops LIFO, thieves steal FIFO from the front with a steal latency;
//! * the user thread **waits** (spins) at each phase barrier instead of
//!   stealing, exactly as described in §IV-C;
//! * the `nap` instruction clock-gates a core; "there is no easy way to
//!   reactivate a napping core; a core therefore periodically wakes up to
//!   see if its status has changed" — napping cores here wake every
//!   [`SimConfig::wake_period`] cycles, pay a wake pulse, and re-check;
//! * proactive deactivation ([`NapMode::proactive`]) naps cores whose id
//!   exceeds the per-subframe active-core target (Eq. 5); reactive napping
//!   ([`NapMode::reactive`]) naps cores that find no work.
//!
//! Per-bucket occupancy statistics (busy / spin / nap cycles, wake pulses)
//! feed the `lte-power` model, and the busy-cycle counts are the
//! `get_cycle_count()` sums behind the paper's activity metric (Eq. 2).
//!
//! The *policy* that picks per-subframe targets lives outside this crate:
//! `lte-power::governor` maps the paper's NONAP/IDLE/NAP/NAP+IDLE names
//! onto the mechanism flags here ([`NapMode`]) and drives either this
//! simulator or the real `TaskPool` through a shared substrate trait. A
//! governed run steps the machine one subframe boundary at a time via
//! [`SimSession`]; [`Simulator::run`] is the ungoverned one-shot wrapper
//! and both produce byte-identical reports for identical targets.
//!
//! The simulator is generic over an [`lte_obs::Recorder`]; with the
//! default [`NoopRecorder`](lte_obs::NoopRecorder) every trace emission
//! compiles away. A real recorder receives per-core state-transition
//! spans (stage- and subframe-attributed when busy), wake pulses, steals,
//! dispatches and per-subframe latency spans, all timestamped in
//! simulated cycles.
//!
//! Module layout: [`config`] holds the machine parameters and workload
//! types, [`report`] the occupancy output, [`engine`] the event loop and
//! the stepping session.

mod config;
mod engine;
mod report;
#[cfg(test)]
mod tests;

pub use config::{NapMode, SimConfig, SubframeLoad};
pub use engine::{SessionProgress, SimBoundary, SimSession, Simulator};
pub use report::{BucketStats, SimReport};
