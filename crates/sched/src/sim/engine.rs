//! The discrete-event machine: cores, the event heap, and the governed
//! stepping session.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use lte_fault::{DeadlineBudget, FaultPlan, OverloadPolicy};
use lte_obs::{Event as TraceEvent, FaultKind, NoopRecorder, Recorder, Stage};

use super::config::{SimConfig, SubframeLoad};
use super::report::{BucketStats, SimReport};
use crate::cycles::SimJob;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Estimation,
    Weights,
    Combine,
    Finish,
}

struct JobState {
    spec: SimJob,
    phase: Phase,
    pending: usize,
    user_core: usize,
    ready_continuation: bool,
    dispatched_at: u64,
    subframe: usize,
    done: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Work {
    /// A stealable phase task of `job`.
    Task { job: usize, cost: u64 },
    /// The combiner-weight continuation of `job`.
    Weights { job: usize },
    /// The serial tail of `job`.
    Finish { job: usize },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CoreState {
    SpinIdle,
    Busy,
    WaitBarrier,
    NapReactive,
    NapProactive,
    /// Fail-stopped by a chaos plan; never transitions out.
    Dead,
}

/// Maps the simulator's internal state onto the trace vocabulary.
fn trace_state(state: CoreState) -> lte_obs::CoreState {
    match state {
        CoreState::Busy => lte_obs::CoreState::Busy,
        CoreState::SpinIdle => lte_obs::CoreState::Spin,
        CoreState::WaitBarrier => lte_obs::CoreState::Barrier,
        CoreState::NapReactive => lte_obs::CoreState::NapReactive,
        CoreState::NapProactive => lte_obs::CoreState::NapProactive,
        CoreState::Dead => lte_obs::CoreState::Dead,
    }
}

/// Index of a coarse stage in [`SimReport::stage_cycles`].
fn stage_slot(stage: Stage) -> usize {
    match stage {
        Stage::Estimation => 0,
        Stage::Weights => 1,
        Stage::Combine => 2,
        Stage::Finish => 3,
        other => unreachable!("simulator never runs fine-grained stage {other}"),
    }
}

struct Core {
    state: CoreState,
    state_since: u64,
    deque: VecDeque<Work>,
    current: Option<Work>,
    /// Stage attribution of the in-flight work (busy state only).
    current_stage: Option<Stage>,
    /// Subframe attribution of the in-flight work (busy state only).
    current_subframe: Option<u32>,
    owned_job: Option<usize>,
    wake_seq: u64,
    wake_pending: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Dispatch { subframe: usize },
    TaskDone { core: usize },
    Wake { core: usize, seq: u64 },
    CoreDeath { core: usize },
}

/// The discrete-event simulator. Construct with a config, feed it a
/// subframe sequence with [`Simulator::run`].
///
/// Generic over the trace [`Recorder`]; [`Simulator::new`] uses the
/// zero-cost [`NoopRecorder`], [`Simulator::with_recorder`] attaches a
/// real sink.
pub struct Simulator<R: Recorder = NoopRecorder> {
    cfg: SimConfig,
    recorder: R,
    cores: Vec<Core>,
    jobs: Vec<JobState>,
    user_queue: VecDeque<usize>,
    events: BinaryHeap<Reverse<(u64, u64, Event)>>,
    event_seq: u64,
    now: u64,
    target: usize,
    buckets: Vec<BucketStats>,
    job_latencies: Vec<u64>,
    jobs_completed: usize,
    dispatched_all: bool,
    steal_cursor: usize,
    /// Unfinished-job count per subframe index (for concurrency stats).
    open_jobs_per_subframe: Vec<usize>,
    /// Lower bound on the oldest dispatched subframe that still has
    /// unfinished jobs (advanced lazily; drives the overload trigger).
    oldest_open_subframe: usize,
    /// Dispatch time per subframe (for latency spans).
    subframe_dispatched_at: Vec<u64>,
    busy_per_core: Vec<u64>,
    stage_cycles: [u64; 4],
    steals_per_core: Vec<u64>,
    steal_fails_per_core: Vec<u64>,
    tasks_per_core: Vec<u64>,
    wake_pulses_per_core: Vec<u64>,
    open_subframes: usize,
    max_concurrent_subframes: usize,
    /// Per-subframe deadline budget and overload policy, if attached.
    degradation: Option<DeadlineBudget>,
    /// Seeded chaos plan (core death, slow cores, task poisoning).
    chaos: Option<FaultPlan>,
    /// Jobs whose user core died mid-flight, bundled with their stranded
    /// work, awaiting adoption by a surviving core.
    orphan_owners: VecDeque<(usize, Vec<Work>)>,
    /// Per-subframe count of tasks drawn against the chaos plan (the
    /// deterministic task ordinal for `FaultPlan::task_panics`).
    tasks_drawn_per_subframe: Vec<usize>,
    overruns: u64,
    dropped_subframes: u64,
    shed_jobs: u64,
    degraded_subframes: u64,
    poisoned_tasks: u64,
    adopted_jobs: u64,
    /// Per-subframe active-core targets injected by a governor through
    /// [`SimSession::set_target`]; `None` falls back to the load's own
    /// `active_target`.
    target_overrides: Vec<Option<usize>>,
}

impl Simulator {
    /// Creates a simulator with tracing disabled.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_workers == 0` or `cfg.dispatch_period == 0`.
    pub fn new(cfg: SimConfig) -> Self {
        Simulator::with_recorder(cfg, NoopRecorder)
    }
}

impl<R: Recorder> Simulator<R> {
    /// Creates a simulator that emits trace events into `recorder`.
    ///
    /// Pass `&recorder` (or an `Arc`) to keep the sink afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_workers == 0` or `cfg.dispatch_period == 0`.
    pub fn with_recorder(cfg: SimConfig, recorder: R) -> Self {
        assert!(cfg.n_workers > 0, "need at least one worker");
        assert!(cfg.dispatch_period > 0, "dispatch period must be positive");
        let cores = (0..cfg.n_workers)
            .map(|_| Core {
                state: CoreState::SpinIdle,
                state_since: 0,
                deque: VecDeque::new(),
                current: None,
                current_stage: None,
                current_subframe: None,
                owned_job: None,
                wake_seq: 0,
                wake_pending: false,
            })
            .collect();
        Simulator {
            cfg,
            recorder,
            cores,
            jobs: Vec::new(),
            user_queue: VecDeque::new(),
            events: BinaryHeap::new(),
            event_seq: 0,
            now: 0,
            target: cfg.n_workers,
            buckets: Vec::new(),
            job_latencies: Vec::new(),
            jobs_completed: 0,
            dispatched_all: false,
            steal_cursor: 0,
            open_jobs_per_subframe: Vec::new(),
            oldest_open_subframe: 0,
            subframe_dispatched_at: Vec::new(),
            busy_per_core: vec![0; cfg.n_workers],
            stage_cycles: [0; 4],
            steals_per_core: vec![0; cfg.n_workers],
            steal_fails_per_core: vec![0; cfg.n_workers],
            tasks_per_core: vec![0; cfg.n_workers],
            wake_pulses_per_core: vec![0; cfg.n_workers],
            open_subframes: 0,
            max_concurrent_subframes: 0,
            degradation: None,
            chaos: None,
            orphan_owners: VecDeque::new(),
            tasks_drawn_per_subframe: Vec::new(),
            overruns: 0,
            dropped_subframes: 0,
            shed_jobs: 0,
            degraded_subframes: 0,
            poisoned_tasks: 0,
            adopted_jobs: 0,
            target_overrides: Vec::new(),
        }
    }

    /// Attaches a per-subframe deadline budget: subframes finishing past
    /// `budget.budget` cycles after dispatch count as overruns, and new
    /// subframes dispatched while an older subframe is already past its
    /// deadline are subjected to `budget.policy` (drop / shed / degrade).
    /// Benign pipelining — a subframe or two in flight but still inside
    /// the budget — does not engage the policy.
    pub fn with_degradation(mut self, budget: DeadlineBudget) -> Self {
        self.degradation = Some(budget);
        self
    }

    /// Attaches a seeded chaos plan. The DES honours the plan's
    /// `dead_core` (fail-stop + orphan adoption), `slow_cores` (task-time
    /// multipliers) and `task_panic_permille` (poisoned tasks burn their
    /// cost, are counted, and re-execute).
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Runs the subframe sequence to completion and reports occupancy.
    ///
    /// Equivalent to stepping a [`SimSession`] to exhaustion without
    /// overriding any targets: the event pop order — and therefore the
    /// report and the trace — is identical to an ungoverned run.
    pub fn run(self, subframes: &[SubframeLoad]) -> SimReport {
        let mut session = self.session(subframes);
        while session.advance().is_some() {}
        session.finish()
    }

    /// Prepares a governed stepping session over `subframes`: seeds the
    /// dispatch schedule (and any chaos plan) without executing anything.
    /// Drive it with [`SimSession::advance`] / [`SimSession::set_target`]
    /// and collect the report with [`SimSession::finish`].
    pub fn session(mut self, subframes: &[SubframeLoad]) -> SimSession<'_, R> {
        self.buckets = vec![BucketStats::default(); subframes.len().max(1)];
        self.open_jobs_per_subframe = vec![0; subframes.len()];
        self.oldest_open_subframe = 0;
        self.subframe_dispatched_at = vec![0; subframes.len()];
        self.tasks_drawn_per_subframe = vec![0; subframes.len()];
        self.target_overrides = vec![None; subframes.len()];
        if let Some(plan) = self.chaos.clone() {
            if let Some(dc) = plan.dead_core {
                if dc.core < self.cfg.n_workers {
                    self.push_event(dc.at_cycle, Event::CoreDeath { core: dc.core });
                }
            }
            if self.recorder.enabled() {
                for sc in &plan.slow_cores {
                    if sc.core < self.cfg.n_workers {
                        self.recorder.record(TraceEvent::Fault {
                            kind: FaultKind::SlowCore,
                            core: sc.core as u32,
                            subframe: u32::MAX,
                            t: 0,
                        });
                    }
                }
            }
        }
        for (i, _) in subframes.iter().enumerate() {
            self.push_event(
                i as u64 * self.cfg.dispatch_period,
                Event::Dispatch { subframe: i },
            );
        }
        if subframes.is_empty() {
            self.dispatched_all = true;
        }
        SimSession {
            sim: self,
            subframes,
            pending: None,
            last_measure: (0, 0),
        }
    }

    fn push_event(&mut self, t: u64, ev: Event) {
        self.event_seq += 1;
        self.events.push(Reverse((t, self.event_seq, ev)));
    }

    fn all_work_done(&self) -> bool {
        self.dispatched_all && self.jobs_completed == self.jobs.len()
    }

    /// Splits a state interval across buckets and accumulates it.
    fn account(&mut self, state: CoreState, from: u64, to: u64) {
        if to <= from {
            return;
        }
        let width = self.cfg.dispatch_period;
        let last = self.buckets.len() - 1;
        let mut t = from;
        while t < to {
            let idx = ((t / width) as usize).min(last);
            let bucket_end = if idx == last {
                to
            } else {
                ((t / width) + 1) * width
            };
            let span = bucket_end.min(to) - t;
            let b = &mut self.buckets[idx];
            match state {
                CoreState::Busy => b.busy_cycles += span,
                CoreState::SpinIdle | CoreState::WaitBarrier => b.spin_cycles += span,
                // A dead core is power-gated: account it like a nap so
                // occupancy still tiles workers × time.
                CoreState::NapReactive | CoreState::NapProactive | CoreState::Dead => {
                    b.nap_cycles += span
                }
            }
            t = bucket_end.min(to);
        }
    }

    fn bucket_idx(&self, t: u64) -> usize {
        ((t / self.cfg.dispatch_period) as usize).min(self.buckets.len() - 1)
    }

    /// Transitions a core to a new state, accounting the old interval
    /// and emitting it as a trace span.
    fn set_state(&mut self, core: usize, state: CoreState) {
        let (old, since) = (self.cores[core].state, self.cores[core].state_since);
        let now = self.now;
        self.account(old, since, now);
        if old == CoreState::Busy && now > since {
            self.busy_per_core[core] += now - since;
            if let Some(stage) = self.cores[core].current_stage {
                self.stage_cycles[stage_slot(stage)] += now - since;
            }
        }
        if self.recorder.enabled() && now > since {
            let busy = old == CoreState::Busy;
            self.recorder.record(TraceEvent::CoreSpan {
                core: core as u32,
                state: trace_state(old),
                start: since,
                end: now,
                stage: if busy {
                    self.cores[core].current_stage
                } else {
                    None
                },
                subframe: if busy {
                    self.cores[core].current_subframe
                } else {
                    None
                },
            });
        }
        let c = &mut self.cores[core];
        c.state = state;
        c.state_since = now;
        if state != CoreState::Busy {
            c.current_stage = None;
            c.current_subframe = None;
        }
    }

    /// True when the oldest still-open subframe has already blown its
    /// deadline budget at the current instant — the receiver is genuinely
    /// behind, not just pipelining a subframe or two.
    fn deadline_pressure(&mut self, dispatching: usize, budget_cycles: u64) -> bool {
        while self.oldest_open_subframe < dispatching
            && self.open_jobs_per_subframe[self.oldest_open_subframe] == 0
        {
            self.oldest_open_subframe += 1;
        }
        self.oldest_open_subframe < dispatching
            && self.now - self.subframe_dispatched_at[self.oldest_open_subframe] >= budget_cycles
    }

    /// Applies the attached overload policy to an incoming subframe when
    /// the receiver is behind (an older subframe already past its
    /// deadline budget at dispatch). Returns the job list that actually
    /// runs.
    fn apply_overload_policy(&mut self, subframe: usize, jobs: Vec<SimJob>) -> Vec<SimJob> {
        let Some(budget) = self.degradation else {
            return jobs;
        };
        if self.open_subframes == 0 || jobs.is_empty() {
            return jobs;
        }
        if !self.deadline_pressure(subframe, budget.budget) {
            return jobs;
        }
        let record_fault = |sim: &mut Self, kind: FaultKind| {
            if sim.recorder.enabled() {
                sim.recorder.record(TraceEvent::Fault {
                    kind,
                    core: u32::MAX,
                    subframe: subframe as u32,
                    t: sim.now,
                });
            }
        };
        match budget.policy {
            OverloadPolicy::DropSubframe => {
                self.dropped_subframes += 1;
                self.shed_jobs += jobs.len() as u64;
                record_fault(self, FaultKind::SubframeDropped);
                Vec::new()
            }
            OverloadPolicy::ShedUsers => {
                // Shed lowest-cost (lowest-PRB) users until the remainder
                // fits the budget's cycle capacity; always shed at least
                // one and always keep at least one.
                let capacity = budget.budget.saturating_mul(self.target as u64);
                let mut order: Vec<usize> = (0..jobs.len()).collect();
                order.sort_by_key(|&i| (jobs[i].total_cycles(), i));
                let mut total: u64 = jobs.iter().map(|j| j.total_cycles()).sum();
                let mut shed = vec![false; jobs.len()];
                let mut n_shed = 0;
                for &i in &order {
                    if (total <= capacity && n_shed > 0) || n_shed + 1 == jobs.len() {
                        break;
                    }
                    total -= jobs[i].total_cycles();
                    shed[i] = true;
                    n_shed += 1;
                    record_fault(self, FaultKind::UserShed);
                }
                self.shed_jobs += n_shed as u64;
                jobs.into_iter()
                    .zip(shed)
                    .filter_map(|(j, s)| (!s).then_some(j))
                    .collect()
            }
            OverloadPolicy::DegradeDemap => {
                // Max-log demapping costs ~70% of the exact kernel; the
                // subframe keeps every user at reduced combine cost.
                self.degraded_subframes += 1;
                record_fault(self, FaultKind::DemapDegraded);
                jobs.into_iter()
                    .map(|mut j| {
                        for c in &mut j.combine_tasks {
                            *c = *c * 7 / 10;
                        }
                        j
                    })
                    .collect()
            }
        }
    }

    fn handle_dispatch(&mut self, subframe: usize, subframes: &[SubframeLoad]) {
        let load = &subframes[subframe];
        let requested = self.target_overrides[subframe].unwrap_or(load.active_target);
        self.target = if self.cfg.nap.proactive {
            requested.clamp(1, self.cfg.n_workers)
        } else {
            self.cfg.n_workers
        };
        let idx = self.bucket_idx(self.now);
        self.buckets[idx].active_target = self.target;
        self.subframe_dispatched_at[subframe] = self.now;
        let jobs = self.apply_overload_policy(subframe, load.jobs.clone());
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent::Dispatch {
                subframe: subframe as u32,
                t: self.now,
                jobs: jobs.len() as u32,
                active_target: self.target as u32,
            });
        }
        if !jobs.is_empty() {
            self.open_jobs_per_subframe[subframe] = jobs.len();
            self.open_subframes += 1;
            self.max_concurrent_subframes = self.max_concurrent_subframes.max(self.open_subframes);
        }
        for job in &jobs {
            let id = self.jobs.len();
            self.jobs.push(JobState {
                spec: job.clone(),
                phase: Phase::Estimation,
                pending: 0,
                user_core: usize::MAX,
                ready_continuation: false,
                dispatched_at: self.now,
                subframe,
                done: false,
            });
            self.user_queue.push_back(id);
        }
        if subframe + 1 == subframes.len() {
            self.dispatched_all = true;
        }
        // A proactive target drop naps spinning cores above the line;
        // new work wakes the rest.
        self.renap_spinners_above_target();
        self.notify_spinners();
    }

    /// The proactive active-core line, shifted up to compensate for dead
    /// cores below it so a chaos plan cannot starve the machine.
    fn effective_target(&self) -> usize {
        let dead_below = self
            .cores
            .iter()
            .take(self.target)
            .filter(|c| c.state == CoreState::Dead)
            .count();
        (self.target + dead_below).min(self.cfg.n_workers)
    }

    /// Proactively naps spinning cores whose id is at or above the target.
    fn renap_spinners_above_target(&mut self) {
        if !self.cfg.nap.proactive {
            return;
        }
        for core in self.effective_target()..self.cfg.n_workers {
            if self.cores[core].state == CoreState::SpinIdle && self.cores[core].owned_job.is_none()
            {
                self.enter_nap(core, CoreState::NapProactive);
            }
        }
    }

    /// Schedules immediate work-search wakeups for all spinning cores.
    fn notify_spinners(&mut self) {
        for core in 0..self.cfg.n_workers {
            if self.cores[core].state == CoreState::SpinIdle && !self.cores[core].wake_pending {
                self.cores[core].wake_pending = true;
                self.cores[core].wake_seq += 1;
                let seq = self.cores[core].wake_seq;
                self.push_event(self.now, Event::Wake { core, seq });
            }
        }
    }

    fn enter_nap(&mut self, core: usize, kind: CoreState) {
        debug_assert!(matches!(
            kind,
            CoreState::NapReactive | CoreState::NapProactive
        ));
        self.set_state(core, kind);
        if !self.all_work_done() {
            self.cores[core].wake_seq += 1;
            self.cores[core].wake_pending = true;
            let seq = self.cores[core].wake_seq;
            let t = self.now + self.cfg.wake_period;
            self.push_event(t, Event::Wake { core, seq });
        }
    }

    fn handle_wake(&mut self, core: usize, seq: u64) {
        if self.cores[core].wake_seq != seq {
            return; // stale wakeup
        }
        self.cores[core].wake_pending = false;
        match self.cores[core].state {
            CoreState::NapReactive | CoreState::NapProactive => {
                let status_only = self.cores[core].state == CoreState::NapProactive;
                let idx = self.bucket_idx(self.now);
                self.buckets[idx].wake_pulses += 1;
                if status_only {
                    self.buckets[idx].wake_pulses_status += 1;
                }
                self.wake_pulses_per_core[core] += 1;
                if self.recorder.enabled() {
                    self.recorder.record(TraceEvent::WakePulse {
                        core: core as u32,
                        t: self.now,
                        status_only,
                    });
                }
                self.find_work(core);
            }
            CoreState::SpinIdle => self.find_work(core),
            _ => {}
        }
    }

    /// Fail-stops a core per the chaos plan: queued and in-flight work is
    /// re-routed to surviving owners, and the core's own job (if any) is
    /// bundled for adoption by the next free survivor.
    fn handle_core_death(&mut self, core: usize) {
        if self.cores[core].state == CoreState::Dead {
            return;
        }
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent::Fault {
                kind: FaultKind::CoreDeath,
                core: core as u32,
                subframe: u32::MAX,
                t: self.now,
            });
        }
        let inflight = self.cores[core].current.take();
        self.set_state(core, CoreState::Dead);
        // Cancel any pending wake; the Dead guard voids the pending
        // TaskDone of the in-flight work.
        self.cores[core].wake_seq += 1;
        self.cores[core].wake_pending = false;
        let mut stranded: Vec<Work> = self.cores[core].deque.drain(..).collect();
        if let Some(w) = inflight {
            stranded.push(w);
        }
        let owned = self.cores[core].owned_job.take();
        let mut own_bundle: Vec<Work> = Vec::new();
        for w in stranded {
            let job = match w {
                Work::Task { job, .. } | Work::Weights { job } | Work::Finish { job } => job,
            };
            if Some(job) == owned {
                own_bundle.push(w);
                continue;
            }
            let uc = self.jobs[job].user_core;
            if self.cores[uc].state == CoreState::Dead {
                // That owner died earlier; grow its adoption bundle.
                if let Some(entry) = self.orphan_owners.iter_mut().find(|(j, _)| *j == job) {
                    entry.1.push(w);
                } else {
                    let alive = self.first_alive_core();
                    self.cores[alive].deque.push_back(w);
                }
            } else if self.cores[uc].state == CoreState::WaitBarrier {
                // The owner is waiting on exactly this work: re-run it
                // there, paying a steal latency for the migration.
                self.start_work(uc, w, self.cfg.steal_latency);
            } else {
                self.cores[uc].deque.push_back(w);
            }
        }
        if let Some(job) = owned {
            self.orphan_owners.push_back((job, own_bundle));
        }
        // Wake survivors so stranded work and orphaned ownership are
        // picked up promptly.
        self.notify_spinners();
    }

    fn start_work(&mut self, core: usize, work: Work, extra_latency: u64) {
        let (job, mut cost, stage) = match work {
            Work::Task { job, cost } => {
                let stage = match self.jobs[job].phase {
                    Phase::Estimation => Stage::Estimation,
                    Phase::Combine => Stage::Combine,
                    p => unreachable!("tasks only run in estimation/combine, not {p:?}"),
                };
                (job, cost, stage)
            }
            Work::Weights { job } => (job, self.jobs[job].spec.weights_cost, Stage::Weights),
            Work::Finish { job } => (job, self.jobs[job].spec.finish_cost, Stage::Finish),
        };
        if let Some(plan) = &self.chaos {
            if let Some(sc) = plan.slow_cores.iter().find(|s| s.core == core) {
                cost = cost.saturating_mul(u64::from(sc.factor_permille)) / 1000;
            }
        }
        self.set_state(core, CoreState::Busy);
        let subframe = self.jobs[job].subframe as u32;
        let c = &mut self.cores[core];
        c.current = Some(work);
        c.current_stage = Some(stage);
        c.current_subframe = Some(subframe);
        self.tasks_per_core[core] += 1;
        let done_at = self.now + extra_latency + self.cfg.task_overhead + cost;
        self.push_event(done_at, Event::TaskDone { core });
    }

    /// Spawns the current phase's stealable tasks onto the user core's
    /// deque and sets the pending barrier count.
    fn spawn_phase_tasks(&mut self, job_id: usize) {
        let (costs, phase) = {
            let j = &self.jobs[job_id];
            match j.phase {
                Phase::Estimation => (j.spec.est_tasks.clone(), Phase::Estimation),
                Phase::Combine => (j.spec.combine_tasks.clone(), Phase::Combine),
                _ => unreachable!("only estimation/combine spawn task sets"),
            }
        };
        let _ = phase;
        let sf = self.jobs[job_id].subframe;
        // If the owning core died before this phase spawned (its Weights
        // continuation ran elsewhere as an orphan), spawn onto the first
        // surviving core instead.
        let core = {
            let uc = self.jobs[job_id].user_core;
            if self.cores[uc].state == CoreState::Dead {
                self.first_alive_core()
            } else {
                uc
            }
        };
        self.jobs[job_id].pending = 0;
        for cost in costs {
            let mut copies = 1;
            if let Some(plan) = &self.chaos {
                let ord = self.tasks_drawn_per_subframe[sf];
                self.tasks_drawn_per_subframe[sf] += 1;
                if plan.task_panics(sf, ord) {
                    // A poisoned task burns a full execution, is counted,
                    // and re-runs: queue it twice, barrier on both.
                    copies = 2;
                    self.poisoned_tasks += 1;
                    if self.recorder.enabled() {
                        self.recorder.record(TraceEvent::Fault {
                            kind: FaultKind::TaskPanic,
                            core: core as u32,
                            subframe: sf as u32,
                            t: self.now,
                        });
                    }
                }
            }
            self.jobs[job_id].pending += copies;
            for _ in 0..copies {
                self.cores[core]
                    .deque
                    .push_back(Work::Task { job: job_id, cost });
            }
        }
        self.notify_spinners();
    }

    /// Lowest-index core that has not fail-stopped. Panics only if every
    /// core is dead, which a single-`dead_core` plan cannot produce.
    fn first_alive_core(&self) -> usize {
        self.cores
            .iter()
            .position(|c| c.state != CoreState::Dead)
            .expect("at least one core must survive")
    }

    fn handle_task_done(&mut self, core: usize) {
        if self.cores[core].state == CoreState::Dead {
            // The core died mid-task; its in-flight work was re-queued at
            // death time, so this completion is void.
            return;
        }
        let work = self.cores[core]
            .current
            .take()
            .expect("TaskDone without current work");
        match work {
            Work::Task { job, .. } => {
                self.jobs[job].pending -= 1;
                if self.jobs[job].pending == 0 {
                    self.barrier_complete(job);
                }
            }
            Work::Weights { job } => {
                self.jobs[job].phase = Phase::Combine;
                self.spawn_phase_tasks(job);
            }
            Work::Finish { job } => {
                self.jobs[job].done = true;
                self.jobs_completed += 1;
                let latency = self.now - self.jobs[job].dispatched_at;
                self.job_latencies.push(latency);
                let idx = self.bucket_idx(self.now);
                self.buckets[idx].jobs_completed += 1;
                let sf = self.jobs[job].subframe;
                self.open_jobs_per_subframe[sf] -= 1;
                if self.open_jobs_per_subframe[sf] == 0 {
                    self.open_subframes -= 1;
                    if let Some(budget) = self.degradation {
                        if self.now - self.subframe_dispatched_at[sf] > budget.budget {
                            self.overruns += 1;
                            if self.recorder.enabled() {
                                self.recorder.record(TraceEvent::Fault {
                                    kind: FaultKind::DeadlineOverrun,
                                    core: u32::MAX,
                                    subframe: sf as u32,
                                    t: self.now,
                                });
                            }
                        }
                    }
                    if self.recorder.enabled() {
                        self.recorder.record(TraceEvent::SubframeSpan {
                            subframe: sf as u32,
                            start: self.subframe_dispatched_at[sf],
                            end: self.now,
                        });
                    }
                }
                self.cores[core].owned_job = None;
            }
        }
        self.find_work(core);
    }

    /// Called when the last task of a barrier phase finishes: makes the
    /// continuation runnable and starts it immediately if the user thread
    /// is already waiting.
    fn barrier_complete(&mut self, job_id: usize) {
        let (phase, user_core) = {
            let j = &mut self.jobs[job_id];
            j.phase = match j.phase {
                Phase::Estimation => Phase::Weights,
                Phase::Combine => Phase::Finish,
                p => p,
            };
            j.ready_continuation = true;
            (j.phase, j.user_core)
        };
        if self.cores[user_core].state == CoreState::WaitBarrier {
            self.jobs[job_id].ready_continuation = false;
            let work = match phase {
                Phase::Weights => Work::Weights { job: job_id },
                Phase::Finish => Work::Finish { job: job_id },
                _ => unreachable!(),
            };
            self.start_work(user_core, work, 0);
        }
    }

    /// The worker scheduling loop body: local queue → barrier
    /// continuation → global user queue → steal → idle (per policy).
    fn find_work(&mut self, core: usize) {
        // User threads drain their own queue, then run continuations,
        // then wait — they never steal mid-job (§IV-C).
        if let Some(job_id) = self.cores[core].owned_job {
            if let Some(task) = self.cores[core].deque.pop_back() {
                self.start_work(core, task, 0);
                return;
            }
            if self.jobs[job_id].ready_continuation {
                self.jobs[job_id].ready_continuation = false;
                let work = match self.jobs[job_id].phase {
                    Phase::Weights => Work::Weights { job: job_id },
                    Phase::Finish => Work::Finish { job: job_id },
                    _ => unreachable!("continuation only in weights/finish"),
                };
                self.start_work(core, work, 0);
                return;
            }
            self.set_state(core, CoreState::WaitBarrier);
            return;
        }

        // Adopt a job orphaned by a core death before anything else: the
        // adopter inherits ownership plus the stranded work, then re-runs
        // the scheduling loop as the new user thread.
        if let Some((job_id, stranded)) = self.orphan_owners.pop_front() {
            self.jobs[job_id].user_core = core;
            self.cores[core].owned_job = Some(job_id);
            self.adopted_jobs += 1;
            for w in stranded {
                self.cores[core].deque.push_back(w);
            }
            return self.find_work(core);
        }

        // Proactively deactivated cores go straight back to sleep.
        if self.cfg.nap.proactive && core >= self.effective_target() {
            self.enter_nap(core, CoreState::NapProactive);
            return;
        }

        // Global user queue first (§IV-C), then steal.
        if let Some(job_id) = self.user_queue.pop_front() {
            self.jobs[job_id].user_core = core;
            self.cores[core].owned_job = Some(job_id);
            self.spawn_phase_tasks(job_id);
            if let Some(task) = self.cores[core].deque.pop_back() {
                self.start_work(core, task, 0);
            }
            return;
        }
        if let Some(victim) = self.find_victim(core) {
            let task = self.cores[victim]
                .deque
                .pop_front()
                .expect("victim verified non-empty");
            self.steals_per_core[core] += 1;
            if self.recorder.enabled() {
                self.recorder.record(TraceEvent::Steal {
                    thief: core as u32,
                    victim: victim as u32,
                    t: self.now,
                });
            }
            self.start_work(core, task, self.cfg.steal_latency);
            return;
        }

        // Nothing to do.
        self.steal_fails_per_core[core] += 1;
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent::StealFail {
                core: core as u32,
                t: self.now,
            });
        }
        if self.cfg.nap.reactive {
            self.enter_nap(core, CoreState::NapReactive);
        } else {
            self.set_state(core, CoreState::SpinIdle);
        }
    }

    /// Round-robin victim search, deterministic and fair.
    fn find_victim(&mut self, thief: usize) -> Option<usize> {
        let n = self.cfg.n_workers;
        for i in 0..n {
            let v = (self.steal_cursor + i) % n;
            if v != thief && !self.cores[v].deque.is_empty() {
                self.steal_cursor = (v + 1) % n;
                return Some(v);
            }
        }
        None
    }
}

/// A paused subframe boundary: the next dispatch the session will
/// execute once [`SimSession::advance`] is called again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimBoundary {
    /// Index of the subframe about to be dispatched.
    pub subframe: usize,
    /// Simulated cycle of the dispatch.
    pub t: u64,
}

/// A stepping handle over a prepared simulation that pauses just before
/// every subframe dispatch, so a governor can observe the machine and
/// inject a per-subframe active-core target.
///
/// The session pops events in exactly the order [`Simulator::run`] does;
/// a session that never calls [`SimSession::set_target`] produces a
/// byte-identical report and trace. Boundary measurements are
/// non-destructive: they never split accounting buckets or trace spans.
/// Cumulative counters of a paused [`SimSession`] — the same quantities
/// the final [`SimReport`] carries, observable mid-run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionProgress {
    /// Jobs completed so far.
    pub jobs_done: u64,
    /// Subframes past their deadline budget so far.
    pub overruns: u64,
    /// Subframes discarded whole by the `DropSubframe` policy so far.
    pub dropped_subframes: u64,
    /// User jobs shed so far.
    pub shed_jobs: u64,
    /// Subframes with degraded demap work so far.
    pub degraded_subframes: u64,
}

pub struct SimSession<'a, R: Recorder = NoopRecorder> {
    sim: Simulator<R>,
    subframes: &'a [SubframeLoad],
    /// The dispatch event peeked but not yet handled: `(subframe, t)`.
    pending: Option<(usize, u64)>,
    /// `(t, busy_cycles)` at the previous boundary measurement.
    last_measure: (u64, u64),
}

impl<'a, R: Recorder> SimSession<'a, R> {
    /// Runs the machine up to the next subframe dispatch (exclusive) and
    /// returns that boundary, or `None` when every event has drained.
    ///
    /// The dispatch itself executes at the *next* `advance` (or at
    /// [`SimSession::finish`]), after the governor has had a chance to
    /// call [`SimSession::set_target`].
    pub fn advance(&mut self) -> Option<SimBoundary> {
        if let Some((subframe, t)) = self.pending.take() {
            let popped = self.sim.events.pop();
            debug_assert!(matches!(
                popped,
                Some(Reverse((_, _, Event::Dispatch { .. })))
            ));
            self.sim.now = t;
            self.sim.handle_dispatch(subframe, self.subframes);
        }
        loop {
            match self.sim.events.peek() {
                None => return None,
                Some(&Reverse((t, _, Event::Dispatch { subframe }))) => {
                    self.pending = Some((subframe, t));
                    return Some(SimBoundary { subframe, t });
                }
                Some(_) => {}
            }
            let Reverse((t, _, ev)) = self.sim.events.pop().expect("peeked event");
            self.sim.now = t;
            match ev {
                Event::Dispatch { .. } => unreachable!("dispatches pause the session"),
                Event::TaskDone { core } => self.sim.handle_task_done(core),
                Event::Wake { core, seq } => self.sim.handle_wake(core, seq),
                Event::CoreDeath { core } => self.sim.handle_core_death(core),
            }
        }
    }

    /// Overrides the active-core target of the pending subframe (the one
    /// the last [`SimSession::advance`] paused on). No-op between
    /// boundaries. Ignored unless [`NapMode::proactive`] is set, exactly
    /// like [`SubframeLoad::active_target`].
    pub fn set_target(&mut self, target: usize) {
        if let Some((subframe, _)) = self.pending {
            self.sim.target_overrides[subframe] = Some(target);
        }
    }

    /// Eq. 2 activity over the window since the previous call (or since
    /// t = 0): busy cycles divided by `n_workers ×` elapsed cycles, with
    /// in-flight busy intervals pro-rated to the boundary instant.
    pub fn boundary_activity(&mut self) -> f64 {
        let t = self.pending.map_or(self.sim.now, |(_, t)| t);
        let busy = self.busy_cycles_at(t);
        let (t0, busy0) = self.last_measure;
        self.last_measure = (t, busy);
        let window = t.saturating_sub(t0);
        if window == 0 {
            return 0.0;
        }
        (busy - busy0) as f64 / (self.sim.cfg.n_workers as u64 * window) as f64
    }

    /// Total busy cycles accumulated by every core up to instant `t`,
    /// including the open interval of cores that are busy right now.
    fn busy_cycles_at(&self, t: u64) -> u64 {
        let mut busy: u64 = self.sim.busy_per_core.iter().sum();
        for c in &self.sim.cores {
            if c.state == CoreState::Busy && t > c.state_since {
                busy += t - c.state_since;
            }
        }
        busy
    }

    /// Total deactivated (napping or fail-stopped) core cycles so far —
    /// the DES analogue of the real pool's parked-worker time.
    pub fn deactivated_cycles(&self) -> u64 {
        let t = self.pending.map_or(self.sim.now, |(_, pt)| pt);
        let mut napped: u64 = self.sim.buckets.iter().map(|b| b.nap_cycles).sum();
        for c in &self.sim.cores {
            let gated = matches!(
                c.state,
                CoreState::NapReactive | CoreState::NapProactive | CoreState::Dead
            );
            if gated && t > c.state_since {
                napped += t - c.state_since;
            }
        }
        napped
    }

    /// Worker-core count of the simulated machine.
    pub fn n_workers(&self) -> usize {
        self.sim.cfg.n_workers
    }

    /// Completion latencies (cycles from dispatch) of every job finished
    /// so far, in completion order. A windowed collector remembers how
    /// many it has already consumed and reads only the tail — the
    /// continuous-telemetry analogue of [`SimReport::job_latencies`].
    pub fn job_latencies(&self) -> &[u64] {
        &self.sim.job_latencies
    }

    /// Cumulative degradation counters so far — read at a boundary to
    /// build per-window deltas without waiting for the final report.
    pub fn progress(&self) -> SessionProgress {
        SessionProgress {
            jobs_done: self.sim.job_latencies.len() as u64,
            overruns: self.sim.overruns,
            dropped_subframes: self.sim.dropped_subframes,
            shed_jobs: self.sim.shed_jobs,
            degraded_subframes: self.sim.degraded_subframes,
        }
    }

    /// Executes any pending dispatch, drains every remaining event, and
    /// builds the final report (identical to [`Simulator::run`]'s).
    pub fn finish(mut self) -> SimReport {
        if let Some((subframe, t)) = self.pending.take() {
            let popped = self.sim.events.pop();
            debug_assert!(matches!(
                popped,
                Some(Reverse((_, _, Event::Dispatch { .. })))
            ));
            self.sim.now = t;
            self.sim.handle_dispatch(subframe, self.subframes);
        }
        while let Some(Reverse((t, _, ev))) = self.sim.events.pop() {
            self.sim.now = t;
            match ev {
                Event::Dispatch { subframe } => self.sim.handle_dispatch(subframe, self.subframes),
                Event::TaskDone { core } => self.sim.handle_task_done(core),
                Event::Wake { core, seq } => self.sim.handle_wake(core, seq),
                Event::CoreDeath { core } => self.sim.handle_core_death(core),
            }
        }
        // Flush terminal states.
        let end = self.sim.now;
        for c in 0..self.sim.cores.len() {
            let (state, since) = (self.sim.cores[c].state, self.sim.cores[c].state_since);
            self.sim.account(state, since, end);
            if state == CoreState::Busy && end > since {
                self.sim.busy_per_core[c] += end - since;
                if let Some(stage) = self.sim.cores[c].current_stage {
                    self.sim.stage_cycles[stage_slot(stage)] += end - since;
                }
            }
            if self.sim.recorder.enabled() && end > since {
                let busy = state == CoreState::Busy;
                self.sim.recorder.record(TraceEvent::CoreSpan {
                    core: c as u32,
                    state: trace_state(state),
                    start: since,
                    end,
                    stage: if busy {
                        self.sim.cores[c].current_stage
                    } else {
                        None
                    },
                    subframe: if busy {
                        self.sim.cores[c].current_subframe
                    } else {
                        None
                    },
                });
            }
        }
        let sim = self.sim;
        debug_assert_eq!(sim.jobs_completed, sim.jobs.len(), "all jobs must finish");
        SimReport {
            buckets: sim.buckets,
            job_latencies: sim.job_latencies,
            end_time: end,
            jobs_total: sim.jobs.len(),
            max_concurrent_subframes: sim.max_concurrent_subframes,
            busy_per_core: sim.busy_per_core,
            stage_cycles: sim.stage_cycles,
            steals_per_core: sim.steals_per_core,
            steal_fails_per_core: sim.steal_fails_per_core,
            tasks_per_core: sim.tasks_per_core,
            wake_pulses_per_core: sim.wake_pulses_per_core,
            overruns: sim.overruns,
            dropped_subframes: sim.dropped_subframes,
            shed_jobs: sim.shed_jobs,
            degraded_subframes: sim.degraded_subframes,
            poisoned_tasks: sim.poisoned_tasks,
            adopted_jobs: sim.adopted_jobs,
        }
    }
}
