//! Machine parameters, nap mechanism flags and per-subframe workloads.

use crate::cycles::SimJob;

/// The nap *mechanism* flags a run executes with. This is deliberately
/// not the paper's four-policy menu: the NONAP/IDLE/NAP/NAP+IDLE naming
/// and the decision of which flags each policy sets live in
/// `lte-power::governor` (the single `NapPolicy` definition); the
/// scheduler only knows how to deactivate cores, not why.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct NapMode {
    /// Deactivate cores whose id is at or above the per-subframe
    /// active-core target (Eq. 5).
    pub proactive: bool,
    /// Nap idle cores that find no work instead of letting them spin.
    pub reactive: bool,
}

impl NapMode {
    /// Idle cores spin; nothing is ever deactivated.
    pub const NONE: NapMode = NapMode {
        proactive: false,
        reactive: false,
    };
    /// Reactive only: cores that find no work nap and poll periodically.
    pub const IDLE: NapMode = NapMode {
        proactive: false,
        reactive: true,
    };
    /// Proactive only: cores above the estimated requirement nap; active
    /// cores spin when idle.
    pub const NAP: NapMode = NapMode {
        proactive: true,
        reactive: false,
    };
    /// Proactive + reactive combined.
    pub const NAP_IDLE: NapMode = NapMode {
        proactive: true,
        reactive: true,
    };

    /// All four mechanism combinations in the paper's presentation order.
    pub const ALL: [NapMode; 4] = [
        NapMode::NONE,
        NapMode::IDLE,
        NapMode::NAP,
        NapMode::NAP_IDLE,
    ];
}

impl std::fmt::Display for NapMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match (self.proactive, self.reactive) {
            (false, false) => "NONAP",
            (false, true) => "IDLE",
            (true, false) => "NAP",
            (true, true) => "NAP+IDLE",
        };
        f.write_str(s)
    }
}

/// Machine and runtime parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Worker cores (the paper: 62 of the 64, one for drivers, one for
    /// the maintenance thread).
    pub n_workers: usize,
    /// Cycles between subframe dispatches (the paper's DELTA; 5 ms at
    /// 700 MHz when running the TILEPro64 at its sustainable rate).
    pub dispatch_period: u64,
    /// Cycles to locate and steal a task from another queue.
    pub steal_latency: u64,
    /// Fixed per-task dispatch overhead.
    pub task_overhead: u64,
    /// Nap wake-poll period in cycles.
    pub wake_period: u64,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// The nap mechanism flags.
    pub nap: NapMode,
}

impl SimConfig {
    /// The paper's evaluation platform: 62 workers at 700 MHz, subframes
    /// every 5 ms, 1 ms nap wake polling.
    pub fn tilepro64(nap: NapMode) -> Self {
        SimConfig {
            n_workers: 62,
            dispatch_period: 3_500_000,
            steal_latency: 400,
            task_overhead: 200,
            wake_period: 700_000,
            clock_hz: 700.0e6,
            nap,
        }
    }

    /// Simulated seconds per dispatch period.
    pub fn dispatch_seconds(&self) -> f64 {
        self.dispatch_period as f64 / self.clock_hz
    }
}

/// One subframe's workload: the user jobs plus the policy's active-core
/// target (ignored when [`NapMode::proactive`] is off).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubframeLoad {
    /// User jobs to dispatch.
    pub jobs: Vec<SimJob>,
    /// Active-core target from the workload estimator (Eq. 5).
    pub active_target: usize,
}
