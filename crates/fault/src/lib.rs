//! `lte-fault`: the fault-injection and graceful-degradation vocabulary.
//!
//! Real uplink receivers live with faults: decode failures are retried
//! via HARQ, overload is shed before it breaks the subframe deadline,
//! and dying cores must not take transport blocks with them. This crate
//! holds the *specification* side of that story — seeded fault plans and
//! overload policies — while the mechanisms live where the faults land
//! (`lte-phy` HARQ, `lte-sched` shedding/self-healing, `lte-uplink`
//! chaos campaigns).
//!
//! Everything here is a pure function of a seed: a [`FaultPlan`] decides
//! whether subframe `s`, user `u`, task `t` is faulted by hashing the
//! indices into its seed, never by consulting call order, wall-clock or
//! shared state. Two same-seed campaigns therefore inject byte-identical
//! fault streams — the determinism tests depend on that.

use lte_dsp::Xoshiro256;

pub mod admission;

pub use admission::{
    EscalationDecision, EscalationLadder, EscalationState, EscalationTier, IngestFaults,
    TokenBucket,
};

/// What the scheduler does with a subframe that cannot meet its
/// deadline budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OverloadPolicy {
    /// Discard the whole subframe (HARQ will retransmit it).
    DropSubframe,
    /// Shed users lowest-PRB-first until the remainder fits the budget.
    ShedUsers,
    /// Keep every user but degrade demapping (exact → max-log), trading
    /// LLR fidelity for cycles.
    DegradeDemap,
}

impl OverloadPolicy {
    /// Every policy, in a stable export order.
    pub const ALL: [OverloadPolicy; 3] = [
        OverloadPolicy::DropSubframe,
        OverloadPolicy::ShedUsers,
        OverloadPolicy::DegradeDemap,
    ];

    /// Stable snake_case name used in exports, metrics and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            OverloadPolicy::DropSubframe => "drop_subframe",
            OverloadPolicy::ShedUsers => "shed_users",
            OverloadPolicy::DegradeDemap => "degrade_demap",
        }
    }
}

impl std::fmt::Display for OverloadPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for OverloadPolicy {
    type Err = String;

    /// Accepts the export names plus the short CLI aliases
    /// `drop` / `shed` / `degrade`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "drop" | "drop_subframe" => Ok(OverloadPolicy::DropSubframe),
            "shed" | "shed_users" => Ok(OverloadPolicy::ShedUsers),
            "degrade" | "degrade_demap" => Ok(OverloadPolicy::DegradeDemap),
            other => Err(format!(
                "unknown overload policy '{other}' (expected drop|shed|degrade)"
            )),
        }
    }
}

/// A per-subframe deadline budget and the policy applied on overload.
///
/// The unit of `budget` is the caller's timebase: simulated cycles in
/// the DES, nanoseconds in the real benchmark loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineBudget {
    /// Time allowed from dispatch to subframe completion.
    pub budget: u64,
    /// What happens to new work while the receiver is behind.
    pub policy: OverloadPolicy,
}

/// A DES core that fail-stops mid-campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadCore {
    /// The core that dies.
    pub core: usize,
    /// Simulated cycle at which it stops picking up work.
    pub at_cycle: u64,
}

/// A DES core running at a degraded frequency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlowCore {
    /// The affected core.
    pub core: usize,
    /// Execution-time multiplier in per-mille (1500 = tasks take 1.5×).
    pub factor_permille: u32,
}

/// A seeded chaos campaign: which faults hit which subframe, user and
/// task, as a pure function of `seed` and the indices.
///
/// Rates are expressed in per-mille (0–1000) so the plan stays integer
/// and hashable; a rate of 0 disables that fault class entirely.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every per-index draw hashes this with the indices.
    pub seed: u64,
    /// Per-user, per-subframe probability (‰) of a deep noise burst on
    /// the first transmission.
    pub noise_burst_permille: u16,
    /// SNR (dB) a bursted user's transmission is received at.
    pub burst_snr_db: f32,
    /// Per-user, per-subframe probability (‰) of resource-grid cell
    /// corruption.
    pub grid_corruption_permille: u16,
    /// Grid cells overwritten per corruption event.
    pub corrupt_cells: usize,
    /// Per-task panic probability (‰), applied in the real pool and in
    /// the DES.
    pub task_panic_permille: u16,
    /// Worker-kill injections spread evenly across the campaign (real
    /// pool; each kill is followed by a respawn).
    pub worker_kills: usize,
    /// DES: a core that fail-stops.
    pub dead_core: Option<DeadCore>,
    /// DES: cores running slow.
    pub slow_cores: Vec<SlowCore>,
}

/// Fault classes addressed by per-index draws; the salt keeps the draw
/// streams independent of each other.
const SALT_NOISE: u64 = 0x6E6F_6973_655F_6231; // "noise_b1"
const SALT_GRID: u64 = 0x6772_6964_5F63_6F72; // "grid_cor"
const SALT_PANIC: u64 = 0x7061_6E69_635F_7431; // "panic_t1"

impl FaultPlan {
    /// A quiet plan: nothing faults. Useful as a baseline and as a
    /// builder starting point.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            noise_burst_permille: 0,
            burst_snr_db: -2.0,
            grid_corruption_permille: 0,
            corrupt_cells: 24,
            task_panic_permille: 0,
            worker_kills: 0,
            dead_core: None,
            slow_cores: Vec::new(),
        }
    }

    /// The default smoke campaign used by `lte-sim chaos` and the CI
    /// smoke run: every fault class active at a rate that exercises the
    /// recovery paths within a few dozen subframes.
    pub fn smoke(seed: u64) -> Self {
        FaultPlan {
            seed,
            noise_burst_permille: 250,
            burst_snr_db: -2.0,
            grid_corruption_permille: 120,
            corrupt_cells: 24,
            task_panic_permille: 30,
            worker_kills: 2,
            dead_core: Some(DeadCore {
                core: 2,
                at_cycle: 400_000,
            }),
            slow_cores: vec![SlowCore {
                core: 1,
                factor_permille: 1500,
            }],
        }
    }

    /// A deterministic RNG for one (salt, a, b) index triple.
    ///
    /// The stream depends only on the plan seed and the indices, never
    /// on draw order, so concurrent consumers see identical faults.
    fn rng_for(&self, salt: u64, a: u64, b: u64) -> Xoshiro256 {
        // SplitMix64-style avalanche over the packed indices; the seeded
        // constructor expands the result into the full state.
        let mut z = self
            .seed
            .wrapping_add(salt)
            .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Xoshiro256::seed_from_u64(z ^ (z >> 31))
    }

    fn draw_permille(&self, salt: u64, a: u64, b: u64, permille: u16) -> bool {
        permille > 0 && self.rng_for(salt, a, b).next_below(1000) < u64::from(permille)
    }

    /// Does `(subframe, user)`'s first transmission arrive in a noise
    /// burst?
    pub fn noise_burst(&self, subframe: usize, user: usize) -> bool {
        self.draw_permille(
            SALT_NOISE,
            subframe as u64,
            user as u64,
            self.noise_burst_permille,
        )
    }

    /// Is `(subframe, user)`'s resource grid corrupted?
    pub fn grid_corruption(&self, subframe: usize, user: usize) -> bool {
        self.draw_permille(
            SALT_GRID,
            subframe as u64,
            user as u64,
            self.grid_corruption_permille,
        )
    }

    /// An RNG for drawing the corrupted cell positions/values of one
    /// `(subframe, user)` corruption event.
    pub fn corruption_rng(&self, subframe: usize, user: usize) -> Xoshiro256 {
        self.rng_for(SALT_GRID ^ 1, subframe as u64, user as u64)
    }

    /// Does task `task` of subframe `subframe` panic?
    pub fn task_panics(&self, subframe: usize, task: usize) -> bool {
        self.draw_permille(
            SALT_PANIC,
            subframe as u64,
            task as u64,
            self.task_panic_permille,
        )
    }

    /// The worker to kill at `subframe`, if the plan schedules one
    /// there: `worker_kills` kills are spread evenly over `campaign_len`
    /// subframes, targeting workers round-robin.
    pub fn worker_kill_at(
        &self,
        subframe: usize,
        campaign_len: usize,
        n_workers: usize,
    ) -> Option<usize> {
        if self.worker_kills == 0 || n_workers == 0 || campaign_len == 0 {
            return None;
        }
        let stride = campaign_len.div_ceil(self.worker_kills);
        if subframe % stride == stride / 2 && subframe / stride < self.worker_kills {
            Some((subframe / stride) % n_workers)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn policy_names_parse_back() {
        for p in OverloadPolicy::ALL {
            assert_eq!(OverloadPolicy::from_str(p.name()), Ok(p));
        }
        assert_eq!(
            OverloadPolicy::from_str("shed"),
            Ok(OverloadPolicy::ShedUsers)
        );
        assert!(OverloadPolicy::from_str("panic-harder").is_err());
    }

    #[test]
    fn quiet_plan_never_faults() {
        let plan = FaultPlan::quiet(7);
        for s in 0..50 {
            for u in 0..10 {
                assert!(!plan.noise_burst(s, u));
                assert!(!plan.grid_corruption(s, u));
                assert!(!plan.task_panics(s, u));
            }
            assert_eq!(plan.worker_kill_at(s, 50, 4), None);
        }
    }

    #[test]
    fn draws_are_order_independent_and_seeded() {
        let plan = FaultPlan::smoke(42);
        // Same plan, any call order: identical outcomes.
        let forward: Vec<bool> = (0..200).map(|s| plan.noise_burst(s, 0)).collect();
        let backward: Vec<bool> = (0..200).rev().map(|s| plan.noise_burst(s, 0)).collect();
        let reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
        // A different seed gives a different fault stream.
        let other = FaultPlan::smoke(43);
        let alt: Vec<bool> = (0..200).map(|s| other.noise_burst(s, 0)).collect();
        assert_ne!(forward, alt);
        // And the smoke rates actually fire.
        assert!(forward.iter().any(|&b| b));
        assert!(forward.iter().any(|&b| !b));
    }

    #[test]
    fn fault_classes_draw_independent_streams() {
        let plan = FaultPlan {
            noise_burst_permille: 500,
            grid_corruption_permille: 500,
            task_panic_permille: 500,
            ..FaultPlan::quiet(9)
        };
        let noise: Vec<bool> = (0..300).map(|s| plan.noise_burst(s, 1)).collect();
        let grid: Vec<bool> = (0..300).map(|s| plan.grid_corruption(s, 1)).collect();
        assert_ne!(noise, grid, "salts must decorrelate the streams");
    }

    #[test]
    fn worker_kills_are_spread_and_bounded() {
        let plan = FaultPlan {
            worker_kills: 3,
            ..FaultPlan::quiet(1)
        };
        let kills: Vec<(usize, usize)> = (0..90)
            .filter_map(|s| plan.worker_kill_at(s, 90, 4).map(|w| (s, w)))
            .collect();
        assert_eq!(kills.len(), 3, "{kills:?}");
        let workers: Vec<usize> = kills.iter().map(|&(_, w)| w).collect();
        assert_eq!(workers, vec![0, 1, 2], "round-robin targets");
    }

    #[test]
    fn corruption_rng_is_reproducible() {
        let plan = FaultPlan::smoke(5);
        let a: Vec<u64> = {
            let mut r = plan.corruption_rng(3, 2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = plan.corruption_rng(3, 2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
