//! Admission control for the streaming ingest path.
//!
//! Where [`crate::DeadlineBudget`] decides what happens to a subframe
//! that is *already dispatched* and running late, this module decides
//! what happens *at the front door* while the ingest queue is filling:
//!
//! * [`TokenBucket`] — per-source rate limiting: a source that offers
//!   work faster than its contracted rate is refused before its traffic
//!   can crowd out well-behaved sources.
//! * [`EscalationLadder`] — maps queue occupancy to an
//!   [`EscalationDecision`]: as the backlog deepens past each watermark
//!   the service escalates **reject → shed → degrade**, reusing the
//!   [`crate::OverloadPolicy`] vocabulary but compounding the tiers
//!   instead of picking one.
//! * [`IngestFaults`] — seeded ingest-side chaos: source stalls, burst
//!   floods and malformed arrivals, order-independent like
//!   [`crate::FaultPlan`] so two same-seed campaigns see byte-identical
//!   arrival streams.
//!
//! Everything is integer/pure so the serve loop's admission decisions
//! are a function of `(seed, tick, queue depth)` alone — independent of
//! worker count and wall clock, which is what keeps the streaming path
//! byte-identical to the batch path for every admitted subframe.

use lte_dsp::Xoshiro256;

/// Escalation tiers in engagement order. Comparison order is the
/// severity order: `Reject < Shed < Degrade`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EscalationTier {
    /// Refuse new arrivals (cheapest: work not yet invested).
    Reject,
    /// Shed the cheapest users from admitted subframes.
    Shed,
    /// Degrade demapping (exact → max-log) on admitted subframes.
    Degrade,
}

impl EscalationTier {
    /// Every tier, in engagement order.
    pub const ALL: [EscalationTier; 3] = [
        EscalationTier::Reject,
        EscalationTier::Shed,
        EscalationTier::Degrade,
    ];

    /// Stable snake_case name used in exports and metrics.
    pub fn name(self) -> &'static str {
        match self {
            EscalationTier::Reject => "reject",
            EscalationTier::Shed => "shed",
            EscalationTier::Degrade => "degrade",
        }
    }
}

impl std::fmt::Display for EscalationTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which mitigation tiers are engaged at one instant. Tiers compound:
/// at the deepest fill all three are active at once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EscalationDecision {
    /// Refuse new arrivals at the front door.
    pub reject_new: bool,
    /// Shed cheapest users from subframes being dispatched.
    pub shed_users: bool,
    /// Degrade demapping on subframes being dispatched.
    pub degrade_demap: bool,
}

impl EscalationDecision {
    /// The most severe engaged tier, if any.
    pub fn severest(self) -> Option<EscalationTier> {
        if self.degrade_demap {
            Some(EscalationTier::Degrade)
        } else if self.shed_users {
            Some(EscalationTier::Shed)
        } else if self.reject_new {
            Some(EscalationTier::Reject)
        } else {
            None
        }
    }

    /// `true` when no mitigation is engaged.
    pub fn calm(self) -> bool {
        !(self.reject_new || self.shed_users || self.degrade_demap)
    }
}

/// Occupancy watermarks (fractions of queue capacity) at which each
/// mitigation tier engages. Construction enforces
/// `reject_fill <= shed_fill <= degrade_fill`, which is what guarantees
/// the reject → shed → degrade engagement *order* under a monotonically
/// deepening flood.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EscalationLadder {
    reject_fill: f64,
    shed_fill: f64,
    degrade_fill: f64,
}

impl Default for EscalationLadder {
    fn default() -> Self {
        // Reject early (the cheapest mitigation), shed when the backlog
        // keeps growing anyway, degrade only near saturation.
        EscalationLadder::new(0.70, 0.85, 0.95).unwrap()
    }
}

impl EscalationLadder {
    /// A ladder with the given watermarks.
    ///
    /// # Errors
    ///
    /// When a watermark is outside `(0, 1]` or the ordering invariant
    /// `reject <= shed <= degrade` does not hold.
    pub fn new(reject_fill: f64, shed_fill: f64, degrade_fill: f64) -> Result<Self, String> {
        for (name, v) in [
            ("reject", reject_fill),
            ("shed", shed_fill),
            ("degrade", degrade_fill),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(format!("{name} watermark {v} outside (0, 1]"));
            }
        }
        if !(reject_fill <= shed_fill && shed_fill <= degrade_fill) {
            return Err(format!(
                "watermarks must be ordered reject <= shed <= degrade \
                 (got {reject_fill} / {shed_fill} / {degrade_fill})"
            ));
        }
        Ok(EscalationLadder {
            reject_fill,
            shed_fill,
            degrade_fill,
        })
    }

    /// The fill at which new arrivals are rejected.
    pub fn reject_fill(&self) -> f64 {
        self.reject_fill
    }

    /// The fill at which user shedding starts.
    pub fn shed_fill(&self) -> f64 {
        self.shed_fill
    }

    /// The fill at which demap degradation starts.
    pub fn degrade_fill(&self) -> f64 {
        self.degrade_fill
    }

    /// The tiers engaged at queue occupancy `fill` (`[0, 1]`).
    pub fn decide(&self, fill: f64) -> EscalationDecision {
        EscalationDecision {
            reject_new: fill >= self.reject_fill,
            shed_users: fill >= self.shed_fill,
            degrade_demap: fill >= self.degrade_fill,
        }
    }
}

/// The ladder tracked over time: an overload-*episode* state machine
/// with hysteresis on top of the instantaneous fill watermarks.
///
/// This is the piece that makes reject → shed → degrade an actual
/// *sequence* under a steady flood. Once the reject tier engages, new
/// arrivals bounce off the front door, so the fill immediately drops
/// back below the reject watermark — it can never climb to the shed
/// watermark on its own, and a naive per-tick decision would flap
/// between calm and reject forever. Instead, crossing the reject
/// watermark opens an overload episode that only closes when the
/// backlog has actually drained (fill ≤ `release_fill`). While the
/// episode is open the reject tier stays engaged, and if rejection
/// alone has not drained the backlog after `shed_after` ticks the
/// service starts shedding users; after `degrade_after` more it
/// degrades demapping too. A deep instantaneous spike still engages
/// the deeper tiers immediately through the fill watermarks.
#[derive(Clone, Debug, PartialEq)]
pub struct EscalationState {
    ladder: EscalationLadder,
    release_fill: f64,
    shed_after: u64,
    degrade_after: u64,
    pressured_ticks: u64,
    episodes: u64,
}

impl EscalationState {
    /// Default fill at which an overload episode ends: essentially
    /// empty, so one episode sees the whole drain.
    pub const DEFAULT_RELEASE_FILL: f64 = 0.05;
    /// Episode ticks before shedding engages.
    pub const DEFAULT_SHED_AFTER: u64 = 4;
    /// Further episode ticks before demap degradation engages.
    pub const DEFAULT_DEGRADE_AFTER: u64 = 4;

    /// Tracks `ladder` with the default hysteresis and delays.
    pub fn new(ladder: EscalationLadder) -> Self {
        Self::with_delays(
            ladder,
            Self::DEFAULT_SHED_AFTER,
            Self::DEFAULT_DEGRADE_AFTER,
        )
    }

    /// Tracks `ladder`, escalating to shed after `shed_after` episode
    /// ticks and to degrade after `degrade_after` more.
    pub fn with_delays(ladder: EscalationLadder, shed_after: u64, degrade_after: u64) -> Self {
        EscalationState {
            ladder,
            release_fill: Self::DEFAULT_RELEASE_FILL.min(ladder.reject_fill()),
            shed_after,
            degrade_after,
            pressured_ticks: 0,
            episodes: 0,
        }
    }

    /// The underlying fill ladder.
    pub fn ladder(&self) -> &EscalationLadder {
        &self.ladder
    }

    /// Ticks the current overload episode has lasted (0 = calm).
    pub fn pressured_ticks(&self) -> u64 {
        self.pressured_ticks
    }

    /// Overload episodes opened so far (including any still open).
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// `true` while an overload episode is open.
    pub fn in_episode(&self) -> bool {
        self.pressured_ticks > 0
    }

    /// Observes one tick's queue occupancy and returns the engaged
    /// tiers. Call exactly once per tick.
    pub fn observe(&mut self, fill: f64) -> EscalationDecision {
        let base = self.ladder.decide(fill);
        if self.pressured_ticks == 0 && base.reject_new {
            self.episodes += 1;
            self.pressured_ticks = 1;
        } else if self.pressured_ticks > 0 {
            if fill <= self.release_fill {
                self.pressured_ticks = 0;
            } else {
                self.pressured_ticks += 1;
            }
        }
        EscalationDecision {
            reject_new: base.reject_new || self.pressured_ticks > 0,
            shed_users: base.shed_users || self.pressured_ticks > self.shed_after,
            degrade_demap: base.degrade_demap
                || self.pressured_ticks > self.shed_after + self.degrade_after,
        }
    }
}

/// An integer token bucket for per-source rate limiting.
///
/// Tokens are tracked in *milli-tokens* so fractional refill rates
/// (e.g. 1.5 subframes per tick) stay exact integers: no float drift,
/// identical decisions on every host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenBucket {
    capacity_milli: u64,
    refill_milli: u64,
    level_milli: u64,
    taken: u64,
    refused: u64,
}

impl TokenBucket {
    /// A bucket holding at most `capacity_milli` milli-tokens, refilled
    /// by `refill_milli` per [`tick`](TokenBucket::tick). Starts full.
    /// One admission costs 1000 milli-tokens.
    pub fn new(capacity_milli: u64, refill_milli: u64) -> Self {
        let capacity_milli = capacity_milli.max(1000);
        TokenBucket {
            capacity_milli,
            refill_milli,
            level_milli: capacity_milli,
            taken: 0,
            refused: 0,
        }
    }

    /// Convenience: a bucket allowing a sustained `rate_milli`/1000
    /// admissions per tick with a burst allowance of `burst` admissions.
    pub fn per_tick(rate_milli: u64, burst: u64) -> Self {
        TokenBucket::new(burst.max(1) * 1000, rate_milli)
    }

    /// Advances one tick, refilling the bucket (saturating at capacity).
    pub fn tick(&mut self) {
        self.level_milli = (self.level_milli + self.refill_milli).min(self.capacity_milli);
    }

    /// Tries to take one admission's worth of tokens.
    pub fn try_take(&mut self) -> bool {
        if self.level_milli >= 1000 {
            self.level_milli -= 1000;
            self.taken += 1;
            true
        } else {
            self.refused += 1;
            false
        }
    }

    /// Current level in milli-tokens.
    pub fn level_milli(&self) -> u64 {
        self.level_milli
    }

    /// Admissions granted so far.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Admissions refused so far.
    pub fn refused(&self) -> u64 {
        self.refused
    }
}

/// Ingest-side chaos salts (see [`crate::FaultPlan`] for the pattern).
const SALT_MALFORMED: u64 = 0x6D61_6C66_6F72_6D31; // "malform1"

/// Seeded ingest-side fault injection: what arrives *at* the service,
/// rather than what breaks *inside* it. Draws are order-independent
/// pure functions of `(seed, tick, index)`.
#[derive(Clone, Debug, PartialEq)]
pub struct IngestFaults {
    /// Master seed; per-arrival draws hash this with the indices.
    pub seed: u64,
    /// A window of ticks in which the source goes silent entirely:
    /// `(first_tick, n_ticks)`.
    pub stall: Option<(u64, u64)>,
    /// A window of ticks in which the source floods at a multiple of
    /// its normal rate: `(first_tick, n_ticks, factor)`.
    pub flood: Option<(u64, u64, u64)>,
    /// Per-arrival probability (‰) that the arrival is malformed and
    /// must be refused at parse time.
    pub malformed_permille: u16,
}

impl IngestFaults {
    /// No ingest faults at all.
    pub fn quiet(seed: u64) -> Self {
        IngestFaults {
            seed,
            stall: None,
            flood: None,
            malformed_permille: 0,
        }
    }

    /// The default serve chaos campaign: an early stall, a mid-run 2×
    /// flood long enough to walk the whole escalation ladder, and a
    /// trickle of malformed arrivals.
    pub fn smoke(seed: u64) -> Self {
        IngestFaults {
            seed,
            stall: Some((20, 10)),
            flood: Some((60, 40, 2)),
            malformed_permille: 20,
        }
    }

    /// Is the source stalled (producing nothing) at `tick`?
    pub fn stalled(&self, tick: u64) -> bool {
        matches!(self.stall, Some((from, n)) if tick >= from && tick < from + n)
    }

    /// The arrival-rate multiplier at `tick` (1 = nominal).
    pub fn flood_factor(&self, tick: u64) -> u64 {
        match self.flood {
            Some((from, n, factor)) if tick >= from && tick < from + n => factor.max(1),
            _ => 1,
        }
    }

    /// Is arrival `index` of `tick` malformed?
    pub fn malformed(&self, tick: u64, index: u64) -> bool {
        if self.malformed_permille == 0 {
            return false;
        }
        // SplitMix64-style avalanche, same shape as FaultPlan::rng_for:
        // the outcome depends only on (seed, tick, index).
        let mut z = self
            .seed
            .wrapping_add(SALT_MALFORMED)
            .wrapping_add(tick.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Xoshiro256::seed_from_u64(z ^ (z >> 31)).next_below(1000)
            < u64::from(self.malformed_permille)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_engages_tiers_in_order_as_fill_deepens() {
        let ladder = EscalationLadder::default();
        assert!(ladder.decide(0.0).calm());
        assert!(ladder.decide(0.5).calm());

        let reject_only = ladder.decide(0.75);
        assert!(reject_only.reject_new && !reject_only.shed_users && !reject_only.degrade_demap);
        assert_eq!(reject_only.severest(), Some(EscalationTier::Reject));

        let reject_shed = ladder.decide(0.90);
        assert!(reject_shed.reject_new && reject_shed.shed_users && !reject_shed.degrade_demap);
        assert_eq!(reject_shed.severest(), Some(EscalationTier::Shed));

        let all = ladder.decide(1.0);
        assert!(all.reject_new && all.shed_users && all.degrade_demap);
        assert_eq!(all.severest(), Some(EscalationTier::Degrade));
    }

    #[test]
    fn ladder_engagement_is_monotone_in_fill() {
        // Property: a deeper fill never disengages a tier — the formal
        // statement behind "reject engages first, then shed, then
        // degrade" for any monotonically growing backlog.
        let ladder = EscalationLadder::new(0.3, 0.6, 0.9).unwrap();
        let mut prev = EscalationDecision::default();
        for step in 0..=100 {
            let d = ladder.decide(f64::from(step) / 100.0);
            assert!(d.reject_new >= prev.reject_new);
            assert!(d.shed_users >= prev.shed_users);
            assert!(d.degrade_demap >= prev.degrade_demap);
            // Compounding invariant: degrade implies shed implies reject.
            assert!(!d.degrade_demap || d.shed_users);
            assert!(!d.shed_users || d.reject_new);
            prev = d;
        }
    }

    #[test]
    fn sustained_pressure_escalates_reject_then_shed_then_degrade() {
        // A plateau exactly at the reject watermark: fill alone would
        // never engage the deeper tiers, persistence must.
        let mut state = EscalationState::with_delays(EscalationLadder::default(), 3, 3);
        let mut first = [None::<u64>; 3];
        for tick in 0..20u64 {
            let d = state.observe(0.72);
            for (slot, engaged) in
                first
                    .iter_mut()
                    .zip([d.reject_new, d.shed_users, d.degrade_demap])
            {
                if engaged && slot.is_none() {
                    *slot = Some(tick);
                }
            }
        }
        let (reject, shed, degrade) = (
            first[0].expect("reject"),
            first[1].expect("shed"),
            first[2].expect("degrade"),
        );
        assert!(
            reject < shed && shed < degrade,
            "escalation order violated: {reject} / {shed} / {degrade}"
        );
    }

    #[test]
    fn episode_persists_until_drained_then_resets() {
        let mut state = EscalationState::with_delays(EscalationLadder::default(), 2, 2);
        state.observe(0.72);
        state.observe(0.72);
        assert!(state.observe(0.72).shed_users, "escalated past shed_after");
        // Fill has dropped below every watermark, but the backlog has
        // not drained: the episode (and rejection) persists.
        assert!(state.observe(0.2).reject_new);
        assert!(state.in_episode());
        // Fully drained: the episode closes and decisions calm down.
        assert!(state.observe(0.0).calm());
        assert_eq!(state.pressured_ticks(), 0);
        assert_eq!(state.episodes(), 1);
        // A new episode starts over at the reject tier.
        let d = state.observe(0.72);
        assert!(d.reject_new && !d.shed_users);
        assert_eq!(state.episodes(), 2);
    }

    #[test]
    fn watermark_equal_fill_engages_the_tier_exactly() {
        // Engagement is `fill >= watermark`: a queue depth that lands
        // exactly on a watermark engages that tier, and the largest
        // representable fill below it does not.
        let ladder = EscalationLadder::new(0.25, 0.5, 0.75).unwrap();
        type Check = (f64, fn(EscalationDecision) -> bool);
        let checks: [Check; 3] = [
            (0.25, |d| d.reject_new),
            (0.5, |d| d.shed_users),
            (0.75, |d| d.degrade_demap),
        ];
        for (watermark, check) in checks {
            assert!(
                check(ladder.decide(watermark)),
                "fill == {watermark} must engage"
            );
            let below = f64::from_bits(watermark.to_bits() - 1);
            assert!(
                !check(ladder.decide(below)),
                "fill just below {watermark} must not engage"
            );
        }
        // A watermark at exactly 1.0 is reachable by a full queue.
        let saturating = EscalationLadder::new(0.5, 0.75, 1.0).unwrap();
        assert!(saturating.decide(1.0).degrade_demap);
        assert!(!saturating.decide(0.999_999).degrade_demap);
    }

    #[test]
    fn episode_releases_at_exactly_the_release_fill() {
        // Release is `fill <= release_fill` (DEFAULT_RELEASE_FILL):
        // landing exactly on it closes the episode; the next
        // representable fill above keeps it open.
        let release = EscalationState::DEFAULT_RELEASE_FILL;
        let just_above = f64::from_bits(release.to_bits() + 1);

        let mut state = EscalationState::new(EscalationLadder::default());
        state.observe(0.72);
        assert!(state.in_episode());
        assert!(!state.observe(just_above).calm(), "above release: open");
        assert!(state.in_episode());
        assert!(state.observe(release).calm(), "at release: closed");
        assert!(!state.in_episode());
        assert_eq!(state.episodes(), 1);
    }

    #[test]
    fn shed_and_degrade_engage_one_tick_after_their_thresholds() {
        // Escalation is `pressured_ticks > shed_after` (and
        // `> shed_after + degrade_after`): pin down the exact ticks so
        // an off-by-one in either comparison fails loudly.
        let (shed_after, degrade_after) = (3, 2);
        let ladder = EscalationLadder::default();
        let mut state = EscalationState::with_delays(ladder, shed_after, degrade_after);
        // Plateau at the reject watermark: fill alone never engages
        // shed or degrade, persistence must.
        let fill = ladder.reject_fill();
        for tick in 1..=(shed_after + degrade_after + 1) {
            let d = state.observe(fill);
            assert_eq!(state.pressured_ticks(), tick);
            assert_eq!(
                d.shed_users,
                tick > shed_after,
                "shed at episode tick {tick}"
            );
            assert_eq!(
                d.degrade_demap,
                tick > shed_after + degrade_after,
                "degrade at episode tick {tick}"
            );
        }
    }

    #[test]
    fn streak_reset_one_tick_before_shed_restarts_the_count() {
        // Drain the episode when pressured_ticks == shed_after — one
        // tick before shedding would engage. On re-pressure the count
        // restarts from 1: shedding again takes shed_after + 1 ticks,
        // with no carry-over from the aborted episode.
        let shed_after = 4;
        let mut state = EscalationState::with_delays(EscalationLadder::default(), shed_after, 2);
        for _ in 0..shed_after {
            assert!(!state.observe(0.72).shed_users);
        }
        assert_eq!(state.pressured_ticks(), shed_after);
        assert!(state.observe(0.0).calm(), "drained one tick before shed");

        for tick in 1..=shed_after {
            let d = state.observe(0.72);
            assert_eq!(state.pressured_ticks(), tick);
            assert!(!d.shed_users, "no carry-over at new-episode tick {tick}");
        }
        assert!(state.observe(0.72).shed_users);
        assert_eq!(state.episodes(), 2);
    }

    #[test]
    fn deep_spike_engages_deeper_tiers_immediately() {
        let mut state = EscalationState::new(EscalationLadder::default());
        let d = state.observe(1.0);
        assert!(d.reject_new && d.shed_users && d.degrade_demap);
    }

    #[test]
    fn ladder_rejects_bad_watermarks() {
        assert!(EscalationLadder::new(0.9, 0.5, 0.95).is_err());
        assert!(EscalationLadder::new(0.0, 0.5, 0.9).is_err());
        assert!(EscalationLadder::new(0.5, 0.6, 1.1).is_err());
        assert!(EscalationLadder::new(0.5, 0.5, 0.5).is_ok());
    }

    #[test]
    fn token_bucket_enforces_sustained_rate_with_burst() {
        // 500 milli-tokens/tick = 1 admission per 2 ticks, burst of 3.
        let mut b = TokenBucket::per_tick(500, 3);
        // Starts full: the burst allowance is immediately spendable.
        assert!(b.try_take() && b.try_take() && b.try_take());
        assert!(!b.try_take(), "burst exhausted");
        // One tick refills half an admission; two refill a whole one.
        b.tick();
        assert!(!b.try_take());
        b.tick();
        assert!(b.try_take());
        assert_eq!(b.taken(), 4);
        assert_eq!(b.refused(), 2);
    }

    #[test]
    fn token_bucket_saturates_at_capacity() {
        let mut b = TokenBucket::per_tick(10_000, 2);
        for _ in 0..100 {
            b.tick();
        }
        assert_eq!(b.level_milli(), 2000);
        assert!(b.try_take() && b.try_take());
        assert!(!b.try_take());
    }

    #[test]
    fn ingest_faults_windows_and_quiet() {
        let f = IngestFaults::smoke(11);
        assert!(!f.stalled(19) && f.stalled(20) && f.stalled(29) && !f.stalled(30));
        assert_eq!(f.flood_factor(59), 1);
        assert_eq!(f.flood_factor(60), 2);
        assert_eq!(f.flood_factor(99), 2);
        assert_eq!(f.flood_factor(100), 1);

        let q = IngestFaults::quiet(11);
        for t in 0..200 {
            assert!(!q.stalled(t));
            assert_eq!(q.flood_factor(t), 1);
            assert!(!q.malformed(t, 0));
        }
    }

    #[test]
    fn malformed_draws_are_seeded_and_order_independent() {
        let f = IngestFaults {
            malformed_permille: 300,
            ..IngestFaults::quiet(5)
        };
        let forward: Vec<bool> = (0..500).map(|t| f.malformed(t, 1)).collect();
        let backward: Vec<bool> = (0..500).rev().map(|t| f.malformed(t, 1)).collect();
        let reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
        assert!(forward.iter().any(|&b| b));
        assert!(forward.iter().any(|&b| !b));
        let other = IngestFaults {
            malformed_permille: 300,
            ..IngestFaults::quiet(6)
        };
        let alt: Vec<bool> = (0..500).map(|t| other.malformed(t, 1)).collect();
        assert_ne!(forward, alt);
    }
}
