//! Shared helpers for the Criterion benchmark harness.
//!
//! Every figure and table of the paper has a dedicated bench target (see
//! `benches/`); each prints the series/rows it reproduces once, then
//! measures the cost of regenerating them at a reduced scale so `cargo
//! bench` stays tractable. The full-scale experiments are run by the
//! `lte-sim` binary.

use lte_uplink::experiments::ExperimentContext;

/// A reduced experiment context sized for benchmarking: 600 subframes
/// (3 simulated seconds) and a coarse calibration sweep.
pub fn bench_context() -> ExperimentContext {
    ExperimentContext {
        n_subframes: 600,
        cal_subframes: 16,
        cal_prb_step: 50,
        ..ExperimentContext::paper()
    }
}

/// An even smaller context for the per-iteration hot loops.
pub fn tiny_context() -> ExperimentContext {
    ExperimentContext {
        n_subframes: 200,
        cal_subframes: 12,
        cal_prb_step: 100,
        ..ExperimentContext::paper()
    }
}

/// Prints a short preview of a series (first/last few points).
pub fn preview(name: &str, series: &[f64]) {
    let head: Vec<String> = series.iter().take(4).map(|v| format!("{v:.3}")).collect();
    let tail: Vec<String> = series
        .iter()
        .rev()
        .take(2)
        .rev()
        .map(|v| format!("{v:.3}"))
        .collect();
    println!(
        "{name}: {} points [{} … {}]",
        series.len(),
        head.join(", "),
        tail.join(", ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_are_reduced() {
        assert!(bench_context().n_subframes < 68_000);
        assert!(tiny_context().n_subframes < bench_context().n_subframes);
    }
}
