//! Micro-benchmarks of the DSP kernels the receiver pipeline is built
//! from: FFTs across LTE sizes, the matched filter, soft demapping,
//! MMSE weights, turbo decoding, and the full serial per-user receive.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lte_dsp::fft::{FftPlan, FftPlanner};
use lte_dsp::llr::demap_block;
use lte_dsp::matched_filter::matched_filter;
use lte_dsp::turbo::{TurboDecoder, TurboEncoder};
use lte_dsp::zadoff_chu::ReferenceSequence;
use lte_dsp::{Complex32, Modulation, Xoshiro256};
use lte_phy::params::{CellConfig, TurboMode, UserConfig};
use lte_phy::receiver::process_user;
use lte_phy::tx::synthesize_user;

fn random_block(n: usize, seed: u64) -> Vec<Complex32> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n)
        .map(|_| Complex32::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5))
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for prbs in [2usize, 10, 50, 100, 200] {
        let n = 12 * prbs;
        let plan = FftPlan::forward(n);
        let data = random_block(n, n as u64);
        let mut scratch = vec![Complex32::ZERO; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut work = data.clone();
                plan.process_with_scratch(&mut work, &mut scratch);
                black_box(work[0])
            })
        });
    }
    group.finish();
}

fn bench_matched_filter(c: &mut Criterion) {
    let n = 1200;
    let reference = ReferenceSequence::new(n, 7);
    let received = random_block(n, 3);
    let mut out = vec![Complex32::ZERO; n];
    c.bench_function("matched_filter_1200", |b| {
        b.iter(|| {
            matched_filter(&received, reference.samples(), &mut out);
            black_box(out[0])
        })
    });
}

fn bench_demap(c: &mut Criterion) {
    let symbols = random_block(1200, 9);
    let mut group = c.benchmark_group("soft_demap_1200");
    for m in Modulation::ALL {
        group.bench_function(m.to_string(), |b| {
            b.iter(|| black_box(demap_block(m, &symbols, 0.1)))
        });
    }
    group.finish();
}

fn bench_turbo(c: &mut Criterion) {
    let k = 1024;
    let mut rng = Xoshiro256::seed_from_u64(5);
    let bits: Vec<u8> = (0..k).map(|_| (rng.next_u64() & 1) as u8).collect();
    let encoder = TurboEncoder::new(k);
    let code = encoder.encode(&bits);
    let llrs = code.to_llrs(4.0);
    c.bench_function("turbo_encode_1024", |b| {
        b.iter(|| black_box(encoder.encode(&bits)))
    });
    let decoder = TurboDecoder::new(k, 5);
    c.bench_function("turbo_decode_1024_5it", |b| {
        b.iter(|| black_box(decoder.decode(&llrs)))
    });
}

fn bench_full_user(c: &mut Criterion) {
    let cell = CellConfig::default();
    let planner = FftPlanner::new();
    let mut group = c.benchmark_group("serial_user_receive");
    group.sample_size(20);
    for (prbs, layers) in [(10usize, 1usize), (50, 2), (100, 4)] {
        let user = UserConfig::new(prbs, layers, Modulation::Qam16);
        let mut rng = Xoshiro256::seed_from_u64(11);
        let input = synthesize_user(&cell, &user, 30.0, &mut rng);
        let _ = &planner;
        group.bench_function(format!("{prbs}prb_{layers}layer"), |b| {
            b.iter(|| black_box(process_user(&cell, &input, TurboMode::Passthrough)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_matched_filter,
    bench_demap,
    bench_turbo,
    bench_full_user
);
criterion_main!(benches);
