//! Micro-benchmarks of the HARQ soft-combining path: the element-wise
//! LLR accumulation kernel across transport-block sizes, and the two
//! demapper fidelities the `DegradeDemap` overload policy switches
//! between (exact log-sum-exp vs. max-log).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lte_dsp::llr::{combine_llrs, demap_block, demap_block_exact};
use lte_dsp::{Complex32, Modulation, Xoshiro256};

fn random_llrs(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n).map(|_| 4.0 * (rng.next_f32() - 0.5)).collect()
}

fn random_symbols(n: usize, seed: u64) -> Vec<Complex32> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..n)
        .map(|_| Complex32::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5))
        .collect()
}

fn bench_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("harq_combine_llrs");
    // QPSK payload bits for 2, 20 and 100 PRBs over one subframe.
    for prbs in [2usize, 20, 100] {
        let n = 12 * prbs * 12 * 2;
        let acc = random_llrs(n, 1);
        let update = random_llrs(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut work = acc.clone();
                combine_llrs(&mut work, &update);
                black_box(work[0])
            })
        });
    }
    group.finish();
}

fn bench_demap_fidelity(c: &mut Criterion) {
    let mut group = c.benchmark_group("harq_demap_fidelity");
    let symbols = random_symbols(1200, 3);
    for modulation in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64] {
        group.bench_with_input(
            BenchmarkId::new("max_log", format!("{modulation:?}")),
            &modulation,
            |b, &m| b.iter(|| black_box(demap_block(m, &symbols, 0.1))),
        );
        group.bench_with_input(
            BenchmarkId::new("exact", format!("{modulation:?}")),
            &modulation,
            |b, &m| b.iter(|| black_box(demap_block_exact(m, &symbols, 0.1))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_combine, bench_demap_fidelity);
criterion_main!(benches);
