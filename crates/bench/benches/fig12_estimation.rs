//! Fig. 12 — estimated vs measured activity over the evaluation run:
//! prints the error statistics and measures the validation pass.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

fn fig12(c: &mut Criterion) {
    let ctx = lte_bench::bench_context();
    let (_, estimator) = ctx.run_calibration();
    let subframes = ctx.subframes();
    let v = ctx.run_estimation_validation(&estimator, &subframes);
    lte_bench::preview("fig12 estimated", &v.estimated);
    lte_bench::preview("fig12 measured", &v.measured);
    println!(
        "mean |err| {:.2}% (paper 1.2%), max |err| {:.2}% (paper 5.4%)",
        100.0 * v.mean_abs_err,
        100.0 * v.max_abs_err
    );

    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    let tiny = lte_bench::tiny_context();
    let (_, est) = tiny.run_calibration();
    let sf = tiny.subframes();
    group.bench_function("estimation_validation", |b| {
        b.iter(|| black_box(tiny.run_estimation_validation(&est, &sf).mean_abs_err))
    });
    group.finish();
}

criterion_group!(benches, fig12);
criterion_main!(benches);
