//! Table I — average dynamic power dissipation (base power subtracted)
//! for the four techniques.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lte_uplink::report;

fn table1(c: &mut Criterion) {
    let ctx = lte_bench::bench_context();
    let study = ctx.run_power_study();
    println!("{}", report::table1_markdown(&study.table1()));

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    let tiny = lte_bench::tiny_context();
    group.bench_function("dynamic_power_table", |b| {
        b.iter(|| black_box(tiny.run_power_study().table1()))
    });
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
