//! Fig. 11 — activity vs PRBs for all twelve (layers, modulation)
//! configurations: prints the fitted slopes and measures one steady-state
//! calibration sweep.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lte_dsp::Modulation;

fn fig11(c: &mut Criterion) {
    let ctx = lte_bench::bench_context();
    let (curves, estimator) = ctx.run_calibration();
    println!("fitted k_LM slopes ×10⁻³ (activity per PRB):");
    for layers in 1..=4 {
        let row: Vec<String> = Modulation::ALL
            .iter()
            .map(|&m| format!("{:6.3}", 1e3 * estimator.k(layers, m)))
            .collect();
        println!("  {layers} layer(s): {}", row.join(" "));
    }
    let top = curves
        .iter()
        .find(|cv| cv.layers == 4 && cv.modulation == Modulation::Qam64)
        .unwrap();
    let series: Vec<f64> = top.points.iter().map(|p| p.activity).collect();
    lte_bench::preview("fig11 64QAM/4L activity", &series);

    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    let tiny = lte_bench::tiny_context();
    group.bench_function("calibration_sweep", |b| {
        b.iter(|| black_box(tiny.run_calibration().1))
    });
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
