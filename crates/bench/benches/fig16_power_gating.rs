//! Fig. 16 — estimated power with power gating applied on top of
//! NAP+IDLE (Eqs. 6–9).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lte_power::NapPolicy;
use lte_power::PowerGating;

fn fig16(c: &mut Criterion) {
    let ctx = lte_bench::bench_context();
    let study = ctx.run_power_study();
    lte_bench::preview("fig16 NAP+IDLE RMS", &study.run(NapPolicy::NapIdle).rms);
    lte_bench::preview("fig16 PowerGating RMS", &study.gated_rms);
    println!(
        "means: NAP+IDLE {:.2} W → gated {:.2} W (paper: 19.9 → 18.5, −7%)",
        study.run(NapPolicy::NapIdle).mean_total,
        study.gated_mean
    );

    let mut group = c.benchmark_group("fig16");
    let gating = PowerGating::paper();
    let targets: Vec<usize> = study.targets.clone();
    let power: Vec<f64> = study.run(NapPolicy::NapIdle).power.clone();
    group.bench_function("gating_model_apply", |b| {
        b.iter(|| black_box(gating.apply(&power, &targets)))
    });
    group.finish();
}

criterion_group!(benches, fig16);
criterion_main!(benches);
