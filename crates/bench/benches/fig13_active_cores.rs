//! Fig. 13 — estimated number of active cores per subframe (Eq. 5).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

fn fig13(c: &mut Criterion) {
    let ctx = lte_bench::bench_context();
    let (_, estimator) = ctx.run_calibration();
    let subframes = ctx.subframes();
    let targets = ctx.estimated_targets(&estimator, &subframes);
    let series: Vec<f64> = targets.iter().step_by(25).map(|&t| t as f64).collect();
    lte_bench::preview("fig13 active cores (every 25th)", &series);
    println!(
        "targets span {}..{} of 62 (paper: rapid changes across the full range)",
        targets.iter().min().unwrap(),
        targets.iter().max().unwrap()
    );

    let mut group = c.benchmark_group("fig13");
    group.sample_size(20);
    group.bench_function("eq5_targets", |b| {
        b.iter(|| black_box(ctx.estimated_targets(&estimator, &subframes)))
    });
    group.finish();
}

criterion_group!(benches, fig13);
criterion_main!(benches);
