//! Ablation benches for the design choices DESIGN.md calls out: the
//! Eq. 5 over-provisioning margin, the power-gating group size, the nap
//! wake period, and the DVFS extension. Each prints its sweep once and
//! measures one representative configuration.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lte_power::DvfsPolicy;
use lte_uplink::ablation;

fn ablation_benches(c: &mut Criterion) {
    let ctx = lte_bench::bench_context();

    println!("margin ablation (Eq. 5 '+2'):");
    for row in ablation::margin_ablation(&ctx, &[0, 2, 8]) {
        println!(
            "  margin {:2}: {:.2} W, p95 {:.1} ms",
            row.margin, row.mean_watts, row.p95_latency_ms
        );
    }
    let study = ctx.run_power_study();
    println!("gating group-size ablation (Eq. 6 'groups of 8'):");
    for row in ablation::gating_group_ablation(&study, &[4, 8, 16]) {
        println!(
            "  group {:2}: saves {:.2} W",
            row.group_size, row.mean_saving
        );
    }
    println!("wake-period ablation:");
    for row in ablation::wake_period_ablation(&ctx, &[0.5, 2.0]) {
        println!(
            "  {:.1} ms: IDLE {:.2} W, NAP {:.2} W",
            row.period_ms, row.idle_watts, row.nap_watts
        );
    }
    let dvfs = ablation::dvfs_study(&ctx, &study, &DvfsPolicy::default_ladder());
    println!(
        "DVFS: {:.2} W -> {:.2} W",
        dvfs.baseline_watts, dvfs.dvfs_watts
    );

    let tiny = lte_bench::tiny_context();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("margin_sweep_3pt", |b| {
        b.iter(|| black_box(ablation::margin_ablation(&tiny, &[0, 2, 8])))
    });
    let tiny_study = tiny.run_power_study();
    group.bench_function("gating_group_sweep", |b| {
        b.iter(|| black_box(ablation::gating_group_ablation(&tiny_study, &[4, 8, 16])))
    });
    group.bench_function("dvfs_apply", |b| {
        b.iter(|| {
            black_box(ablation::dvfs_study(
                &tiny,
                &tiny_study,
                &DvfsPolicy::default_ladder(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, ablation_benches);
criterion_main!(benches);
