//! Fig. 8 — total/max/min PRBs per subframe: prints the series and
//! measures the trace statistics pass.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lte_model::trace::Trace;
use lte_model::{ParameterModel, RampModel, EVALUATION_SUBFRAMES};

fn fig08(c: &mut Criterion) {
    let configs = RampModel::new(2012).subframes(EVALUATION_SUBFRAMES);
    let trace = Trace::from_configs(&configs);
    let total: Vec<f64> = trace
        .every(25)
        .iter()
        .map(|r| r.total_prbs as f64)
        .collect();
    let maxes: Vec<f64> = trace.every(25).iter().map(|r| r.max_prbs as f64).collect();
    lte_bench::preview("fig8 total PRBs", &total);
    lte_bench::preview("fig8 max-per-user PRBs", &maxes);
    println!(
        "max single-user allocation over run: {} (paper: 20..190 band)",
        trace.rows().iter().map(|r| r.max_prbs).max().unwrap()
    );

    let mut group = c.benchmark_group("fig08");
    group.sample_size(10);
    group.bench_function("trace_stats_68k", |b| {
        b.iter(|| black_box(Trace::from_configs(&configs).mean_total_prbs()))
    });
    group.finish();
}

criterion_group!(benches, fig08);
criterion_main!(benches);
