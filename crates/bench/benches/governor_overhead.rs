//! Governance overhead guard: a per-subframe decision must stay far
//! below the subframe budget.
//!
//! The governor runs once per dispatched subframe — every millisecond
//! on a real base station — so `PolicyGovernor::decide` plus the
//! simulator-side boundary bookkeeping must cost microseconds, not
//! milliseconds. The bench prints the one-shot mean decision cost and
//! asserts a generous ceiling so a quadratic audit trail or an
//! accidental allocation storm fails loudly instead of shipping.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use lte_dsp::Modulation;
use lte_power::{
    CoreController, Governor, NapPolicy, PolicyGovernor, SubframeObservation, UserLoad,
    WorkloadEstimator,
};

/// A ten-user subframe — the busy end of the paper's load range.
fn users() -> Vec<UserLoad> {
    (0..10)
        .map(|i| UserLoad {
            prbs: 4 + 2 * i,
            layers: 1 + i % 4,
            modulation: Modulation::ALL[i % 3],
        })
        .collect()
}

fn governor() -> PolicyGovernor {
    PolicyGovernor::new(
        NapPolicy::NapIdle,
        WorkloadEstimator::from_slopes([[0.004; 3]; 4]),
        CoreController::paper(),
    )
}

fn governor_overhead(c: &mut Criterion) {
    let users = users();

    // One-shot gate: mean cost of a decision over a long governed run,
    // audit trail included. 50 µs is ~100× the measured cost on a
    // laptop-class core and still 20× below a 1 ms subframe budget.
    let reps = 20_000usize;
    let mut gov = governor();
    let start = Instant::now();
    for subframe in 0..reps {
        black_box(gov.decide(&SubframeObservation {
            subframe,
            users: &users,
            measured_activity: Some(0.3),
        }));
    }
    let per_decision = start.elapsed() / reps as u32;
    println!(
        "governor_overhead: {per_decision:?} per decision over {reps} subframes \
         (gate: < 50 µs)"
    );
    assert!(
        per_decision.as_micros() < 50,
        "a per-subframe governance decision must stay in the microsecond range, \
         got {per_decision:?}"
    );

    let mut group = c.benchmark_group("governor_overhead");
    group.bench_function("decide_10_users", |b| {
        let mut gov = governor();
        let mut subframe = 0usize;
        b.iter(|| {
            subframe += 1;
            black_box(gov.decide(&SubframeObservation {
                subframe,
                users: &users,
                measured_activity: Some(0.3),
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, governor_overhead);
criterion_main!(benches);
