//! Fig. 9 — max/min layers per subframe along the probability ramp.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lte_model::trace::Trace;
use lte_model::{current_probability, ParameterModel, RampModel, EVALUATION_SUBFRAMES};

fn fig09(c: &mut Criterion) {
    let trace = Trace::from_configs(&RampModel::new(2012).subframes(EVALUATION_SUBFRAMES));
    let max_layers: Vec<f64> = trace
        .every(25)
        .iter()
        .map(|r| r.max_layers as f64)
        .collect();
    lte_bench::preview("fig9 max layers", &max_layers);
    println!(
        "probability ramp: {:.1}% → {:.1}% → {:.1}% (paper: 0.6% → 100% → 0.6%)",
        100.0 * current_probability(0),
        100.0 * current_probability(34_000),
        100.0 * current_probability(67_999),
    );

    let mut group = c.benchmark_group("fig09");
    group.sample_size(10);
    group.bench_function("layer_trace_68k", |b| {
        b.iter(|| {
            let t = Trace::from_configs(&RampModel::new(2012).subframes(EVALUATION_SUBFRAMES));
            black_box(t.rows().iter().map(|r| r.max_layers).max())
        })
    });
    group.finish();
}

criterion_group!(benches, fig09);
criterion_main!(benches);
