//! Fig. 7 — number of users for every 25th subframe: prints the series
//! and measures regenerating the 68 000-subframe parameter trace.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lte_model::trace::Trace;
use lte_model::{ParameterModel, RampModel, EVALUATION_SUBFRAMES};

fn fig07(c: &mut Criterion) {
    // Print the paper's series once (every 25th subframe).
    let trace = Trace::from_configs(&RampModel::new(2012).subframes(EVALUATION_SUBFRAMES));
    let users: Vec<f64> = trace.every(25).iter().map(|r| r.users as f64).collect();
    lte_bench::preview("fig7 users/subframe", &users);
    println!(
        "mean users: {:.2} (paper: varies 1..10, Fig. 7)",
        trace.mean_users()
    );

    let mut group = c.benchmark_group("fig07");
    group.sample_size(10);
    group.bench_function("generate_68k_subframes", |b| {
        b.iter(|| {
            let t = Trace::from_configs(&RampModel::new(2012).subframes(EVALUATION_SUBFRAMES));
            black_box(t.mean_users())
        })
    });
    group.finish();
}

criterion_group!(benches, fig07);
criterion_main!(benches);
