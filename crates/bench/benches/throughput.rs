//! End-to-end receive throughput: the pooled zero-allocation path against
//! the allocating reference path, across the steady-state user mix the
//! `lte-sim perf` harness uses. The pooled/allocating split isolates how
//! much of the per-subframe budget heap traffic was costing.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lte_dsp::fft::FftPlanner;
use lte_dsp::interleave::prewarm_subblock;
use lte_dsp::{Modulation, Xoshiro256};
use lte_phy::params::{CellConfig, TurboMode, UserConfig};
use lte_phy::receiver::{process_user_pooled, process_user_with_planner, UserScratch};
use lte_phy::tx::{prewarm_references, synthesize_user};

/// The same 100-PRB user mix `lte-sim perf` replays each subframe.
const STEADY_STATE_USERS: [(usize, usize, Modulation); 4] = [
    (25, 2, Modulation::Qam16),
    (10, 1, Modulation::Qpsk),
    (50, 2, Modulation::Qam64),
    (15, 4, Modulation::Qam16),
];

fn bench_user_receive(c: &mut Criterion) {
    let cell = CellConfig::default();
    let planner = FftPlanner::new();
    let mut group = c.benchmark_group("user_receive");
    for (prbs, layers, modulation) in STEADY_STATE_USERS {
        let user = UserConfig::new(prbs, layers, modulation);
        let mut rng = Xoshiro256::seed_from_u64(42);
        let input = synthesize_user(&cell, &user, 35.0, &mut rng);
        planner.prewarm([user.prbs]);
        prewarm_subblock([user.bits_per_subframe()]);
        prewarm_references(&cell, &user);
        let label = format!("{prbs}prb_{layers}l_{modulation}");
        group.bench_with_input(BenchmarkId::new("allocating", &label), &label, |b, _| {
            b.iter(|| {
                black_box(process_user_with_planner(
                    &cell,
                    &input,
                    TurboMode::Passthrough,
                    &planner,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("pooled", &label), &label, |b, _| {
            b.iter(|| {
                let result = process_user_pooled(&cell, &input, TurboMode::Passthrough, &planner);
                let crc_ok = result.crc_ok;
                UserScratch::with(|s| s.arena.recycle_u8(result.payload));
                black_box(crc_ok)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_user_receive);
criterion_main!(benches);
