//! Task-granularity scaling: one subframe of the steady-state 100-PRB
//! user mix dispatched to the work-stealing pool two ways —
//!
//! * **per_user** — one task per user, the pre-PR4 decomposition: four
//!   coarse tasks, so at most four workers can help regardless of how
//!   wide the pool is;
//! * **per_antenna_layer** — the fine-grained task graph
//!   ([`lte_uplink::benchmark::spawn_user_graph`]): channel estimation
//!   per antenna×layer, combining per symbol×layer and a decode join,
//!   dozens of stealable tasks per user.
//!
//! On a single-core host the two mainly differ by graph overhead, which
//! is exactly what this bench keeps honest; with real parallelism the
//! fine decomposition is what lets the pool fill.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lte_dsp::fft::FftPlanner;
use lte_dsp::{Modulation, Xoshiro256};
use lte_phy::grid::UserInput;
use lte_phy::params::{CellConfig, TurboMode, UserConfig};
use lte_phy::receiver::{process_user_pooled, UserScratch};
use lte_sched::TaskPool;
use lte_uplink::benchmark::spawn_user_graph;

/// The same 100-PRB user mix `lte-sim perf` replays each subframe.
const STEADY_STATE_USERS: [(usize, usize, Modulation); 4] = [
    (25, 2, Modulation::Qam16),
    (10, 1, Modulation::Qpsk),
    (50, 2, Modulation::Qam64),
    (15, 4, Modulation::Qam16),
];

fn bench_task_granularity(c: &mut Criterion) {
    let cell = CellConfig::default();
    let planner = Arc::new(FftPlanner::new());
    let mut rng = Xoshiro256::seed_from_u64(42);
    let inputs: Vec<Arc<UserInput>> = STEADY_STATE_USERS
        .iter()
        .map(|&(prbs, layers, modulation)| {
            let user = UserConfig::new(prbs, layers, modulation);
            Arc::new(lte_phy::tx::synthesize_user(&cell, &user, 35.0, &mut rng))
        })
        .collect();

    let workers = lte_sched::host_parallelism();
    let pool = TaskPool::new(workers).expect("spawn bench pool");
    let handle = pool.handle();

    let mut group = c.benchmark_group("task_granularity");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("per_user", workers), &workers, |b, _| {
        b.iter(|| {
            for input in &inputs {
                let input = Arc::clone(input);
                let planner = Arc::clone(&planner);
                handle.spawn(Box::new(move || {
                    let result =
                        process_user_pooled(&cell, &input, TurboMode::Passthrough, &planner);
                    let crc_ok = result.crc_ok;
                    UserScratch::with(|s| s.arena.recycle_u8(result.payload));
                    black_box(crc_ok);
                }));
            }
            pool.wait_all();
        })
    });
    group.bench_with_input(
        BenchmarkId::new("per_antenna_layer", workers),
        &workers,
        |b, _| {
            b.iter(|| {
                for input in &inputs {
                    spawn_user_graph(
                        &handle,
                        &cell,
                        input,
                        TurboMode::Passthrough,
                        &planner,
                        false,
                        Box::new(|result| {
                            black_box(result.crc_ok);
                        }),
                    );
                }
                pool.wait_all();
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_task_granularity);
criterion_main!(benches);
