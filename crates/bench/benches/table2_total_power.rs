//! Table II — average total power dissipation for the four techniques
//! plus the analytical PowerGating row.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lte_uplink::report;

fn table2(c: &mut Criterion) {
    let ctx = lte_bench::bench_context();
    let study = ctx.run_power_study();
    println!("{}", report::table2_markdown(&study.table2()));

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    let tiny = lte_bench::tiny_context();
    group.bench_function("total_power_table", |b| {
        b.iter(|| black_box(tiny.run_power_study().table2()))
    });
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
