//! Observability overhead guard: a disabled recorder must be free.
//!
//! Runs the fig. 14 workload (NAP policy over the ramp sequence) three
//! ways — recorder absent (`Simulator::new`), explicit `NoopRecorder`,
//! and a live `RingRecorder` — and prints the no-op cost relative to
//! the bare simulator. The no-op path is the default for every
//! experiment in the repo, so it must stay within noise (< 1% on this
//! workload; the enabled ring shows what full tracing costs).

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use lte_obs::{Histogram, NoopRecorder, RingRecorder, Stage};
use lte_phy::trace::{StageHists, StageTimer};
use lte_power::NapPolicy;
use lte_sched::sim::Simulator;

fn obs_overhead(c: &mut Criterion) {
    let ctx = lte_bench::tiny_context();
    let subframes = ctx.subframes();
    let targets = vec![ctx.controller.max_cores; subframes.len()];
    let cfg = ctx.sim_config(NapPolicy::Nap);
    let loads = ctx.loads(&subframes, &targets);

    // One-shot comparison printed up front: mean over a fixed batch,
    // after a warmup pass so neither side pays cold caches.
    let reps = 10;
    for _ in 0..3 {
        black_box(Simulator::new(cfg).run(&loads).end_time);
    }
    let bare = {
        let start = Instant::now();
        for _ in 0..reps {
            black_box(Simulator::new(cfg).run(&loads).end_time);
        }
        start.elapsed()
    };
    let noop = {
        let start = Instant::now();
        for _ in 0..reps {
            black_box(
                Simulator::with_recorder(cfg, NoopRecorder)
                    .run(&loads)
                    .end_time,
            );
        }
        start.elapsed()
    };
    println!(
        "obs_overhead: bare {:?}, noop recorder {:?} ({:+.2}% — must stay within noise)",
        bare / reps,
        noop / reps,
        100.0 * (noop.as_secs_f64() - bare.as_secs_f64()) / bare.as_secs_f64()
    );

    // Telemetry-record gates. A single enabled `Histogram::record` is
    // two relaxed atomic adds and must stay under 50 ns; the disabled
    // stage-timer path skips even the clock read, so timing a stage
    // through it must cost within noise of the raw closure (< 1%).
    let n = 1_000_000u64;
    let record_ns = {
        let hist = Histogram::new();
        let start = Instant::now();
        for v in 0..n {
            hist.record(black_box(v.wrapping_mul(2_654_435_761) >> 12));
        }
        let ns = start.elapsed().as_nanos() as f64 / n as f64;
        black_box(hist.snapshot().count);
        ns
    };
    fn timed(n: u64, timer: &StageTimer<'_, NoopRecorder>) -> std::time::Duration {
        let start = Instant::now();
        let mut acc = 0u64;
        for v in 0..n {
            acc = timer.time(Stage::Finish, || acc.wrapping_add(black_box(v)));
        }
        black_box(acc);
        start.elapsed()
    }
    let hists = StageHists::new();
    // Warm both paths, then compare disabled vs histogram-recording.
    for _ in 0..2 {
        black_box(timed(n, &StageTimer::disabled()));
        black_box(timed(n, &StageTimer::histograms_only(&hists)));
    }
    let disabled = timed(n, &StageTimer::disabled());
    let recording = timed(n, &StageTimer::histograms_only(&hists));
    println!(
        "hist_record: enabled {record_ns:.1} ns/op (gate < 50), disabled stage timer \
         {:.2} ns/op vs recording {:.2} ns/op",
        disabled.as_nanos() as f64 / n as f64,
        recording.as_nanos() as f64 / n as f64,
    );
    assert!(
        record_ns < 50.0,
        "histogram record {record_ns:.1} ns/op breaches the 50 ns budget"
    );

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_function("recorder_absent", |b| {
        b.iter(|| black_box(Simulator::new(cfg).run(&loads).end_time))
    });
    group.bench_function("noop_recorder", |b| {
        b.iter(|| {
            black_box(
                Simulator::with_recorder(cfg, NoopRecorder)
                    .run(&loads)
                    .end_time,
            )
        })
    });
    group.bench_function("ring_recorder", |b| {
        b.iter(|| {
            let recorder = RingRecorder::new(1_000_000);
            black_box(
                Simulator::with_recorder(cfg, &recorder)
                    .run(&loads)
                    .end_time,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
