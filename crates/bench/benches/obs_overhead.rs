//! Observability overhead guard: a disabled recorder must be free.
//!
//! Runs the fig. 14 workload (NAP policy over the ramp sequence) three
//! ways — recorder absent (`Simulator::new`), explicit `NoopRecorder`,
//! and a live `RingRecorder` — and prints the no-op cost relative to
//! the bare simulator. The no-op path is the default for every
//! experiment in the repo, so it must stay within noise (< 1% on this
//! workload; the enabled ring shows what full tracing costs).

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use lte_obs::{NoopRecorder, RingRecorder};
use lte_power::NapPolicy;
use lte_sched::sim::Simulator;

fn obs_overhead(c: &mut Criterion) {
    let ctx = lte_bench::tiny_context();
    let subframes = ctx.subframes();
    let targets = vec![ctx.controller.max_cores; subframes.len()];
    let cfg = ctx.sim_config(NapPolicy::Nap);
    let loads = ctx.loads(&subframes, &targets);

    // One-shot comparison printed up front: mean over a fixed batch,
    // after a warmup pass so neither side pays cold caches.
    let reps = 10;
    for _ in 0..3 {
        black_box(Simulator::new(cfg).run(&loads).end_time);
    }
    let bare = {
        let start = Instant::now();
        for _ in 0..reps {
            black_box(Simulator::new(cfg).run(&loads).end_time);
        }
        start.elapsed()
    };
    let noop = {
        let start = Instant::now();
        for _ in 0..reps {
            black_box(
                Simulator::with_recorder(cfg, NoopRecorder)
                    .run(&loads)
                    .end_time,
            );
        }
        start.elapsed()
    };
    println!(
        "obs_overhead: bare {:?}, noop recorder {:?} ({:+.2}% — must stay within noise)",
        bare / reps,
        noop / reps,
        100.0 * (noop.as_secs_f64() - bare.as_secs_f64()) / bare.as_secs_f64()
    );

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_function("recorder_absent", |b| {
        b.iter(|| black_box(Simulator::new(cfg).run(&loads).end_time))
    });
    group.bench_function("noop_recorder", |b| {
        b.iter(|| {
            black_box(
                Simulator::with_recorder(cfg, NoopRecorder)
                    .run(&loads)
                    .end_time,
            )
        })
    });
    group.bench_function("ring_recorder", |b| {
        b.iter(|| {
            let recorder = RingRecorder::new(1_000_000);
            black_box(
                Simulator::with_recorder(cfg, &recorder)
                    .run(&loads)
                    .end_time,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
