//! Fig. 15 — power under all four techniques (NONAP / IDLE / NAP /
//! NAP+IDLE).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

fn fig15(c: &mut Criterion) {
    let ctx = lte_bench::bench_context();
    let study = ctx.run_power_study();
    for run in &study.runs {
        println!("{:8}: mean {:.2} W", run.policy.to_string(), run.mean_total);
        lte_bench::preview(&format!("fig15 {} RMS", run.policy), &run.rms);
    }

    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    let tiny = lte_bench::tiny_context();
    group.bench_function("four_policy_study", |b| {
        b.iter(|| black_box(tiny.run_power_study().gated_mean))
    });
    group.finish();
}

criterion_group!(benches, fig15);
criterion_main!(benches);
