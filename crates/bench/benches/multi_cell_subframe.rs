//! Multi-cell deployment throughput: one subframe tick across N cells
//! sharded onto the shared pool, measured end to end (synthesis,
//! optional interference injection, sharded dispatch, decode, harvest).
//!
//! The cell count sweep shows how the deployment layer scales when the
//! per-cell work is fixed; the coupled variant adds the deterministic
//! inter-cell interference stage so its field-construction cost is
//! visible next to the isolated baseline.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lte_uplink::deploy::{run_deploy, DeployConfig};

fn config(cells: usize, coupling_milli: u32) -> DeployConfig {
    let mut cfg = DeployConfig::new(cells, 1000 * cells, 1, 7);
    cfg.workers = lte_sched::host_parallelism().min(8);
    cfg.coupling_milli = coupling_milli;
    cfg
}

fn bench_multi_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_cell_subframe");
    group.sample_size(10);
    for cells in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("isolated", cells), &cells, |b, &cells| {
            b.iter(|| {
                let report = run_deploy(&config(cells, 0)).expect("deploy runs");
                black_box(report.fingerprint)
            })
        });
    }
    group.bench_with_input(BenchmarkId::new("coupled", 4usize), &4usize, |b, &cells| {
        b.iter(|| {
            let report = run_deploy(&config(cells, 300)).expect("deploy runs");
            black_box(report.fingerprint)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_multi_cell);
criterion_main!(benches);
