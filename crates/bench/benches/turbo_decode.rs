//! Decode-tail micro-benchmark: the state-parallel max-log-MAP turbo
//! decoder across QPP block sizes, scalar vs SIMD dispatch, with and
//! without deterministic early termination.
//!
//! The SIMD rows exercise the AVX2 path (when the host has it) through
//! the allocation-free `decode_into` entry point — the same call the
//! receiver's steady-state decode tail makes — so the ratio between the
//! `scalar/` and `simd/` groups is the kernel-level counterpart of the
//! `turbo_simd_speedup` figure in `BENCH_PR9.json`.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lte_dsp::simd::force_scalar;
use lte_dsp::turbo::{TurboDecoder, TurboEncoder, TurboLlrs, TurboWorkspace};
use lte_dsp::Xoshiro256;

const ITERATIONS: usize = 5;

/// QPP interleaver sizes spanning the 3GPP table: the smallest block,
/// two mid-range sizes, and the largest.
const SIZES: [usize; 4] = [40, 512, 2048, 6144];

fn encoded_llrs(k: usize, seed: u64) -> TurboLlrs {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let bits: Vec<u8> = (0..k).map(|_| (rng.next_u64() & 1) as u8).collect();
    let code = TurboEncoder::new(k).encode(&bits);
    let mut llrs = code.to_llrs(4.0);
    // Mild noise so early termination converges in a realistic number
    // of half-iterations instead of on the first agreement check.
    for v in llrs
        .systematic
        .iter_mut()
        .chain(llrs.parity1.iter_mut())
        .chain(llrs.parity2.iter_mut())
    {
        *v += (rng.next_f32() - 0.5) * 1.5;
    }
    llrs
}

fn bench_dispatch(c: &mut Criterion, label: &str, scalar: bool) {
    let mut group = c.benchmark_group(format!("turbo_decode/{label}"));
    for &k in &SIZES {
        let llrs = encoded_llrs(k, k as u64);
        let decoder = TurboDecoder::new(k, ITERATIONS);
        let early = TurboDecoder::new(k, ITERATIONS).with_early_termination();
        let mut ws = TurboWorkspace::new();
        let mut out = Vec::new();
        force_scalar(scalar);
        group.bench_with_input(BenchmarkId::new("full", k), &k, |b, _| {
            b.iter(|| {
                decoder.decode_into(&llrs, &mut ws, &mut out);
                black_box(out.first().copied())
            })
        });
        group.bench_with_input(BenchmarkId::new("early-term", k), &k, |b, _| {
            b.iter(|| {
                early.decode_into(&llrs, &mut ws, &mut out);
                black_box(out.first().copied())
            })
        });
        force_scalar(false);
    }
    group.finish();
}

fn bench_turbo_decode(c: &mut Criterion) {
    bench_dispatch(c, "simd", false);
    bench_dispatch(c, "scalar", true);
}

criterion_group!(turbo_decode, bench_turbo_decode);
criterion_main!(turbo_decode);
