//! Fig. 14 — measured power with (NAP) and without (NONAP) estimation-
//! guided core deactivation, plus the activity overlay.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use lte_power::NapPolicy;

fn fig14(c: &mut Criterion) {
    let ctx = lte_bench::bench_context();
    let (_, estimator) = ctx.run_calibration();
    let subframes = ctx.subframes();
    let targets = ctx.estimated_targets(&estimator, &subframes);
    let full = vec![ctx.controller.max_cores; subframes.len()];
    let nonap = ctx.run_policy(NapPolicy::NoNap, &subframes, &full);
    let nap = ctx.run_policy(NapPolicy::Nap, &subframes, &targets);
    lte_bench::preview("fig14 NONAP RMS power (W)", &nonap.rms);
    lte_bench::preview("fig14 NAP RMS power (W)", &nap.rms);
    println!(
        "means: NONAP {:.2} W, NAP {:.2} W — gap {:.2} W (paper: 25 vs 20.5, largest at low load)",
        nonap.mean_total,
        nap.mean_total,
        nonap.mean_total - nap.mean_total
    );

    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    let tiny = lte_bench::tiny_context();
    let sf = tiny.subframes();
    let t = vec![8; sf.len()];
    group.bench_function("nap_policy_run", |b| {
        b.iter(|| black_box(tiny.run_policy(NapPolicy::Nap, &sf, &t).mean_total))
    });
    group.finish();
}

criterion_group!(benches, fig14);
criterion_main!(benches);
