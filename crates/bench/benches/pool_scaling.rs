//! The real benchmark on the work-stealing pool: throughput of subframe
//! processing at different worker counts (the paper's §III parallelism
//! study, host-scale).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lte_model::{ParameterModel, RampModel};
use lte_phy::params::CellConfig;
use lte_uplink::{BenchmarkConfig, UplinkBenchmark};

fn bench_pool_scaling(c: &mut Criterion) {
    let max = lte_sched::host_parallelism();
    let mut group = c.benchmark_group("pool_subframes");
    group.sample_size(10);
    for workers in [1usize, 2, 4, max]
        .into_iter()
        .collect::<std::collections::BTreeSet<_>>()
    {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let subframes = RampModel::new(8).subframes(5);
                b.iter(|| {
                    let mut bench = UplinkBenchmark::new(
                        CellConfig::with_antennas(2),
                        BenchmarkConfig {
                            workers,
                            delta: Duration::ZERO, // back-to-back dispatch
                            ..BenchmarkConfig::default()
                        },
                    );
                    black_box(bench.run(&subframes).crc_pass_rate)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pool_scaling);
criterion_main!(benches);
