//! Subframe input parameter models (§IV-B2 and §V-A of the paper).
//!
//! The benchmark's dynamic behaviour comes entirely from the per-subframe
//! input parameters: the number of users, each user's PRB allocation,
//! layer count and modulation. This crate implements:
//!
//! * [`RampModel`] — the paper's evaluation model: users and PRBs drawn
//!   per the Fig. 6 pseudocode, layers and modulation per Fig. 10, with
//!   the layer/modulation probability ramped 0.6 % → 100 % → 0.6 % over
//!   2 × 34 000 subframes ("the input parameter model … tries to effect
//!   a high variation with rapid changes … while still achieving a
//!   continuous trend");
//! * [`SteadyModel`] — the §VI-A calibration model: one user with a fixed
//!   configuration for every subframe, used to measure the activity/PRB
//!   correlation of Fig. 11;
//! * [`trace`] — per-subframe statistics reproducing Figs. 7, 8 and 9.

pub mod trace;

use lte_dsp::{Modulation, Xoshiro256};
use lte_phy::params::{SubframeConfig, UserConfig, MAX_PRB, MAX_USERS, MIN_USER_PRB};

/// Total subframes in the paper's evaluation run.
pub const EVALUATION_SUBFRAMES: usize = 68_000;
/// Subframes between probability adjustments (Fig. 10's
/// `current_probability` changes "every 200th subframe").
pub const PROB_STEP_SUBFRAMES: usize = 200;
/// Subframes over which the probability ramps from minimum to maximum.
pub const RAMP_SUBFRAMES: usize = 34_000;
/// The minimum layer/modulation probability (0.6 %).
pub const PROB_MIN: f64 = 0.006;

/// A source of per-subframe input parameters — the paper's
/// `uplink_parameters(parameter_model*)` interface.
pub trait ParameterModel {
    /// Produces the next subframe's users.
    fn next_subframe(&mut self) -> SubframeConfig;

    /// Generates `n` consecutive subframes.
    fn subframes(&mut self, n: usize) -> Vec<SubframeConfig> {
        (0..n).map(|_| self.next_subframe()).collect()
    }
}

/// The layer/modulation probability at a given subframe index: linear
/// ramp up over the first [`RAMP_SUBFRAMES`], then back down, quantised
/// to [`PROB_STEP_SUBFRAMES`] steps.
pub fn current_probability(subframe: usize) -> f64 {
    let step = (subframe / PROB_STEP_SUBFRAMES) * PROB_STEP_SUBFRAMES;
    let pos = if step < RAMP_SUBFRAMES {
        step as f64 / RAMP_SUBFRAMES as f64
    } else {
        let down = (step - RAMP_SUBFRAMES).min(RAMP_SUBFRAMES);
        1.0 - down as f64 / RAMP_SUBFRAMES as f64
    };
    PROB_MIN + (1.0 - PROB_MIN) * pos
}

/// Draws one user's PRB count per the Fig. 6 pseudocode: a uniform draw
/// over `MAX_PRB`, divided by 8/4/2 with probability 0.4/0.2/0.3 "to
/// create a larger spread", clamped to `[MIN_USER_PRB, remaining]`.
fn draw_user_prb(rng: &mut Xoshiro256, remaining: usize) -> usize {
    let mut user_prb = (MAX_PRB as f64 * rng.next_f64()) as usize;
    let distribution = rng.next_f64();
    if distribution < 0.4 {
        user_prb /= 8;
    } else if distribution < 0.6 {
        user_prb /= 4;
    } else if distribution < 0.9 {
        user_prb /= 2;
    }
    user_prb.clamp(MIN_USER_PRB, remaining)
}

/// The paper's evaluation model (Fig. 6 + Fig. 10).
#[derive(Clone, Debug)]
pub struct RampModel {
    rng: Xoshiro256,
    subframe: usize,
}

impl RampModel {
    /// Creates the model with a deterministic seed — the
    /// `init_parameter_model` step.
    pub fn new(seed: u64) -> Self {
        RampModel {
            rng: Xoshiro256::seed_from_u64(seed),
            subframe: 0,
        }
    }

    /// The current subframe index (subframes generated so far).
    pub fn subframe(&self) -> usize {
        self.subframe
    }

    /// Skips ahead to an absolute subframe index without consuming
    /// random draws (useful for sampling a region of the ramp).
    pub fn seek(&mut self, subframe: usize) {
        self.subframe = subframe;
    }

    /// Draws one user's layer count per the Fig. 10 pseudocode.
    pub(crate) fn draw_layers(rng: &mut Xoshiro256, prob: f64) -> usize {
        let mut layers = 1;
        for _ in 0..3 {
            if prob > rng.next_f64() {
                layers += 1;
            }
        }
        layers
    }

    /// Draws one user's modulation per the Fig. 10 pseudocode.
    pub(crate) fn draw_modulation(rng: &mut Xoshiro256, prob: f64) -> Modulation {
        if prob > rng.next_f64() {
            if prob > rng.next_f64() {
                Modulation::Qam64
            } else {
                Modulation::Qam16
            }
        } else {
            Modulation::Qpsk
        }
    }
}

impl ParameterModel for RampModel {
    fn next_subframe(&mut self) -> SubframeConfig {
        let prob = current_probability(self.subframe);
        self.subframe += 1;
        let mut remaining = MAX_PRB;
        let mut users = Vec::new();
        // Fig. 6: while nmbUsers < MAX_USERS and nmbPRB > 0.
        while users.len() < MAX_USERS && remaining >= MIN_USER_PRB {
            let user_prb = draw_user_prb(&mut self.rng, remaining);
            let layers = Self::draw_layers(&mut self.rng, prob);
            let modulation = Self::draw_modulation(&mut self.rng, prob);
            users.push(UserConfig::new(user_prb, layers, modulation));
            remaining -= user_prb;
        }
        SubframeConfig::new(users)
    }
}

/// The §VI-A calibration model: a single user with a fixed configuration
/// in every subframe, creating the steady state used to measure the
/// activity/parameter correlation.
#[derive(Clone, Debug)]
pub struct SteadyModel {
    user: UserConfig,
}

impl SteadyModel {
    /// A steady single-user load.
    pub fn new(user: UserConfig) -> Self {
        SteadyModel { user }
    }

    /// The fixed user configuration.
    pub fn user(&self) -> UserConfig {
        self.user
    }
}

impl ParameterModel for SteadyModel {
    fn next_subframe(&mut self) -> SubframeConfig {
        SubframeConfig::new(vec![self.user])
    }
}

/// An empty-load model (no users scheduled) — the benchmark's idle case.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdleModel;

impl ParameterModel for IdleModel {
    fn next_subframe(&mut self) -> SubframeConfig {
        SubframeConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_schedule_endpoints() {
        assert!((current_probability(0) - PROB_MIN).abs() < 1e-9);
        assert!((current_probability(RAMP_SUBFRAMES) - 1.0).abs() < 1e-9);
        assert!((current_probability(2 * RAMP_SUBFRAMES) - PROB_MIN).abs() < 1e-9);
        // Midpoint of the up-ramp ≈ 50 %.
        let mid = current_probability(RAMP_SUBFRAMES / 2);
        assert!((mid - 0.503).abs() < 0.01, "{mid}");
    }

    #[test]
    fn probability_steps_every_200_subframes() {
        assert_eq!(current_probability(0), current_probability(199));
        assert!(current_probability(200) > current_probability(199));
    }

    #[test]
    fn ramp_is_symmetric() {
        for sf in (0..RAMP_SUBFRAMES).step_by(1000) {
            let up = current_probability(sf);
            let down = current_probability(2 * RAMP_SUBFRAMES - sf);
            assert!((up - down).abs() < 1e-9, "sf={sf}: {up} vs {down}");
        }
    }

    #[test]
    fn subframes_respect_fig6_invariants() {
        let mut model = RampModel::new(1);
        for _ in 0..2_000 {
            let sf = model.next_subframe();
            assert!(sf.n_users() >= 1 && sf.n_users() <= MAX_USERS);
            assert!(sf.total_prbs() <= MAX_PRB, "total {}", sf.total_prbs());
            for u in &sf.users {
                assert!(u.prbs >= MIN_USER_PRB);
                assert!((1..=4).contains(&u.layers));
            }
        }
    }

    #[test]
    fn user_count_varies_rapidly() {
        // Fig. 7: "the number of users varies constantly and rapidly".
        let mut model = RampModel::new(2);
        let counts: Vec<usize> = (0..500).map(|_| model.next_subframe().n_users()).collect();
        let distinct: std::collections::HashSet<_> = counts.iter().collect();
        assert!(
            distinct.len() >= 6,
            "only {} distinct counts",
            distinct.len()
        );
        let changes = counts.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(changes > 250, "only {changes} changes in 500 subframes");
    }

    #[test]
    fn prb_spread_is_large() {
        // Fig. 8: max-per-user ranges widely; minimum can be 2.
        let mut model = RampModel::new(3);
        let mut max_seen = 0;
        let mut min_seen = usize::MAX;
        for _ in 0..5_000 {
            let sf = model.next_subframe();
            for u in &sf.users {
                max_seen = max_seen.max(u.prbs);
                min_seen = min_seen.min(u.prbs);
            }
        }
        assert!(max_seen >= 150, "max {max_seen}");
        assert_eq!(min_seen, MIN_USER_PRB);
    }

    #[test]
    fn layers_follow_the_ramp() {
        // Early subframes: almost all single-layer. At the peak: almost
        // all four layers (Fig. 9).
        let mut model = RampModel::new(4);
        let early: Vec<SubframeConfig> = model.subframes(1_000);
        let early_multi = early
            .iter()
            .flat_map(|s| &s.users)
            .filter(|u| u.layers > 1)
            .count();
        let early_total = early.iter().map(|s| s.n_users()).sum::<usize>();
        assert!(
            (early_multi as f64) < 0.05 * early_total as f64,
            "{early_multi}/{early_total} multi-layer early"
        );
        // Jump the model to the peak; stay within one 200-subframe step
        // so the probability is exactly 1.0 throughout.
        let mut peak_model = RampModel::new(5);
        peak_model.seek(RAMP_SUBFRAMES);
        let peak: Vec<SubframeConfig> = peak_model.subframes(PROB_STEP_SUBFRAMES);
        let peak_four = peak
            .iter()
            .flat_map(|s| &s.users)
            .filter(|u| u.layers == 4 && u.modulation == Modulation::Qam64)
            .count();
        let peak_total = peak.iter().map(|s| s.n_users()).sum::<usize>();
        assert_eq!(peak_four, peak_total, "at prob=1.0 every user is 4L/64QAM");
    }

    #[test]
    fn modulation_mix_at_half_probability() {
        // At prob p: P(QPSK)=1−p, P(16QAM)=p(1−p), P(64QAM)=p².
        // Re-seek to the half-probability point before every batch so the
        // whole sample sees prob ≈ 0.5.
        let mut model = RampModel::new(6);
        let mut users: Vec<UserConfig> = Vec::new();
        for _ in 0..20 {
            model.seek(RAMP_SUBFRAMES / 2); // prob ≈ 0.5
            users.extend(
                model
                    .subframes(PROB_STEP_SUBFRAMES)
                    .iter()
                    .flat_map(|s| s.users.clone()),
            );
        }
        let n = users.len() as f64;
        let frac = |m: Modulation| users.iter().filter(|u| u.modulation == m).count() as f64 / n;
        assert!((frac(Modulation::Qpsk) - 0.5).abs() < 0.05);
        assert!((frac(Modulation::Qam16) - 0.25).abs() < 0.05);
        assert!((frac(Modulation::Qam64) - 0.25).abs() < 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<SubframeConfig> = RampModel::new(9).subframes(100);
        let b: Vec<SubframeConfig> = RampModel::new(9).subframes(100);
        assert_eq!(a, b);
        let c: Vec<SubframeConfig> = RampModel::new(10).subframes(100);
        assert_ne!(a, c);
    }

    #[test]
    fn steady_model_is_constant() {
        let user = UserConfig::new(50, 2, Modulation::Qam16);
        let mut model = SteadyModel::new(user);
        for _ in 0..10 {
            let sf = model.next_subframe();
            assert_eq!(sf.users, vec![user]);
        }
        assert_eq!(model.user(), user);
    }

    #[test]
    fn idle_model_schedules_nobody() {
        assert_eq!(IdleModel.next_subframe().n_users(), 0);
    }
}

/// A compressed diurnal (24-hour) load model — the paper's §VIII remarks
/// that real base stations average ≈ 25 % load with long low-load
/// periods (nights), and that the proposed technique "would show even
/// greater benefits for a more realistic use case". This model scales
/// the Fig. 6 user generator by a day-shaped envelope so that claim can
/// be tested: load rises through the morning, peaks in the evening, and
/// drops to near-idle at night.
#[derive(Clone, Debug)]
pub struct DiurnalModel {
    rng: Xoshiro256,
    subframe: usize,
    /// Subframes representing one full day.
    day_subframes: usize,
    /// Peak layer/modulation probability at the busiest hour.
    peak_prob: f64,
}

impl DiurnalModel {
    /// Creates a diurnal model compressing one day into `day_subframes`.
    ///
    /// # Panics
    ///
    /// Panics if `day_subframes == 0`.
    pub fn new(seed: u64, day_subframes: usize) -> Self {
        assert!(day_subframes > 0, "day length must be positive");
        DiurnalModel {
            rng: Xoshiro256::seed_from_u64(seed),
            subframe: 0,
            day_subframes,
            peak_prob: 0.9,
        }
    }

    /// The load envelope in `[0, 1]` at a fraction `t` of the day
    /// (`t = 0` is 04:00, the quietest hour): a raised cosine with a
    /// long night floor.
    pub fn envelope(t: f64) -> f64 {
        let t = t.rem_euclid(1.0);
        // Quiet 04:00–07:00 (first eighth), busy evening peak around
        // t ≈ 0.65, floor of 5 %.
        let base = 0.5 + 0.5 * (std::f64::consts::TAU * (t - 0.65)).cos();
        (0.05 + 0.95 * base.powi(2)).min(1.0)
    }

    /// Mean of the envelope over a day (≈ 0.4 before user-count capping;
    /// effective processed load lands near the paper's 25 %).
    pub fn mean_envelope() -> f64 {
        let n = 1000;
        (0..n)
            .map(|i| Self::envelope(i as f64 / n as f64))
            .sum::<f64>()
            / n as f64
    }
}

impl ParameterModel for DiurnalModel {
    fn next_subframe(&mut self) -> SubframeConfig {
        let t = self.subframe as f64 / self.day_subframes as f64;
        self.subframe += 1;
        let envelope = Self::envelope(t);
        let prob = PROB_MIN + (self.peak_prob - PROB_MIN) * envelope;
        // Scale the schedulable resources by the envelope: fewer users
        // and fewer PRBs in quiet hours.
        let budget = (MAX_PRB as f64 * envelope) as usize;
        let max_users = ((MAX_USERS as f64 * envelope).ceil() as usize).min(MAX_USERS);
        let mut remaining = budget;
        let mut users = Vec::new();
        while users.len() < max_users && remaining >= MIN_USER_PRB {
            let user_prb = draw_user_prb(&mut self.rng, remaining);
            let layers = RampModel::draw_layers(&mut self.rng, prob);
            let modulation = RampModel::draw_modulation(&mut self.rng, prob);
            users.push(UserConfig::new(user_prb, layers, modulation));
            remaining -= user_prb;
        }
        SubframeConfig::new(users)
    }
}

#[cfg(test)]
mod diurnal_tests {
    use super::*;

    #[test]
    fn envelope_shape() {
        // Night (t=0) is quiet; evening peak is busy.
        assert!(DiurnalModel::envelope(0.0) < 0.1);
        assert!(DiurnalModel::envelope(0.65) > 0.9);
        // Periodic.
        assert!((DiurnalModel::envelope(0.3) - DiurnalModel::envelope(1.3)).abs() < 1e-12);
    }

    #[test]
    fn mean_envelope_is_moderate() {
        let m = DiurnalModel::mean_envelope();
        assert!((0.2..=0.5).contains(&m), "mean envelope {m}");
    }

    #[test]
    fn quiet_hours_schedule_little() {
        let mut model = DiurnalModel::new(1, 10_000);
        // First 10 % of the day is near the night floor.
        let quiet: Vec<SubframeConfig> = model.subframes(1_000);
        let quiet_prbs: f64 =
            quiet.iter().map(|s| s.total_prbs() as f64).sum::<f64>() / quiet.len() as f64;
        // Jump to the evening peak.
        let mut busy_model = DiurnalModel::new(1, 10_000);
        busy_model.subframe = 6_500;
        let busy: Vec<SubframeConfig> = busy_model.subframes(1_000);
        let busy_prbs: f64 =
            busy.iter().map(|s| s.total_prbs() as f64).sum::<f64>() / busy.len() as f64;
        assert!(
            busy_prbs > 4.0 * quiet_prbs,
            "evening {busy_prbs:.0} PRBs !≫ night {quiet_prbs:.0}"
        );
    }

    #[test]
    fn diurnal_subframes_respect_invariants() {
        let mut model = DiurnalModel::new(2, 5_000);
        for _ in 0..2_000 {
            let sf = model.next_subframe();
            assert!(sf.total_prbs() <= MAX_PRB);
            assert!(sf.n_users() <= MAX_USERS);
        }
    }
}
