//! Per-subframe trace statistics — the data behind Figs. 7, 8 and 9.
//!
//! The paper plots, for every 25th of 68 000 subframes: the number of
//! users (Fig. 7), the total/max/min PRBs (Fig. 8), and the max/min layer
//! counts (Fig. 9). [`SubframeStats`] captures those quantities for one
//! subframe; [`Trace`] aggregates a run.

use lte_phy::params::SubframeConfig;

/// The plotted quantities for one subframe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubframeStats {
    /// Subframe index.
    pub subframe: usize,
    /// Scheduled users (Fig. 7).
    pub users: usize,
    /// Total PRBs allocated (Fig. 8 "Total").
    pub total_prbs: usize,
    /// Largest single-user allocation (Fig. 8 "Max"); 0 if no users.
    pub max_prbs: usize,
    /// Smallest single-user allocation (Fig. 8 "Min"); 0 if no users.
    pub min_prbs: usize,
    /// Largest layer count (Fig. 9 "Max"); 0 if no users.
    pub max_layers: usize,
    /// Smallest layer count (Fig. 9 "Min"); 0 if no users.
    pub min_layers: usize,
}

impl SubframeStats {
    /// Computes the statistics of one subframe.
    pub fn of(subframe: usize, config: &SubframeConfig) -> Self {
        let users = config.n_users();
        let (max_prbs, min_prbs, max_layers, min_layers) = if users == 0 {
            (0, 0, 0, 0)
        } else {
            (
                config.users.iter().map(|u| u.prbs).max().unwrap_or(0),
                config.users.iter().map(|u| u.prbs).min().unwrap_or(0),
                config.users.iter().map(|u| u.layers).max().unwrap_or(0),
                config.users.iter().map(|u| u.layers).min().unwrap_or(0),
            )
        };
        SubframeStats {
            subframe,
            users,
            total_prbs: config.total_prbs(),
            max_prbs,
            min_prbs,
            max_layers,
            min_layers,
        }
    }
}

/// Statistics over a subframe sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    rows: Vec<SubframeStats>,
}

impl Trace {
    /// Builds a trace from a subframe sequence.
    pub fn from_configs(configs: &[SubframeConfig]) -> Self {
        Trace {
            rows: configs
                .iter()
                .enumerate()
                .map(|(i, c)| SubframeStats::of(i, c))
                .collect(),
        }
    }

    /// All rows.
    pub fn rows(&self) -> &[SubframeStats] {
        &self.rows
    }

    /// Every `n`-th row — the paper plots every 25th subframe "to make
    /// the graph clearer".
    pub fn every(&self, n: usize) -> Vec<SubframeStats> {
        assert!(n > 0, "stride must be positive");
        self.rows.iter().copied().step_by(n).collect()
    }

    /// Number of recorded subframes.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Mean user count.
    pub fn mean_users(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.users as f64).sum::<f64>() / self.rows.len() as f64
    }

    /// Mean total PRBs.
    pub fn mean_total_prbs(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.total_prbs as f64).sum::<f64>() / self.rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParameterModel, RampModel};
    use lte_dsp::Modulation;
    use lte_phy::params::UserConfig;

    #[test]
    fn stats_of_simple_subframe() {
        let sf = SubframeConfig::new(vec![
            UserConfig::new(10, 1, Modulation::Qpsk),
            UserConfig::new(30, 4, Modulation::Qam64),
        ]);
        let s = SubframeStats::of(7, &sf);
        assert_eq!(s.subframe, 7);
        assert_eq!(s.users, 2);
        assert_eq!(s.total_prbs, 40);
        assert_eq!(s.max_prbs, 30);
        assert_eq!(s.min_prbs, 10);
        assert_eq!(s.max_layers, 4);
        assert_eq!(s.min_layers, 1);
    }

    #[test]
    fn empty_subframe_stats_are_zero() {
        let s = SubframeStats::of(0, &SubframeConfig::default());
        assert_eq!(s.users, 0);
        assert_eq!(s.max_prbs, 0);
        assert_eq!(s.min_layers, 0);
    }

    #[test]
    fn trace_every_25th_matches_paper_plot_density() {
        let configs = RampModel::new(1).subframes(1_000);
        let trace = Trace::from_configs(&configs);
        assert_eq!(trace.len(), 1_000);
        let plotted = trace.every(25);
        assert_eq!(plotted.len(), 40);
        assert_eq!(plotted[1].subframe, 25);
    }

    #[test]
    fn means_are_sane() {
        let configs = RampModel::new(2).subframes(2_000);
        let trace = Trace::from_configs(&configs);
        let mu = trace.mean_users();
        assert!((1.0..=10.0).contains(&mu), "mean users {mu}");
        let mp = trace.mean_total_prbs();
        assert!((50.0..=200.0).contains(&mp), "mean PRBs {mp}");
    }

    #[test]
    fn stats_are_copy_and_comparable() {
        let configs = RampModel::new(3).subframes(10);
        let trace = Trace::from_configs(&configs);
        let again = Trace::from_configs(&configs);
        assert_eq!(trace, again);
    }
}
