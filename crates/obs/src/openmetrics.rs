//! OpenMetrics / Prometheus text exposition.
//!
//! A small deterministic builder: metric families append in call order,
//! names are sanitized (the registry's dotted namespaces become
//! underscore-separated OpenMetrics names, counters gain the mandated
//! `_total` suffix), histograms export as summaries (canonical
//! quantiles + `_sum`/`_count` — far cheaper to scrape than ~1900
//! `le`-buckets at 3 % resolution), and [`render`](OpenMetrics::render)
//! terminates the exposition with `# EOF`. Output depends only on the
//! values pushed in, so a deterministic run exports byte-identical text.

use crate::ebler::EblerSurface;
use crate::hist::HistogramSnapshot;
use crate::metrics::{f64_json, MetricsRegistry};

/// Canonical quantiles exported for every summary.
pub const QUANTILES: [(&str, f64); 4] = [
    ("0.5", 0.50),
    ("0.9", 0.90),
    ("0.99", 0.99),
    ("0.999", 0.999),
];

/// Maps a dotted metric path onto a valid OpenMetrics name: dots (and
/// any other invalid character) become underscores, and a leading digit
/// gains an underscore prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if valid {
            out.push(c);
        } else if c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn om_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        f64_json(v)
    }
}

/// A deterministic OpenMetrics text builder.
#[derive(Default)]
pub struct OpenMetrics {
    buf: String,
}

impl OpenMetrics {
    /// An empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    fn family(&mut self, name: &str, kind: &str, help: &str) {
        self.buf.push_str(&format!("# HELP {name} {help}\n"));
        self.buf.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Appends one counter family (name gains `_total` if missing).
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        let mut name = sanitize_metric_name(name);
        if !name.ends_with("_total") {
            name.push_str("_total");
        }
        self.family(&name, "counter", help);
        self.buf.push_str(&format!("{name} {value}\n"));
    }

    /// Appends one gauge family.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        let name = sanitize_metric_name(name);
        self.family(&name, "gauge", help);
        self.buf.push_str(&format!("{name} {}\n", om_f64(value)));
    }

    /// Appends a histogram snapshot as a summary family with the
    /// canonical [`QUANTILES`], `_sum`, and `_count`.
    pub fn summary(&mut self, name: &str, help: &str, h: &HistogramSnapshot) {
        let name = sanitize_metric_name(name);
        self.family(&name, "summary", help);
        for (label, q) in QUANTILES {
            self.buf.push_str(&format!(
                "{name}{{quantile=\"{label}\"}} {}\n",
                h.quantile(q)
            ));
        }
        self.buf.push_str(&format!("{name}_sum {}\n", h.sum));
        self.buf.push_str(&format!("{name}_count {}\n", h.count));
    }

    /// Appends every counter and gauge of a [`MetricsRegistry`], sorted
    /// by name (counters first, then gauges — each group already sorted
    /// by the registry).
    pub fn registry(&mut self, reg: &MetricsRegistry) {
        for (name, v) in reg.counters_with_prefix("") {
            self.counter(&name, "registry counter", v);
        }
        for (name, v) in reg.gauges_with_prefix("") {
            self.gauge(&name, "registry gauge", v);
        }
    }

    /// Appends an EBLER surface: aggregate families plus one
    /// `{stream="i"}` labelled sample per stream.
    pub fn ebler(&mut self, prefix: &str, surface: &EblerSurface) {
        let p = sanitize_metric_name(prefix);
        type FieldFn = fn(&crate::ebler::StreamEbler) -> String;
        let fields: [(&str, &str, FieldFn); 6] = [
            ("ack_total", "counter", |s| s.ack.to_string()),
            ("nack_total", "counter", |s| s.nack.to_string()),
            ("dtx_total", "counter", |s| s.dtx.to_string()),
            ("bler_pct", "gauge", |s| om_f64(s.bler_pct)),
            ("throughput_avg_kbps", "gauge", |s| {
                om_f64(s.throughput_avg_kbps)
            }),
            ("throughput_max_kbps", "gauge", |s| {
                om_f64(s.throughput_max_kbps)
            }),
        ];
        for (suffix, kind, value) in &fields {
            let name = format!("{p}_{suffix}");
            self.family(&name, kind, "EBLER surface");
            self.buf
                .push_str(&format!("{name} {}\n", value(&surface.total)));
            for (i, s) in surface.streams.iter().enumerate() {
                self.buf
                    .push_str(&format!("{name}{{stream=\"{i}\"}} {}\n", value(s)));
            }
        }
    }

    /// Finishes the exposition with the OpenMetrics `# EOF` marker.
    pub fn render(mut self) -> String {
        self.buf.push_str("# EOF\n");
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ebler::EblerAccumulator;
    use crate::hist::Histogram;

    #[test]
    fn names_sanitize_to_openmetrics_charset() {
        assert_eq!(
            sanitize_metric_name("pool.worker.0.steals"),
            "pool_worker_0_steals"
        );
        assert_eq!(
            sanitize_metric_name("chaos.sim.dropped_subframes"),
            "chaos_sim_dropped_subframes"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
    }

    #[test]
    fn counter_gains_total_suffix() {
        let mut om = OpenMetrics::new();
        om.counter("sim.jobs", "jobs", 7);
        let text = om.render();
        assert!(text.contains("# TYPE sim_jobs_total counter\n"));
        assert!(text.contains("\nsim_jobs_total 7\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn summary_exports_quantiles_sum_count() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let mut om = OpenMetrics::new();
        om.summary("latency.cycles", "latency", &h.snapshot());
        let text = om.render();
        assert!(text.contains("# TYPE latency_cycles summary\n"));
        assert!(text.contains("latency_cycles{quantile=\"0.5\"} "));
        assert!(text.contains("latency_cycles_sum 5050\n"));
        assert!(text.contains("latency_cycles_count 100\n"));
    }

    #[test]
    fn registry_exports_counters_then_gauges() {
        let reg = MetricsRegistry::new();
        reg.set_counter("pool.parks", 3);
        reg.set_gauge("pool.activity", 0.5);
        let mut om = OpenMetrics::new();
        om.registry(&reg);
        let text = om.render();
        let counter_at = text.find("pool_parks_total 3").unwrap();
        let gauge_at = text.find("pool_activity 0.5").unwrap();
        assert!(counter_at < gauge_at);
    }

    #[test]
    fn ebler_streams_are_labelled() {
        let acc = EblerAccumulator::new(2);
        acc.record_decode(0, true, 100);
        acc.record_dtx(1);
        let mut om = OpenMetrics::new();
        om.ebler("ebler", &acc.snapshot());
        let text = om.render();
        assert!(text.contains("ebler_ack_total 1\n"));
        assert!(text.contains("ebler_ack_total{stream=\"0\"} 1\n"));
        assert!(text.contains("ebler_dtx_total{stream=\"1\"} 1\n"));
        assert!(text.contains("ebler_bler_pct 50.0\n"));
    }

    #[test]
    fn output_is_deterministic() {
        let build = || {
            let mut om = OpenMetrics::new();
            om.gauge("a.b", "g", 1.25);
            om.counter("c.d", "c", 2);
            om.render()
        };
        assert_eq!(build(), build());
    }
}
