//! Admission/lifecycle counters for the streaming service.
//!
//! [`ServiceCounters`] is the shared, lock-free scoreboard the serve
//! loop and its source threads update as work flows through the front
//! door: arrivals in, admissions through, and one counter per distinct
//! refusal/mitigation path so `arrivals == admitted + rejected_*`
//! always balances and a dashboard can tell *backpressure* rejects from
//! *rate-limit* rejects from *malformed* refusals. [`ServiceSnapshot`]
//! freezes the scoreboard for deterministic JSON/OpenMetrics export —
//! same counters, fixed key order, no wall-clock anywhere.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::MetricsRegistry;

/// Shared atomic counters for the ingest/serve path. All methods take
/// `&self`; share via `Arc` between sources, the serve loop and the
/// watchdog.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    arrivals: AtomicU64,
    admitted: AtomicU64,
    rejected_backpressure: AtomicU64,
    rejected_rate_limited: AtomicU64,
    rejected_malformed: AtomicU64,
    shed_users: AtomicU64,
    degraded_subframes: AtomicU64,
    completed_subframes: AtomicU64,
    deadline_misses: AtomicU64,
    drain_shed_subframes: AtomicU64,
    watchdog_restarts: AtomicU64,
    reloads: AtomicU64,
    queue_depth: AtomicU64,
    queue_high_watermark: AtomicU64,
}

impl ServiceCounters {
    /// A zeroed scoreboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// One subframe offered by a source (before any admission check).
    pub fn arrival(&self) {
        self.arrivals.fetch_add(1, Ordering::Relaxed);
    }

    /// One subframe admitted into the ingest queue.
    pub fn admit(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// One subframe refused because the queue was full (or the
    /// escalation ladder's reject tier was engaged).
    pub fn reject_backpressure(&self) {
        self.rejected_backpressure.fetch_add(1, Ordering::Relaxed);
    }

    /// One subframe refused by the per-source token bucket.
    pub fn reject_rate_limited(&self) {
        self.rejected_rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    /// One arrival refused at parse time.
    pub fn reject_malformed(&self) {
        self.rejected_malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` users shed from an admitted subframe.
    pub fn shed(&self, n: u64) {
        self.shed_users.fetch_add(n, Ordering::Relaxed);
    }

    /// One admitted subframe dispatched with degraded demapping.
    pub fn degraded(&self) {
        self.degraded_subframes.fetch_add(1, Ordering::Relaxed);
    }

    /// One subframe fully decoded.
    pub fn completed(&self) {
        self.completed_subframes.fetch_add(1, Ordering::Relaxed);
    }

    /// One subframe that overran its deadline budget.
    pub fn deadline_miss(&self) {
        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` queued subframes shed by the drain path instead of decoded.
    pub fn drain_shed(&self, n: u64) {
        self.drain_shed_subframes.fetch_add(n, Ordering::Relaxed);
    }

    /// One watchdog-forced restart of the receive path.
    pub fn watchdog_restart(&self) {
        self.watchdog_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// One hot config reload applied at a subframe boundary.
    pub fn reload(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the instantaneous ingest-queue depth (also maintains
    /// the high watermark).
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_high_watermark
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Freezes the scoreboard.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            arrivals: self.arrivals.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_backpressure: self.rejected_backpressure.load(Ordering::Relaxed),
            rejected_rate_limited: self.rejected_rate_limited.load(Ordering::Relaxed),
            rejected_malformed: self.rejected_malformed.load(Ordering::Relaxed),
            shed_users: self.shed_users.load(Ordering::Relaxed),
            degraded_subframes: self.degraded_subframes.load(Ordering::Relaxed),
            completed_subframes: self.completed_subframes.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            drain_shed_subframes: self.drain_shed_subframes.load(Ordering::Relaxed),
            watchdog_restarts: self.watchdog_restarts.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_high_watermark: self.queue_high_watermark.load(Ordering::Relaxed),
        }
    }
}

/// A frozen [`ServiceCounters`] scoreboard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// Subframes offered by all sources.
    pub arrivals: u64,
    /// Subframes admitted into the ingest queue.
    pub admitted: u64,
    /// Refused: queue full / reject tier engaged.
    pub rejected_backpressure: u64,
    /// Refused: per-source token bucket empty.
    pub rejected_rate_limited: u64,
    /// Refused: unparseable arrival.
    pub rejected_malformed: u64,
    /// Users shed from admitted subframes.
    pub shed_users: u64,
    /// Admitted subframes dispatched with degraded demapping.
    pub degraded_subframes: u64,
    /// Subframes fully decoded.
    pub completed_subframes: u64,
    /// Subframes that overran their deadline budget.
    pub deadline_misses: u64,
    /// Queued subframes shed by the drain path.
    pub drain_shed_subframes: u64,
    /// Watchdog-forced restarts.
    pub watchdog_restarts: u64,
    /// Hot config reloads applied.
    pub reloads: u64,
    /// Ingest-queue depth at snapshot time.
    pub queue_depth: u64,
    /// Deepest queue occupancy observed.
    pub queue_high_watermark: u64,
}

impl ServiceSnapshot {
    /// Total refusals across all reject paths.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_backpressure + self.rejected_rate_limited + self.rejected_malformed
    }

    /// `true` when every arrival is accounted for as admitted or
    /// rejected — the invariant the serve loop must never break.
    pub fn balanced(&self) -> bool {
        self.arrivals == self.admitted + self.rejected_total()
    }

    /// Flat deterministic JSON (fixed key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"arrivals\":{},\"admitted\":{},\"rejected_backpressure\":{},\
             \"rejected_rate_limited\":{},\"rejected_malformed\":{},\
             \"shed_users\":{},\"degraded_subframes\":{},\
             \"completed_subframes\":{},\"deadline_misses\":{},\
             \"drain_shed_subframes\":{},\"watchdog_restarts\":{},\
             \"reloads\":{},\"queue_depth\":{},\"queue_high_watermark\":{}}}",
            self.arrivals,
            self.admitted,
            self.rejected_backpressure,
            self.rejected_rate_limited,
            self.rejected_malformed,
            self.shed_users,
            self.degraded_subframes,
            self.completed_subframes,
            self.deadline_misses,
            self.drain_shed_subframes,
            self.watchdog_restarts,
            self.reloads,
            self.queue_depth,
            self.queue_high_watermark,
        )
    }

    /// Exports every field into `registry` under `prefix`
    /// (e.g. `serve_admitted`). Depths export as gauges, the rest as
    /// counters.
    pub fn export(&self, registry: &MetricsRegistry, prefix: &str) {
        for (name, value) in [
            ("arrivals", self.arrivals),
            ("admitted", self.admitted),
            ("rejected_backpressure", self.rejected_backpressure),
            ("rejected_rate_limited", self.rejected_rate_limited),
            ("rejected_malformed", self.rejected_malformed),
            ("shed_users", self.shed_users),
            ("degraded_subframes", self.degraded_subframes),
            ("completed_subframes", self.completed_subframes),
            ("deadline_misses", self.deadline_misses),
            ("drain_shed_subframes", self.drain_shed_subframes),
            ("watchdog_restarts", self.watchdog_restarts),
            ("reloads", self.reloads),
        ] {
            registry.set_counter(&format!("{prefix}{name}"), value);
        }
        registry.set_gauge(&format!("{prefix}queue_depth"), self.queue_depth as f64);
        registry.set_gauge(
            &format!("{prefix}queue_high_watermark"),
            self.queue_high_watermark as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = ServiceCounters::new();
        for _ in 0..10 {
            c.arrival();
        }
        for _ in 0..6 {
            c.admit();
        }
        c.reject_backpressure();
        c.reject_backpressure();
        c.reject_rate_limited();
        c.reject_malformed();
        c.shed(3);
        c.degraded();
        for _ in 0..5 {
            c.completed();
        }
        c.deadline_miss();
        c.drain_shed(1);
        c.watchdog_restart();
        c.reload();
        c.set_queue_depth(4);
        c.set_queue_depth(2);

        let s = c.snapshot();
        assert_eq!(s.arrivals, 10);
        assert_eq!(s.admitted, 6);
        assert_eq!(s.rejected_total(), 4);
        assert!(s.balanced());
        assert_eq!(s.shed_users, 3);
        assert_eq!(s.degraded_subframes, 1);
        assert_eq!(s.completed_subframes, 5);
        assert_eq!(s.deadline_misses, 1);
        assert_eq!(s.drain_shed_subframes, 1);
        assert_eq!(s.watchdog_restarts, 1);
        assert_eq!(s.reloads, 1);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queue_high_watermark, 4);
    }

    #[test]
    fn unbalanced_snapshot_is_detected() {
        let c = ServiceCounters::new();
        c.arrival();
        assert!(!c.snapshot().balanced());
        c.admit();
        assert!(c.snapshot().balanced());
    }

    #[test]
    fn snapshot_json_is_stable() {
        let c = ServiceCounters::new();
        c.arrival();
        c.admit();
        c.set_queue_depth(1);
        let json = c.snapshot().to_json();
        assert!(json.starts_with("{\"arrivals\":1,\"admitted\":1,"));
        assert!(json.ends_with("\"queue_depth\":1,\"queue_high_watermark\":1}"));
        // Same counters, same bytes.
        assert_eq!(json, c.snapshot().to_json());
    }

    #[test]
    fn export_lands_in_the_registry() {
        let c = ServiceCounters::new();
        c.arrival();
        c.admit();
        c.set_queue_depth(3);
        let registry = MetricsRegistry::new();
        c.snapshot().export(&registry, "serve_");
        let counters = registry.counters_with_prefix("serve_");
        assert!(counters.contains(&("serve_admitted".to_string(), 1)));
        let gauges = registry.gauges_with_prefix("serve_");
        assert!(gauges.contains(&("serve_queue_depth".to_string(), 3.0)));
    }
}
