//! Service-level objectives over rolling windows.
//!
//! An [`SloSpec`] declares the budgets a sustained run must hold —
//! deadline-miss rate, shed rate, and a p99 completion-latency bound —
//! and an [`SloTracker`] evaluates one [`WindowObservation`] per window
//! against them, computing SRE-style **burn rates** (observed error rate
//! over budgeted error rate; > 1 means the window consumed budget faster
//! than allowed). The spec carries plain numbers, so the tracker stays
//! dependency-free: callers map their own counters (`lte-fault`'s
//! `DeadlineBudget` overruns, `OverloadPolicy` shed/drop counts) into an
//! observation.

use crate::metrics::f64_json;

/// Budgets for one soak run. All rates are fractions in `[0, 1]` per
/// window; a `None` latency bound disables that objective.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSpec {
    /// Max fraction of subframes that may miss their deadline budget.
    pub max_miss_rate: f64,
    /// Max fraction of user jobs that may be shed or dropped.
    pub max_shed_rate: f64,
    /// p99 completion-latency bound, in the unit the caller's latency
    /// histogram records (cycles for the simulator).
    pub p99_latency_budget: Option<u64>,
}

impl SloSpec {
    /// The paper-shaped default: at most 1 % deadline misses, at most
    /// 1 % shed jobs, no latency bound until the caller knows its unit.
    pub fn default_budgets() -> Self {
        Self {
            max_miss_rate: 0.01,
            max_shed_rate: 0.01,
            p99_latency_budget: None,
        }
    }
}

/// What one completed window actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowObservation {
    /// Subframes dispatched in the window.
    pub subframes: u64,
    /// Subframes that missed their deadline budget.
    pub deadline_misses: u64,
    /// User jobs dispatched in the window.
    pub jobs: u64,
    /// User jobs shed or dropped by the overload policy.
    pub shed_jobs: u64,
    /// The window's p99 completion latency (same unit as the spec).
    pub p99_latency: u64,
}

/// Which objective a window violated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SloViolation {
    /// Deadline-miss rate exceeded `max_miss_rate`.
    MissRate {
        /// Observed miss fraction.
        observed: f64,
        /// Budgeted miss fraction.
        budget: f64,
    },
    /// Shed rate exceeded `max_shed_rate`.
    ShedRate {
        /// Observed shed fraction.
        observed: f64,
        /// Budgeted shed fraction.
        budget: f64,
    },
    /// p99 latency exceeded the latency budget.
    P99Latency {
        /// Observed p99 latency.
        observed: u64,
        /// Budgeted p99 latency.
        budget: u64,
    },
}

impl std::fmt::Display for SloViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SloViolation::MissRate { observed, budget } => {
                write!(f, "miss-rate {observed:.4} > budget {budget:.4}")
            }
            SloViolation::ShedRate { observed, budget } => {
                write!(f, "shed-rate {observed:.4} > budget {budget:.4}")
            }
            SloViolation::P99Latency { observed, budget } => {
                write!(f, "p99 latency {observed} > budget {budget}")
            }
        }
    }
}

/// One window's SLO evaluation: burn rates plus any violations.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowVerdict {
    /// Window ordinal (0-based).
    pub window: u64,
    /// Miss-rate burn: observed miss rate / budgeted miss rate.
    pub miss_burn: f64,
    /// Shed-rate burn: observed shed rate / budgeted shed rate.
    pub shed_burn: f64,
    /// Latency burn: observed p99 / budgeted p99 (0 when unbounded).
    pub latency_burn: f64,
    /// Objectives this window broke (empty = healthy).
    pub violations: Vec<SloViolation>,
}

impl WindowVerdict {
    /// `true` when every objective held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Flat deterministic JSON (fixed key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"window\":{},\"miss_burn\":{},\"shed_burn\":{},\
             \"latency_burn\":{},\"violations\":{}}}",
            self.window,
            f64_json(self.miss_burn),
            f64_json(self.shed_burn),
            f64_json(self.latency_burn),
            self.violations.len(),
        )
    }
}

/// Evaluates window observations against an [`SloSpec`] and remembers
/// every violation for the end-of-run exit status.
pub struct SloTracker {
    spec: SloSpec,
    windows: u64,
    violating_windows: u64,
    violations: Vec<(u64, SloViolation)>,
}

/// Observed error rate over budgeted error rate; saturates to 0 when
/// nothing was observed and to `observed > 0 ? inf-free large : 0` via
/// a plain ratio when the budget is zero but errors occurred.
fn burn(observed: f64, budget: f64) -> f64 {
    if observed == 0.0 {
        0.0
    } else if budget <= 0.0 {
        // Zero budget, nonzero errors: report the raw observed rate
        // scaled by 1e6 so it is finite, comparable, and obviously red.
        observed * 1e6
    } else {
        observed / budget
    }
}

impl SloTracker {
    /// A tracker with no windows observed yet.
    pub fn new(spec: SloSpec) -> Self {
        Self {
            spec,
            windows: 0,
            violating_windows: 0,
            violations: Vec::new(),
        }
    }

    /// The spec under evaluation.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Evaluates one completed window.
    pub fn observe(&mut self, obs: &WindowObservation) -> WindowVerdict {
        let window = self.windows;
        self.windows += 1;
        let miss_rate = if obs.subframes == 0 {
            0.0
        } else {
            obs.deadline_misses as f64 / obs.subframes as f64
        };
        let shed_rate = if obs.jobs == 0 {
            0.0
        } else {
            obs.shed_jobs as f64 / obs.jobs as f64
        };
        let mut violations = Vec::new();
        if miss_rate > self.spec.max_miss_rate {
            violations.push(SloViolation::MissRate {
                observed: miss_rate,
                budget: self.spec.max_miss_rate,
            });
        }
        if shed_rate > self.spec.max_shed_rate {
            violations.push(SloViolation::ShedRate {
                observed: shed_rate,
                budget: self.spec.max_shed_rate,
            });
        }
        let latency_burn = match self.spec.p99_latency_budget {
            None => 0.0,
            Some(budget) => {
                if obs.p99_latency > budget {
                    violations.push(SloViolation::P99Latency {
                        observed: obs.p99_latency,
                        budget,
                    });
                }
                if budget == 0 {
                    0.0
                } else {
                    obs.p99_latency as f64 / budget as f64
                }
            }
        };
        if !violations.is_empty() {
            self.violating_windows += 1;
            self.violations
                .extend(violations.iter().map(|v| (window, *v)));
        }
        WindowVerdict {
            window,
            miss_burn: burn(miss_rate, self.spec.max_miss_rate),
            shed_burn: burn(shed_rate, self.spec.max_shed_rate),
            latency_burn,
            violations,
        }
    }

    /// Windows evaluated so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Windows that broke at least one objective.
    pub fn violating_windows(&self) -> u64 {
        self.violating_windows
    }

    /// Every `(window, violation)` pair, in observation order.
    pub fn violations(&self) -> &[(u64, SloViolation)] {
        &self.violations
    }

    /// `true` when no window ever violated an objective.
    pub fn healthy(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec {
            max_miss_rate: 0.01,
            max_shed_rate: 0.02,
            p99_latency_budget: Some(1_000),
        }
    }

    #[test]
    fn healthy_window_has_no_violations() {
        let mut t = SloTracker::new(spec());
        let v = t.observe(&WindowObservation {
            subframes: 1_000,
            deadline_misses: 5,
            jobs: 10_000,
            shed_jobs: 100,
            p99_latency: 900,
        });
        assert!(v.ok());
        assert_eq!(v.miss_burn, 0.5);
        assert_eq!(v.shed_burn, 0.5);
        assert_eq!(v.latency_burn, 0.9);
        assert!(t.healthy());
    }

    #[test]
    fn each_objective_trips_independently() {
        let mut t = SloTracker::new(spec());
        let v = t.observe(&WindowObservation {
            subframes: 100,
            deadline_misses: 2, // 2% > 1%
            jobs: 1_000,
            shed_jobs: 30, // 3% > 2%
            p99_latency: 1_500,
        });
        assert_eq!(v.violations.len(), 3);
        assert!(!t.healthy());
        assert_eq!(t.violating_windows(), 1);
        assert_eq!(t.violations().len(), 3);
        assert_eq!(v.miss_burn, 2.0);
        assert_eq!(v.latency_burn, 1.5);
    }

    #[test]
    fn empty_window_is_healthy() {
        let mut t = SloTracker::new(spec());
        let v = t.observe(&WindowObservation::default());
        assert!(v.ok());
        assert_eq!(v.miss_burn, 0.0);
    }

    #[test]
    fn zero_budget_burn_is_finite() {
        let s = SloSpec {
            max_miss_rate: 0.0,
            max_shed_rate: 0.0,
            p99_latency_budget: None,
        };
        let mut t = SloTracker::new(s);
        let v = t.observe(&WindowObservation {
            subframes: 10,
            deadline_misses: 1,
            ..Default::default()
        });
        assert!(v.miss_burn.is_finite());
        assert!(!v.ok());
    }

    #[test]
    fn verdict_json_is_stable() {
        let mut t = SloTracker::new(spec());
        let v = t.observe(&WindowObservation {
            subframes: 1_000,
            deadline_misses: 0,
            jobs: 4_000,
            shed_jobs: 0,
            p99_latency: 500,
        });
        assert_eq!(
            v.to_json(),
            "{\"window\":0,\"miss_burn\":0.0,\"shed_burn\":0.0,\
             \"latency_burn\":0.5,\"violations\":0}"
        );
    }
}
