//! Chrome / Perfetto trace-event JSON exporter.
//!
//! Produces the classic `{"traceEvents": [...]}` format that both
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load. The layout:
//!
//! * **pid 0 "simulator"** — one thread (track) per simulated core.
//!   Core occupancy spans become `"X"` complete events named after the
//!   state (busy spans are named after their stage), coloured by state.
//!   Wake pulses, steals and dispatches become instant events; subframe
//!   latency spans become async `"b"`/`"e"` pairs so overlapping
//!   subframes stack.
//! * **pid 1 "phy"** — wall-clock PHY stage spans on one track.
//!
//! Simulator times are converted from simulated cycles to microseconds
//! with the configured clock; formatting is fixed-precision, so equal
//! event streams give byte-identical files.

use crate::event::{CoreState, Event, Stage};

/// Converts a recorded event stream into Chrome trace-event JSON.
pub struct PerfettoExporter {
    clock_hz: f64,
}

/// Escapes nothing: all names we emit are static snake_case strings.
/// Kept as a helper so the invariant is stated in one place.
fn us(cycles: u64, clock_hz: f64) -> String {
    // Fixed 3-decimal microsecond formatting keeps output deterministic
    // and sub-cycle precision is meaningless anyway.
    format!("{:.3}", cycles as f64 / clock_hz * 1.0e6)
}

fn color(state: CoreState) -> &'static str {
    // Standard chrome tracing palette names.
    match state {
        CoreState::Busy => "thread_state_running",
        CoreState::Spin => "thread_state_runnable",
        CoreState::Barrier => "thread_state_iowait",
        CoreState::NapReactive => "thread_state_sleeping",
        CoreState::NapProactive => "grey",
        CoreState::Dead => "black",
    }
}

impl PerfettoExporter {
    /// Creates an exporter that converts simulated cycles to wall time
    /// with the given core clock.
    pub fn new(clock_hz: f64) -> Self {
        assert!(clock_hz > 0.0, "clock must be positive");
        PerfettoExporter { clock_hz }
    }

    /// Renders the full trace document for `events`.
    ///
    /// `n_cores` controls how many simulator thread tracks get name
    /// metadata (cores that never emitted a span still appear).
    pub fn export(&self, events: &[Event], n_cores: usize) -> String {
        let mut lines: Vec<String> = Vec::with_capacity(events.len() + n_cores + 4);

        lines.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"simulator\"}}"
                .to_string(),
        );
        lines.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"phy\"}}"
                .to_string(),
        );
        lines.push(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"receiver stages\"}}"
                .to_string(),
        );
        for core in 0..n_cores {
            lines.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{core},\"args\":{{\"name\":\"core {core}\"}}}}"
            ));
        }

        for event in events {
            lines.push(self.event_line(event));
        }

        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&lines.join(",\n"));
        out.push_str("\n]}\n");
        out
    }

    fn event_line(&self, event: &Event) -> String {
        let hz = self.clock_hz;
        match event {
            Event::CoreSpan {
                core,
                state,
                start,
                end,
                stage,
                subframe,
            } => {
                let name = stage.map(Stage::name).unwrap_or_else(|| state.name());
                let mut args = String::from("{\"state\":\"");
                args.push_str(state.name());
                args.push('"');
                if let Some(sf) = subframe {
                    args.push_str(&format!(",\"subframe\":{sf}"));
                }
                args.push('}');
                format!(
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":0,\"tid\":{core},\"ts\":{},\"dur\":{},\"cname\":\"{}\",\"args\":{args}}}",
                    us(*start, hz),
                    us(end.saturating_sub(*start), hz),
                    color(*state),
                )
            }
            Event::WakePulse {
                core,
                t,
                status_only,
            } => format!(
                "{{\"name\":\"wake_pulse\",\"ph\":\"i\",\"pid\":0,\"tid\":{core},\"ts\":{},\"s\":\"t\",\"args\":{{\"status_only\":{status_only}}}}}",
                us(*t, hz),
            ),
            Event::Steal { thief, victim, t } => format!(
                "{{\"name\":\"steal\",\"ph\":\"i\",\"pid\":0,\"tid\":{thief},\"ts\":{},\"s\":\"t\",\"args\":{{\"victim\":{victim}}}}}",
                us(*t, hz),
            ),
            Event::StealFail { core, t } => format!(
                "{{\"name\":\"steal_fail\",\"ph\":\"i\",\"pid\":0,\"tid\":{core},\"ts\":{},\"s\":\"t\",\"args\":{{}}}}",
                us(*t, hz),
            ),
            Event::Dispatch {
                subframe,
                t,
                jobs,
                active_target,
            } => format!(
                "{{\"name\":\"dispatch\",\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":{},\"s\":\"p\",\"args\":{{\"subframe\":{subframe},\"jobs\":{jobs},\"active_target\":{active_target}}}}}",
                us(*t, hz),
            ),
            Event::SubframeSpan {
                subframe,
                start,
                end,
            } => format!(
                "{{\"name\":\"subframe\",\"cat\":\"latency\",\"ph\":\"b\",\"id\":{subframe},\"pid\":0,\"ts\":{},\"args\":{{\"subframe\":{subframe}}}}},\n\
                 {{\"name\":\"subframe\",\"cat\":\"latency\",\"ph\":\"e\",\"id\":{subframe},\"pid\":0,\"ts\":{},\"args\":{{}}}}",
                us(*start, hz),
                us(*end, hz),
            ),
            Event::StageSpan {
                stage,
                start_ns,
                end_ns,
            } => format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{:.3},\"dur\":{:.3},\"args\":{{}}}}",
                stage.name(),
                *start_ns as f64 / 1.0e3,
                end_ns.saturating_sub(*start_ns) as f64 / 1.0e3,
            ),
            Event::Sample {
                series,
                index,
                value,
            } => format!(
                "{{\"name\":\"{series}\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{index},\"args\":{{\"value\":{value}}}}}"
            ),
            Event::GovernorDecision {
                subframe,
                t,
                policy,
                estimated_activity,
                target,
            } => format!(
                "{{\"name\":\"governor.target\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{},\"args\":{{\"value\":{target},\"policy\":\"{policy}\",\"subframe\":{subframe},\"estimated_activity\":{estimated_activity}}}}}",
                us(*t, hz),
            ),
            Event::Fault {
                kind,
                core,
                subframe,
                t,
            } => {
                // Faults land on the attributed core's track (or track 0
                // when not core-specific) as process-scoped instants so
                // they stay visible at any zoom level.
                let tid = if *core == u32::MAX { 0 } else { *core };
                let mut args = format!("{{\"kind\":\"{}\"", kind.name());
                if *subframe != u32::MAX {
                    args.push_str(&format!(",\"subframe\":{subframe}"));
                }
                args.push('}');
                format!(
                    "{{\"name\":\"fault:{}\",\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"p\",\"args\":{args}}}",
                    kind.name(),
                    us(*t, hz),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_valid_jsonish_and_deterministic() {
        let events = vec![
            Event::CoreSpan {
                core: 1,
                state: CoreState::Busy,
                start: 700,
                end: 1400,
                stage: Some(Stage::Combine),
                subframe: Some(0),
            },
            Event::SubframeSpan {
                subframe: 0,
                start: 0,
                end: 2100,
            },
            Event::StageSpan {
                stage: Stage::Turbo,
                start_ns: 1000,
                end_ns: 3500,
            },
        ];
        let exporter = PerfettoExporter::new(700.0e6);
        let a = exporter.export(&events, 2);
        let b = exporter.export(&events, 2);
        assert_eq!(a, b, "export must be deterministic");
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.trim_end().ends_with("]}"));
        // 700 cycles at 700 MHz is exactly 1 µs.
        assert!(a.contains("\"ts\":1.000"), "{a}");
        assert!(a.contains("\"name\":\"combine\""));
        assert!(a.contains("\"ph\":\"b\""));
        assert!(a.contains("\"ph\":\"e\""));
        assert!(a.contains("\"name\":\"turbo\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn every_core_gets_a_named_track() {
        let exporter = PerfettoExporter::new(1.0e9);
        let doc = exporter.export(&[], 3);
        for core in 0..3 {
            assert!(doc.contains(&format!("\"name\":\"core {core}\"")));
        }
    }

    #[test]
    fn governor_decisions_render_as_counter_track() {
        let exporter = PerfettoExporter::new(700.0e6);
        let doc = exporter.export(
            &[Event::GovernorDecision {
                subframe: 3,
                t: 2_100_000,
                policy: "NAP+IDLE",
                estimated_activity: 0.4,
                target: 27,
            }],
            8,
        );
        assert!(doc.contains("\"name\":\"governor.target\""));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"value\":27"));
        assert!(doc.contains("\"policy\":\"NAP+IDLE\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn fault_events_render_as_instants() {
        use crate::event::FaultKind;
        let exporter = PerfettoExporter::new(700.0e6);
        let doc = exporter.export(
            &[
                Event::Fault {
                    kind: FaultKind::CoreDeath,
                    core: 5,
                    subframe: u32::MAX,
                    t: 700,
                },
                Event::Fault {
                    kind: FaultKind::HarqRecovery,
                    core: u32::MAX,
                    subframe: 9,
                    t: 1400,
                },
            ],
            8,
        );
        assert!(doc.contains("\"name\":\"fault:core_death\""));
        assert!(doc.contains("\"tid\":5"));
        assert!(doc.contains("\"name\":\"fault:harq_recovery\""));
        assert!(doc.contains("\"subframe\":9"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
