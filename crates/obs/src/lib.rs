//! `lte-obs`: the observability layer for the LTE uplink benchmark.
//!
//! Three pieces, all dependency-free and deterministic:
//!
//! * [`event`] / [`recorder`] — a flat [`Event`](event::Event) enum and
//!   the [`Recorder`](recorder::Recorder) trait with a zero-overhead
//!   [`NoopRecorder`](recorder::NoopRecorder) default plus ring-buffer
//!   and JSON-lines sinks. Instrumented crates (`lte-sched`, `lte-phy`,
//!   `lte-power`) are generic over `R: Recorder`, so disabled tracing
//!   compiles away entirely.
//! * [`metrics`] — a flat [`MetricsRegistry`](metrics::MetricsRegistry)
//!   of named counters/gauges with a sorted-key JSON snapshot.
//! * [`perfetto`] — a Chrome/Perfetto trace-event JSON exporter
//!   ([`PerfettoExporter`](perfetto::PerfettoExporter)) rendering one
//!   track per simulated core plus a wall-clock PHY stage track.

pub mod event;
pub mod metrics;
pub mod perfetto;
pub mod recorder;

pub use event::{CoreState, Event, FaultKind, Stage};
pub use metrics::{MetricValue, MetricsRegistry};
pub use perfetto::PerfettoExporter;
pub use recorder::{event_json, JsonLinesRecorder, NoopRecorder, Recorder, RingRecorder};

impl<R: Recorder> Recorder for &R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&self, event: Event) {
        (**self).record(event)
    }
}

impl<R: Recorder> Recorder for std::sync::Arc<R> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&self, event: Event) {
        (**self).record(event)
    }
}
