//! `lte-obs`: the observability layer for the LTE uplink benchmark.
//!
//! Three pieces, all dependency-free and deterministic:
//!
//! * [`event`] / [`recorder`] — a flat [`Event`](event::Event) enum and
//!   the [`Recorder`](recorder::Recorder) trait with a zero-overhead
//!   [`NoopRecorder`](recorder::NoopRecorder) default plus ring-buffer
//!   and JSON-lines sinks. Instrumented crates (`lte-sched`, `lte-phy`,
//!   `lte-power`) are generic over `R: Recorder`, so disabled tracing
//!   compiles away entirely.
//! * [`metrics`] — a flat [`MetricsRegistry`](metrics::MetricsRegistry)
//!   of named counters/gauges with a sorted-key JSON snapshot.
//! * [`perfetto`] — a Chrome/Perfetto trace-event JSON exporter
//!   ([`PerfettoExporter`](perfetto::PerfettoExporter)) rendering one
//!   track per simulated core plus a wall-clock PHY stage track.
//!
//! The continuous-telemetry layer adds four more:
//!
//! * [`hist`] — lock-free, zero-alloc-on-record HDR-style
//!   [`Histogram`](hist::Histogram)s with mergeable snapshots.
//! * [`window`] — [`RollingWindow`](window::RollingWindow) per-window
//!   aggregation of histograms/counters/gauges off the hot path.
//! * [`slo`] — [`SloSpec`](slo::SloSpec)/[`SloTracker`](slo::SloTracker)
//!   budget evaluation with burn rates.
//! * [`ebler`] — the R&S-`FetchStruct`-shaped
//!   [`EblerSurface`](ebler::EblerSurface) measurement surface.
//! * [`openmetrics`] — Prometheus/OpenMetrics text exposition of all of
//!   the above.

pub mod ebler;
pub mod event;
pub mod hist;
pub mod metrics;
pub mod openmetrics;
pub mod perfetto;
pub mod recorder;
pub mod service;
pub mod slo;
pub mod window;

pub use ebler::{EblerAccumulator, EblerBank, EblerSurface, StreamEbler};
pub use event::{CoreState, Event, FaultKind, Stage};
pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{f64_json, MetricValue, MetricsRegistry};
pub use openmetrics::{sanitize_metric_name, OpenMetrics};
pub use perfetto::PerfettoExporter;
pub use recorder::{event_json, JsonLinesRecorder, NoopRecorder, Recorder, RingRecorder};
pub use service::{ServiceCounters, ServiceSnapshot};
pub use slo::{SloSpec, SloTracker, SloViolation, WindowObservation, WindowVerdict};
pub use window::{Counter, Gauge, RollingWindow, WindowAggregate};

impl<R: Recorder> Recorder for &R {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&self, event: Event) {
        (**self).record(event)
    }
}

impl<R: Recorder> Recorder for std::sync::Arc<R> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&self, event: Event) {
        (**self).record(event)
    }
}
