//! Structured trace events.
//!
//! One flat [`Event`] enum covers every layer that emits telemetry: the
//! discrete-event simulator (core occupancy in simulated cycles), the
//! PHY receiver (stage spans in wall-clock nanoseconds) and the power
//! model (sampled series). Events carry plain integers/floats only, so
//! recording is allocation-free and a recorded stream is a pure function
//! of the run that produced it — the determinism tests depend on that.

/// A core's occupancy state, as traced by the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoreState {
    /// Executing useful work.
    Busy,
    /// Spinning while searching for work.
    Spin,
    /// Spinning at a phase barrier (user threads only).
    Barrier,
    /// Clock-gated by the reactive (IDLE) path.
    NapReactive,
    /// Clock-gated by the proactive (NAP) path.
    NapProactive,
    /// Fail-stopped by an injected fault; never runs again.
    Dead,
}

impl CoreState {
    /// Stable lower-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            CoreState::Busy => "busy",
            CoreState::Spin => "spin",
            CoreState::Barrier => "barrier",
            CoreState::NapReactive => "nap",
            CoreState::NapProactive => "nap_proactive",
            CoreState::Dead => "dead",
        }
    }
}

/// The kind of an injected or observed fault event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A burst of extra channel noise corrupted a user's subframe.
    NoiseBurst,
    /// Resource-grid cells were overwritten with garbage.
    GridCorruption,
    /// A task panicked and was caught by the pool/simulator.
    TaskPanic,
    /// A worker/core died (fail-stop).
    CoreDeath,
    /// A dead worker was respawned.
    WorkerRespawn,
    /// A core runs at a degraded frequency.
    SlowCore,
    /// A transport block failed CRC and entered HARQ.
    HarqRetransmit,
    /// HARQ chase combining recovered a transport block.
    HarqRecovery,
    /// A subframe missed its deadline budget.
    DeadlineOverrun,
    /// The overload policy dropped a whole subframe.
    SubframeDropped,
    /// The overload policy shed a user job.
    UserShed,
    /// The overload policy degraded demapping for a subframe.
    DemapDegraded,
}

impl FaultKind {
    /// Every kind, in a stable export order.
    pub const ALL: [FaultKind; 12] = [
        FaultKind::NoiseBurst,
        FaultKind::GridCorruption,
        FaultKind::TaskPanic,
        FaultKind::CoreDeath,
        FaultKind::WorkerRespawn,
        FaultKind::SlowCore,
        FaultKind::HarqRetransmit,
        FaultKind::HarqRecovery,
        FaultKind::DeadlineOverrun,
        FaultKind::SubframeDropped,
        FaultKind::UserShed,
        FaultKind::DemapDegraded,
    ];

    /// Stable snake_case name used in exports and metrics keys.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::NoiseBurst => "noise_burst",
            FaultKind::GridCorruption => "grid_corruption",
            FaultKind::TaskPanic => "task_panic",
            FaultKind::CoreDeath => "core_death",
            FaultKind::WorkerRespawn => "worker_respawn",
            FaultKind::SlowCore => "slow_core",
            FaultKind::HarqRetransmit => "harq_retransmit",
            FaultKind::HarqRecovery => "harq_recovery",
            FaultKind::DeadlineOverrun => "deadline_overrun",
            FaultKind::SubframeDropped => "subframe_dropped",
            FaultKind::UserShed => "user_shed",
            FaultKind::DemapDegraded => "demap_degraded",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A pipeline stage, both at simulator granularity (estimation /
/// weights / combine / finish task kinds) and at PHY kernel granularity
/// (matched filter, IFFT, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Channel-estimation task (one per rx × layer in the simulator).
    Estimation,
    /// MMSE combiner-weight computation on the user thread.
    Weights,
    /// Antenna combining + IFFT + demap task.
    Combine,
    /// Serial tail: deinterleave, decode, CRC.
    Finish,
    /// Matched filter against the reference sequence.
    MatchedFilter,
    /// IFFT of the matched-filter output to the delay domain.
    Ifft,
    /// Delay-domain windowing of the channel impulse response.
    Window,
    /// FFT back to the frequency domain.
    Fft,
    /// Per-symbol antenna combining.
    Combining,
    /// Soft demapping to LLRs.
    Demap,
    /// Deinterleave + descramble.
    Deinterleave,
    /// Turbo decode (or pass-through hard decision).
    Turbo,
    /// Transport-block CRC check.
    Crc,
}

impl Stage {
    /// Every stage, in pipeline order. Exports iterate this so output
    /// ordering is stable.
    pub const ALL: [Stage; 13] = [
        Stage::Estimation,
        Stage::Weights,
        Stage::Combine,
        Stage::Finish,
        Stage::MatchedFilter,
        Stage::Ifft,
        Stage::Window,
        Stage::Fft,
        Stage::Combining,
        Stage::Demap,
        Stage::Deinterleave,
        Stage::Turbo,
        Stage::Crc,
    ];

    /// The four coarse simulator task kinds.
    pub const SIM: [Stage; 4] = [
        Stage::Estimation,
        Stage::Weights,
        Stage::Combine,
        Stage::Finish,
    ];

    /// Stable snake_case name used in exports and metrics keys.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Estimation => "estimation",
            Stage::Weights => "weights",
            Stage::Combine => "combine",
            Stage::Finish => "finish",
            Stage::MatchedFilter => "matched_filter",
            Stage::Ifft => "ifft",
            Stage::Window => "window",
            Stage::Fft => "fft",
            Stage::Combining => "combining",
            Stage::Demap => "demap",
            Stage::Deinterleave => "deinterleave",
            Stage::Turbo => "turbo",
            Stage::Crc => "crc",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured trace event.
///
/// Simulator events carry times in **simulated cycles**; PHY stage spans
/// carry **wall-clock nanoseconds**; samples are dimensionless pairs.
/// Exporters translate to the target format's timebase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// A core occupied `state` over `[start, end)` cycles. Busy spans
    /// name the stage and subframe they worked for.
    CoreSpan {
        /// Worker core id.
        core: u32,
        /// Occupancy state over the span.
        state: CoreState,
        /// Span start, simulated cycles.
        start: u64,
        /// Span end, simulated cycles.
        end: u64,
        /// Stage attribution for busy spans.
        stage: Option<Stage>,
        /// Subframe attribution for busy spans.
        subframe: Option<u32>,
    },
    /// A napping core woke to poll for status/work.
    WakePulse {
        /// Worker core id.
        core: u32,
        /// Pulse time, simulated cycles.
        t: u64,
        /// `true` when the pulse only checked a status flag (proactive
        /// nap) rather than polling queues.
        status_only: bool,
    },
    /// A successful steal of one task.
    Steal {
        /// The stealing core.
        thief: u32,
        /// The core whose deque lost the task.
        victim: u32,
        /// Steal time, simulated cycles.
        t: u64,
    },
    /// A work search that found nothing to steal.
    StealFail {
        /// The searching core.
        core: u32,
        /// Search time, simulated cycles.
        t: u64,
    },
    /// A subframe was dispatched with `jobs` user jobs.
    Dispatch {
        /// Subframe index.
        subframe: u32,
        /// Dispatch time, simulated cycles.
        t: u64,
        /// User jobs in the subframe.
        jobs: u32,
        /// The policy's active-core target for the subframe.
        active_target: u32,
    },
    /// A subframe's full latency span: dispatch to last job completion.
    SubframeSpan {
        /// Subframe index.
        subframe: u32,
        /// Dispatch time, simulated cycles.
        start: u64,
        /// Completion time of the subframe's last job, simulated cycles.
        end: u64,
    },
    /// A wall-clock PHY stage span (real receiver execution).
    StageSpan {
        /// The PHY stage.
        stage: Stage,
        /// Span start, nanoseconds from an arbitrary epoch.
        start_ns: u64,
        /// Span end, nanoseconds from the same epoch.
        end_ns: u64,
    },
    /// One sample of a named series (e.g. power watts per bucket).
    Sample {
        /// Series name.
        series: &'static str,
        /// Sample index within the series.
        index: u64,
        /// Sample value.
        value: f64,
    },
    /// A power-governor decision at a subframe boundary: the estimated
    /// activity and the active-core target applied before dispatch.
    ///
    /// The *measured* activity of the window is not carried here — it
    /// only exists one boundary later, and lives in the governor's
    /// decision audit and the `governor.*` metrics instead.
    GovernorDecision {
        /// Subframe index the target applies to.
        subframe: u32,
        /// Decision time (simulated cycles, or a deterministic ordinal
        /// on the real pool).
        t: u64,
        /// Stable policy name (`NONAP`, `IDLE`, `NAP`, `NAP+IDLE`).
        policy: &'static str,
        /// Estimated Eq. 4 activity in `[0, 1]`.
        estimated_activity: f64,
        /// Eq. 5 active-core target.
        target: u32,
    },
    /// An injected fault or a recovery action, as an instant.
    ///
    /// Simulator-side faults carry times in simulated cycles; real-pool
    /// faults use an event ordinal (wall-clock would break determinism).
    Fault {
        /// The fault (or recovery) kind.
        kind: FaultKind,
        /// Core/worker attribution (`u32::MAX` when not core-specific).
        core: u32,
        /// Subframe attribution (`u32::MAX` when not subframe-specific).
        subframe: u32,
        /// Event time (simulated cycles, or a deterministic ordinal).
        t: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique_and_stable() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
        assert_eq!(Stage::MatchedFilter.to_string(), "matched_filter");
    }

    #[test]
    fn sim_stages_are_a_subset_of_all() {
        for s in Stage::SIM {
            assert!(Stage::ALL.contains(&s));
        }
    }

    #[test]
    fn fault_kind_names_are_unique_and_stable() {
        let mut names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultKind::ALL.len());
        assert_eq!(FaultKind::HarqRecovery.to_string(), "harq_recovery");
    }
}
