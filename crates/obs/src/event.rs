//! Structured trace events.
//!
//! One flat [`Event`] enum covers every layer that emits telemetry: the
//! discrete-event simulator (core occupancy in simulated cycles), the
//! PHY receiver (stage spans in wall-clock nanoseconds) and the power
//! model (sampled series). Events carry plain integers/floats only, so
//! recording is allocation-free and a recorded stream is a pure function
//! of the run that produced it — the determinism tests depend on that.

/// A core's occupancy state, as traced by the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoreState {
    /// Executing useful work.
    Busy,
    /// Spinning while searching for work.
    Spin,
    /// Spinning at a phase barrier (user threads only).
    Barrier,
    /// Clock-gated by the reactive (IDLE) path.
    NapReactive,
    /// Clock-gated by the proactive (NAP) path.
    NapProactive,
}

impl CoreState {
    /// Stable lower-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            CoreState::Busy => "busy",
            CoreState::Spin => "spin",
            CoreState::Barrier => "barrier",
            CoreState::NapReactive => "nap",
            CoreState::NapProactive => "nap_proactive",
        }
    }
}

/// A pipeline stage, both at simulator granularity (estimation /
/// weights / combine / finish task kinds) and at PHY kernel granularity
/// (matched filter, IFFT, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Channel-estimation task (one per rx × layer in the simulator).
    Estimation,
    /// MMSE combiner-weight computation on the user thread.
    Weights,
    /// Antenna combining + IFFT + demap task.
    Combine,
    /// Serial tail: deinterleave, decode, CRC.
    Finish,
    /// Matched filter against the reference sequence.
    MatchedFilter,
    /// IFFT of the matched-filter output to the delay domain.
    Ifft,
    /// Delay-domain windowing of the channel impulse response.
    Window,
    /// FFT back to the frequency domain.
    Fft,
    /// Per-symbol antenna combining.
    Combining,
    /// Soft demapping to LLRs.
    Demap,
    /// Deinterleave + descramble.
    Deinterleave,
    /// Turbo decode (or pass-through hard decision).
    Turbo,
    /// Transport-block CRC check.
    Crc,
}

impl Stage {
    /// Every stage, in pipeline order. Exports iterate this so output
    /// ordering is stable.
    pub const ALL: [Stage; 13] = [
        Stage::Estimation,
        Stage::Weights,
        Stage::Combine,
        Stage::Finish,
        Stage::MatchedFilter,
        Stage::Ifft,
        Stage::Window,
        Stage::Fft,
        Stage::Combining,
        Stage::Demap,
        Stage::Deinterleave,
        Stage::Turbo,
        Stage::Crc,
    ];

    /// The four coarse simulator task kinds.
    pub const SIM: [Stage; 4] = [
        Stage::Estimation,
        Stage::Weights,
        Stage::Combine,
        Stage::Finish,
    ];

    /// Stable snake_case name used in exports and metrics keys.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Estimation => "estimation",
            Stage::Weights => "weights",
            Stage::Combine => "combine",
            Stage::Finish => "finish",
            Stage::MatchedFilter => "matched_filter",
            Stage::Ifft => "ifft",
            Stage::Window => "window",
            Stage::Fft => "fft",
            Stage::Combining => "combining",
            Stage::Demap => "demap",
            Stage::Deinterleave => "deinterleave",
            Stage::Turbo => "turbo",
            Stage::Crc => "crc",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured trace event.
///
/// Simulator events carry times in **simulated cycles**; PHY stage spans
/// carry **wall-clock nanoseconds**; samples are dimensionless pairs.
/// Exporters translate to the target format's timebase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// A core occupied `state` over `[start, end)` cycles. Busy spans
    /// name the stage and subframe they worked for.
    CoreSpan {
        /// Worker core id.
        core: u32,
        /// Occupancy state over the span.
        state: CoreState,
        /// Span start, simulated cycles.
        start: u64,
        /// Span end, simulated cycles.
        end: u64,
        /// Stage attribution for busy spans.
        stage: Option<Stage>,
        /// Subframe attribution for busy spans.
        subframe: Option<u32>,
    },
    /// A napping core woke to poll for status/work.
    WakePulse {
        /// Worker core id.
        core: u32,
        /// Pulse time, simulated cycles.
        t: u64,
        /// `true` when the pulse only checked a status flag (proactive
        /// nap) rather than polling queues.
        status_only: bool,
    },
    /// A successful steal of one task.
    Steal {
        /// The stealing core.
        thief: u32,
        /// The core whose deque lost the task.
        victim: u32,
        /// Steal time, simulated cycles.
        t: u64,
    },
    /// A work search that found nothing to steal.
    StealFail {
        /// The searching core.
        core: u32,
        /// Search time, simulated cycles.
        t: u64,
    },
    /// A subframe was dispatched with `jobs` user jobs.
    Dispatch {
        /// Subframe index.
        subframe: u32,
        /// Dispatch time, simulated cycles.
        t: u64,
        /// User jobs in the subframe.
        jobs: u32,
        /// The policy's active-core target for the subframe.
        active_target: u32,
    },
    /// A subframe's full latency span: dispatch to last job completion.
    SubframeSpan {
        /// Subframe index.
        subframe: u32,
        /// Dispatch time, simulated cycles.
        start: u64,
        /// Completion time of the subframe's last job, simulated cycles.
        end: u64,
    },
    /// A wall-clock PHY stage span (real receiver execution).
    StageSpan {
        /// The PHY stage.
        stage: Stage,
        /// Span start, nanoseconds from an arbitrary epoch.
        start_ns: u64,
        /// Span end, nanoseconds from the same epoch.
        end_ns: u64,
    },
    /// One sample of a named series (e.g. power watts per bucket).
    Sample {
        /// Series name.
        series: &'static str,
        /// Sample index within the series.
        index: u64,
        /// Sample value.
        value: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique_and_stable() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::ALL.len());
        assert_eq!(Stage::MatchedFilter.to_string(), "matched_filter");
    }

    #[test]
    fn sim_stages_are_a_subset_of_all() {
        for s in Stage::SIM {
            assert!(Stage::ALL.contains(&s));
        }
    }
}
