//! A flat, deterministic metrics registry.
//!
//! Counters and gauges are keyed by `String` names (dotted paths such as
//! `worker.3.steals` or `stage.turbo.cycles`). Snapshots render as a
//! single JSON object with keys in sorted order, so two identical runs
//! serialize byte-identically.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Renders `v` as a JSON number that always reads back as a float
/// (`12` -> `"12.0"`); non-finite values render as `null`. The shared
/// float formatter behind every deterministic JSON export in this crate.
pub fn f64_json(v: f64) -> String {
    if v.is_finite() {
        let s = v.to_string();
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// A metric value: integer counters or floating-point gauges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic integer counter.
    Counter(u64),
    /// Point-in-time floating-point reading.
    Gauge(f64),
}

impl MetricValue {
    fn json(&self) -> String {
        match self {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => f64_json(*v),
        }
    }
}

/// A thread-safe registry of named metrics.
#[derive(Default)]
pub struct MetricsRegistry {
    values: Mutex<BTreeMap<String, MetricValue>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn add_counter(&self, name: &str, delta: u64) {
        let mut values = self.values.lock().unwrap_or_else(|e| e.into_inner());
        match values
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(v) => *v += delta,
            MetricValue::Gauge(_) => panic!("metric {name} is a gauge, not a counter"),
        }
    }

    /// Sets the counter `name` to an absolute value.
    pub fn set_counter(&self, name: &str, value: u64) {
        self.values
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Sets the gauge `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.values
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Reads one metric, if present.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.values
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .copied()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.values.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` when no metric has been touched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.values
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Every counter whose name starts with `prefix`, sorted by name —
    /// the query behind per-subsystem summaries (`pool.`, `sim.core.`)
    /// without copying the whole registry. Gauges are excluded.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.values
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter_map(|(k, v)| match v {
                MetricValue::Counter(c) if k.starts_with(prefix) => Some((k.clone(), *c)),
                _ => None,
            })
            .collect()
    }

    /// Every gauge whose name starts with `prefix`, sorted by name —
    /// the gauge twin of [`counters_with_prefix`](Self::counters_with_prefix).
    /// Counters are excluded.
    pub fn gauges_with_prefix(&self, prefix: &str) -> Vec<(String, f64)> {
        self.values
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter_map(|(k, v)| match v {
                MetricValue::Gauge(g) if k.starts_with(prefix) => Some((k.clone(), *g)),
                _ => None,
            })
            .collect()
    }

    /// The snapshot as one pretty-printed JSON object with sorted keys.
    pub fn to_json(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::from("{\n");
        for (i, (name, value)) in snapshot.iter().enumerate() {
            out.push_str(&format!("  \"{name}\": {}", value.json()));
            if i + 1 < snapshot.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.add_counter("worker.0.steals", 2);
        m.add_counter("worker.0.steals", 3);
        assert_eq!(m.get("worker.0.steals"), Some(MetricValue::Counter(5)));
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let m = MetricsRegistry::new();
        m.set_gauge("b.activity", 0.5);
        m.add_counter("a.count", 7);
        m.set_gauge("c.whole", 12.0);
        assert_eq!(
            m.to_json(),
            "{\n  \"a.count\": 7,\n  \"b.activity\": 0.5,\n  \"c.whole\": 12.0\n}\n"
        );
    }

    #[test]
    fn prefix_query_selects_sorted_counters_only() {
        let m = MetricsRegistry::new();
        m.set_counter("pool.worker.1.steals", 4);
        m.set_counter("pool.worker.0.steals", 9);
        m.set_counter("sim.jobs_total", 3);
        m.set_gauge("pool.activity", 0.5);
        assert_eq!(
            m.counters_with_prefix("pool."),
            vec![
                ("pool.worker.0.steals".to_string(), 9),
                ("pool.worker.1.steals".to_string(), 4),
            ]
        );
        assert!(m.counters_with_prefix("nothing.").is_empty());
    }

    #[test]
    fn prefix_query_selects_sorted_gauges_only() {
        let m = MetricsRegistry::new();
        m.set_gauge("pool.worker.1.activity", 0.25);
        m.set_gauge("pool.worker.0.activity", 0.75);
        m.set_gauge("sim.activity", 0.5);
        m.set_counter("pool.worker.0.steals", 9);
        assert_eq!(
            m.gauges_with_prefix("pool."),
            vec![
                ("pool.worker.0.activity".to_string(), 0.75),
                ("pool.worker.1.activity".to_string(), 0.25),
            ]
        );
        assert!(m.gauges_with_prefix("nothing.").is_empty());
    }

    #[test]
    fn empty_registry_renders_empty_object() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        assert_eq!(m.to_json(), "{\n}\n");
    }

    #[test]
    #[should_panic(expected = "gauge, not a counter")]
    fn type_confusion_is_rejected() {
        let m = MetricsRegistry::new();
        m.set_gauge("x", 1.0);
        m.add_counter("x", 1);
    }
}
