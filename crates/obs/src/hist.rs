//! Lock-free, zero-alloc-on-record HDR-style histograms.
//!
//! A [`Histogram`] covers the full `u64` range with log-linear buckets:
//! 32 linear sub-buckets per power of two, giving a worst-case relative
//! quantile error of 1/32 (≈ 3.1 %). Recording is one atomic add on the
//! bucket plus three atomic updates for sum/min/max — no locks, no heap,
//! so workers can record from the subframe hot path. Snapshots are plain
//! data ([`HistogramSnapshot`]) that merge associatively across workers
//! and windows and render deterministic JSON.
//!
//! Quantiles are reported as the **upper bound** of the bucket holding
//! the target rank (clamped to the exact recorded max), so the estimate
//! never under-reports a tail and two runs that recorded the same
//! multiset of values — in any order, from any number of threads —
//! produce byte-identical snapshots.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::f64_json;

/// Linear sub-buckets per power of two (2^[`SUB_BITS`]).
pub const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5;
/// Bucket groups: one linear group for values `< 32` plus one per
/// exponent in `5..=63`.
const GROUPS: usize = 64 - SUB_BITS as usize;
/// Total bucket count (1920; ~15 KiB of counters).
pub const BUCKETS: usize = (GROUPS + 1) * SUB_BUCKETS;

/// Index of the bucket covering `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let group = (exp - SUB_BITS + 1) as usize;
        let sub = ((v >> (exp - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        group * SUB_BUCKETS + sub
    }
}

/// `[lower, upper]` value range of bucket `idx` (inclusive).
fn bucket_bounds(idx: usize) -> (u64, u64) {
    let group = idx / SUB_BUCKETS;
    let sub = (idx % SUB_BUCKETS) as u64;
    if group == 0 {
        (sub, sub)
    } else {
        let shift = (group - 1) as u32;
        let lower = (SUB_BUCKETS as u64 + sub) << shift;
        // Width-minus-one first: the top bucket's upper bound is
        // u64::MAX and `lower + width` would overflow.
        (lower, lower + ((1u64 << shift) - 1))
    }
}

/// A concurrent log-linear histogram of `u64` values.
///
/// `record` is lock-free and allocation-free; `snapshot` /
/// `snapshot_and_reset` are meant for a control thread at window
/// boundaries, off the hot path.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram (the only allocation this type makes).
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free, allocation-free, ~4 relaxed RMWs.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records `n` occurrences of `v` with the same cost as one.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.read(|b| b.load(Ordering::Relaxed), false)
    }

    /// Copies the distribution and resets the live histogram to empty —
    /// the window-roll primitive. Values recorded concurrently with the
    /// reset land in either the returned snapshot or the next window
    /// (never both, never lost); call it at a quiescent boundary when
    /// exact window edges matter.
    pub fn snapshot_and_reset(&self) -> HistogramSnapshot {
        self.read(|b| b.swap(0, Ordering::Relaxed), true)
    }

    fn read(&self, mut load: impl FnMut(&AtomicU64) -> u64, reset: bool) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(&mut load).collect();
        let count: u64 = counts.iter().sum();
        let (sum, min, max) = if reset {
            (
                self.sum.swap(0, Ordering::Relaxed),
                self.min.swap(u64::MAX, Ordering::Relaxed),
                self.max.swap(0, Ordering::Relaxed),
            )
        } else {
            (
                self.sum.load(Ordering::Relaxed),
                self.min.load(Ordering::Relaxed),
                self.max.load(Ordering::Relaxed),
            )
        };
        HistogramSnapshot {
            counts,
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max,
        }
    }
}

/// A plain-data copy of a [`Histogram`]: mergeable, comparable, and
/// renderable as deterministic JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping).
    pub sum: u64,
    /// Exact smallest recorded value (0 when empty).
    pub min: u64,
    /// Exact largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding rank `ceil(q · count)`, clamped to the exact
    /// recorded maximum. Within `value/32` of the exact order statistic.
    ///
    /// Edge semantics are exact, not bucket-bound approximations: an
    /// empty snapshot returns 0 for every `q` (so an SLO gate on a
    /// window with zero samples reads 0, never a stale bucket bound),
    /// `q ≤ 0` returns the exact recorded minimum and `q ≥ 1` the exact
    /// recorded maximum. NaN is treated as 1.0 (the conservative tail).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 || q.is_nan() {
            return self.max;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(idx).1.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self`. Associative and commutative, so
    /// per-worker histograms merge to the same result in any order.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        if other.count > 0 {
            self.min = if self.count == other.count {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
    }

    /// Non-empty buckets as `(lower, upper, count)` triples, in value
    /// order — the sparse form exporters iterate.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }

    /// One-line JSON summary with fixed keys and canonical quantiles —
    /// byte-stable for identical distributions.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
            self.count,
            self.sum,
            self.min,
            self.max,
            f64_json(self.mean()),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_agree() {
        // Every bucket's bounds map back to the same bucket, boundaries
        // included, across the whole u64 range.
        for idx in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(bucket_index(lo), idx, "lower bound of bucket {idx}");
            assert_eq!(bucket_index(hi), idx, "upper bound of bucket {idx}");
            assert!(hi >= lo);
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 32);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 31);
        // Below 32 the buckets are exact, so every quantile is exact.
        assert_eq!(s.quantile(0.5), 15);
        assert_eq!(s.quantile(1.0), 31);
    }

    #[test]
    fn quantile_clamps_to_recorded_extremes() {
        let h = Histogram::new();
        h.record(1_000_003);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 1_000_003);
        assert_eq!(s.quantile(1.0), 1_000_003);
        assert_eq!(s.min, 1_000_003);
    }

    #[test]
    fn quantile_edges_are_exact_min_max() {
        // 100 and 120 share nothing: 100 lives in a width-2 bucket whose
        // upper bound is 101, so a bucket-bound answer for q=0 would be
        // 101, not the recorded min.
        let h = Histogram::new();
        h.record(100);
        h.record(120);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 100, "q=0 must be the exact min");
        assert_eq!(s.quantile(-1.0), 100);
        assert_eq!(s.quantile(1.0), 120, "q=1 must be the exact max");
        assert_eq!(s.quantile(2.0), 120);
        assert_eq!(s.quantile(f64::NAN), 120, "NaN resolves to the tail");
    }

    #[test]
    fn empty_snapshot_quantiles_are_zero_for_every_q() {
        let s = HistogramSnapshot::empty();
        for q in [-1.0, 0.0, 0.5, 0.99, 1.0, 2.0, f64::NAN] {
            assert_eq!(s.quantile(q), 0, "empty snapshot at q={q}");
        }
        // A live histogram that recorded nothing behaves the same.
        assert_eq!(Histogram::new().snapshot().quantile(0.99), 0);
    }

    #[test]
    fn snapshot_and_reset_empties_the_live_histogram() {
        let h = Histogram::new();
        h.record(7);
        h.record(70_000);
        let first = h.snapshot_and_reset();
        assert_eq!(first.count, 2);
        let second = h.snapshot();
        assert_eq!(second.count, 0);
        assert_eq!(second, HistogramSnapshot::empty());
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3u64, 99, 1_000, 123_456, 99, 7] {
            all.record(v);
        }
        for v in [3u64, 99, 1_000] {
            a.record(v);
        }
        for v in [123_456u64, 99, 7] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = Histogram::new();
        h.record(42);
        h.record(4_200_000);
        let base = h.snapshot();
        let mut merged = base.clone();
        merged.merge(&HistogramSnapshot::empty());
        assert_eq!(merged, base);
        let mut from_empty = HistogramSnapshot::empty();
        from_empty.merge(&base);
        assert_eq!(from_empty, base);
    }

    #[test]
    fn json_is_stable_and_flat() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        assert_eq!(
            h.snapshot().to_json(),
            "{\"count\":2,\"sum\":30,\"min\":10,\"max\":20,\"mean\":15.0,\
             \"p50\":10,\"p90\":20,\"p99\":20,\"p999\":20}"
        );
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_n(12_345, 4);
        for _ in 0..4 {
            b.record(12_345);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        a.record_n(1, 0);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3_009_999);
    }
}
