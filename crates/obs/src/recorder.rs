//! The [`Recorder`] trait and its three implementations.
//!
//! Instrumented code is generic over `R: Recorder` and guards every
//! emission with [`Recorder::enabled`]; with the default
//! [`NoopRecorder`] the guard is a compile-time constant `false`, the
//! match arms are dead code and the whole instrumentation inlines to
//! nothing — that is the zero-overhead-when-disabled contract the
//! `obs_overhead` bench pins down.

use std::sync::Mutex;

use crate::event::Event;

/// A sink for structured trace events.
///
/// Methods take `&self`: recording implementations use interior
/// mutability so one recorder can be shared by the simulator (single
/// thread) and the task pool / PHY pipeline (many threads).
pub trait Recorder: Send + Sync {
    /// `true` when events will actually be kept. Instrumentation sites
    /// check this before building an [`Event`], so a disabled recorder
    /// costs nothing.
    fn enabled(&self) -> bool;

    /// Records one event.
    fn record(&self, event: Event);
}

/// The default recorder: discards everything, compiles to nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&self, _event: Event) {}
}

/// Keeps the most recent `capacity` events in memory.
///
/// Intended for always-on flight-recorder use: bounded memory, cheap
/// appends, and the tail of the run is available after a failure.
pub struct RingRecorder {
    capacity: usize,
    inner: Mutex<RingInner>,
}

struct RingInner {
    events: Vec<Event>,
    /// Next write position once the ring has wrapped.
    head: usize,
    /// Total events ever recorded (including overwritten ones).
    total: u64,
}

impl RingRecorder {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingRecorder {
            capacity,
            inner: Mutex::new(RingInner {
                events: Vec::new(),
                head: 0,
                total: 0,
            }),
        }
    }

    /// Events in recording order (oldest surviving event first).
    pub fn events(&self) -> Vec<Event> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.events.len() < self.capacity {
            inner.events.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&inner.events[inner.head..]);
            out.extend_from_slice(&inner.events[..inner.head]);
            out
        }
    }

    /// Total events recorded over the recorder's lifetime, counting
    /// events the ring has since overwritten.
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).total
    }
}

impl Recorder for RingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.total += 1;
        if inner.events.len() < self.capacity {
            inner.events.push(event);
        } else {
            let head = inner.head;
            inner.events[head] = event;
            inner.head = (head + 1) % self.capacity;
        }
    }
}

/// Formats every event as one JSON object per line, in memory.
///
/// The line format is stable and append-only; `into_string` yields the
/// whole log for writing to a `.jsonl` file. Formatting uses only
/// integer and shortest-round-trip float printing, so identical runs
/// produce byte-identical logs.
#[derive(Default)]
pub struct JsonLinesRecorder {
    lines: Mutex<String>,
}

impl JsonLinesRecorder {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated JSON-lines log.
    pub fn into_string(self) -> String {
        self.lines.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of lines recorded so far.
    pub fn len(&self) -> usize {
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .lines()
            .count()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lines
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }
}

/// Renders one event as a single-line JSON object.
pub fn event_json(event: &Event) -> String {
    match event {
        Event::CoreSpan {
            core,
            state,
            start,
            end,
            stage,
            subframe,
        } => {
            let mut s = format!(
                "{{\"ev\":\"core\",\"core\":{core},\"state\":\"{}\",\"start\":{start},\"end\":{end}",
                state.name()
            );
            if let Some(stage) = stage {
                s.push_str(&format!(",\"stage\":\"{}\"", stage.name()));
            }
            if let Some(sf) = subframe {
                s.push_str(&format!(",\"subframe\":{sf}"));
            }
            s.push('}');
            s
        }
        Event::WakePulse {
            core,
            t,
            status_only,
        } => format!("{{\"ev\":\"wake\",\"core\":{core},\"t\":{t},\"status_only\":{status_only}}}"),
        Event::Steal { thief, victim, t } => {
            format!("{{\"ev\":\"steal\",\"thief\":{thief},\"victim\":{victim},\"t\":{t}}}")
        }
        Event::StealFail { core, t } => {
            format!("{{\"ev\":\"steal_fail\",\"core\":{core},\"t\":{t}}}")
        }
        Event::Dispatch {
            subframe,
            t,
            jobs,
            active_target,
        } => format!(
            "{{\"ev\":\"dispatch\",\"subframe\":{subframe},\"t\":{t},\"jobs\":{jobs},\"active_target\":{active_target}}}"
        ),
        Event::SubframeSpan {
            subframe,
            start,
            end,
        } => format!(
            "{{\"ev\":\"subframe\",\"subframe\":{subframe},\"start\":{start},\"end\":{end}}}"
        ),
        Event::StageSpan {
            stage,
            start_ns,
            end_ns,
        } => format!(
            "{{\"ev\":\"stage\",\"stage\":\"{}\",\"start_ns\":{start_ns},\"end_ns\":{end_ns}}}",
            stage.name()
        ),
        Event::Sample {
            series,
            index,
            value,
        } => format!("{{\"ev\":\"sample\",\"series\":\"{series}\",\"index\":{index},\"value\":{value}}}"),
        Event::GovernorDecision {
            subframe,
            t,
            policy,
            estimated_activity,
            target,
        } => format!(
            "{{\"ev\":\"governor\",\"subframe\":{subframe},\"t\":{t},\"policy\":\"{policy}\",\"estimated_activity\":{estimated_activity},\"target\":{target}}}"
        ),
        Event::Fault {
            kind,
            core,
            subframe,
            t,
        } => format!(
            "{{\"ev\":\"fault\",\"kind\":\"{}\",\"core\":{core},\"subframe\":{subframe},\"t\":{t}}}",
            kind.name()
        ),
    }
}

impl Recorder for JsonLinesRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let line = event_json(&event);
        let mut lines = self.lines.lock().unwrap_or_else(|e| e.into_inner());
        lines.push_str(&line);
        lines.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CoreState, Stage};

    fn span(i: u64) -> Event {
        Event::CoreSpan {
            core: 0,
            state: CoreState::Busy,
            start: i,
            end: i + 1,
            stage: Some(Stage::Combine),
            subframe: Some(3),
        }
    }

    #[test]
    fn noop_is_disabled() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        r.record(span(0)); // must not panic
    }

    #[test]
    fn ring_keeps_most_recent() {
        let r = RingRecorder::new(3);
        for i in 0..5 {
            r.record(span(i));
        }
        let events = r.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events,
            vec![span(2), span(3), span(4)],
            "oldest surviving first"
        );
        assert_eq!(r.total_recorded(), 5);
    }

    #[test]
    fn ring_below_capacity_returns_all() {
        let r = RingRecorder::new(10);
        r.record(span(0));
        r.record(span(1));
        assert_eq!(r.events(), vec![span(0), span(1)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_ring_rejected() {
        RingRecorder::new(0);
    }

    #[test]
    fn json_lines_format_is_stable() {
        let r = JsonLinesRecorder::new();
        r.record(span(7));
        r.record(Event::Sample {
            series: "power",
            index: 2,
            value: 16.5,
        });
        assert_eq!(r.len(), 2);
        let text = r.into_string();
        assert_eq!(
            text,
            "{\"ev\":\"core\",\"core\":0,\"state\":\"busy\",\"start\":7,\"end\":8,\"stage\":\"combine\",\"subframe\":3}\n\
             {\"ev\":\"sample\",\"series\":\"power\",\"index\":2,\"value\":16.5}\n"
        );
    }

    #[test]
    fn every_event_kind_renders_as_json_object() {
        let events = [
            span(0),
            Event::WakePulse {
                core: 1,
                t: 5,
                status_only: true,
            },
            Event::Steal {
                thief: 1,
                victim: 2,
                t: 9,
            },
            Event::StealFail { core: 4, t: 10 },
            Event::Dispatch {
                subframe: 0,
                t: 0,
                jobs: 3,
                active_target: 8,
            },
            Event::SubframeSpan {
                subframe: 0,
                start: 0,
                end: 100,
            },
            Event::StageSpan {
                stage: Stage::Turbo,
                start_ns: 10,
                end_ns: 20,
            },
            Event::Sample {
                series: "s",
                index: 0,
                value: 1.0,
            },
            Event::Fault {
                kind: crate::event::FaultKind::CoreDeath,
                core: 3,
                subframe: u32::MAX,
                t: 42,
            },
            Event::GovernorDecision {
                subframe: 7,
                t: 99,
                policy: "NAP+IDLE",
                estimated_activity: 0.25,
                target: 17,
            },
        ];
        for ev in &events {
            let json = event_json(ev);
            assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
            assert!(json.contains("\"ev\":"), "{json}");
        }
    }
}
