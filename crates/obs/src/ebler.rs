//! EBLER measurement surface.
//!
//! Mirrors the shape of the R&S CMW "Extended BLER" `FetchStruct`: per
//! stream, ACK/NACK/DTX counts and percentages, CRC pass/fail, BLER, and
//! throughput average/min/max in kbit/s. An [`EblerAccumulator`] is the
//! live, lock-free side — the benchmark loop records one decode outcome
//! per scheduled user per subframe — and an [`EblerSurface`] is its
//! plain-data snapshot with deterministic JSON. Because one LTE subframe
//! is exactly 1 ms, throughput in kbit/s equals decoded bits per
//! subframe, so the surface stays in integers until percentage time.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::f64_json;
use crate::window::WindowAggregate;

/// Live per-stream tallies. All updates are relaxed atomics.
struct StreamAccum {
    /// Transport blocks that passed CRC (counted as ACK).
    ack: AtomicU64,
    /// Transport blocks that failed CRC (counted as NACK).
    nack: AtomicU64,
    /// Scheduled transmissions with no decode at all (shed / dropped).
    dtx: AtomicU64,
    /// Total decoded (CRC-pass) payload bits.
    bits: AtomicU64,
    /// Smallest per-subframe decoded bit count seen.
    min_bits: AtomicU64,
    /// Largest per-subframe decoded bit count seen.
    max_bits: AtomicU64,
}

impl StreamAccum {
    fn new() -> Self {
        Self {
            ack: AtomicU64::new(0),
            nack: AtomicU64::new(0),
            dtx: AtomicU64::new(0),
            bits: AtomicU64::new(0),
            min_bits: AtomicU64::new(u64::MAX),
            max_bits: AtomicU64::new(0),
        }
    }

    #[inline]
    fn feed_bits(&self, bits: u64) {
        self.bits.fetch_add(bits, Ordering::Relaxed);
        self.min_bits.fetch_min(bits, Ordering::Relaxed);
        self.max_bits.fetch_max(bits, Ordering::Relaxed);
    }

    fn snapshot(&self, reset: bool) -> StreamEbler {
        let (ack, nack, dtx, bits, min_bits, max_bits) = if reset {
            (
                self.ack.swap(0, Ordering::Relaxed),
                self.nack.swap(0, Ordering::Relaxed),
                self.dtx.swap(0, Ordering::Relaxed),
                self.bits.swap(0, Ordering::Relaxed),
                self.min_bits.swap(u64::MAX, Ordering::Relaxed),
                self.max_bits.swap(0, Ordering::Relaxed),
            )
        } else {
            (
                self.ack.load(Ordering::Relaxed),
                self.nack.load(Ordering::Relaxed),
                self.dtx.load(Ordering::Relaxed),
                self.bits.load(Ordering::Relaxed),
                self.min_bits.load(Ordering::Relaxed),
                self.max_bits.load(Ordering::Relaxed),
            )
        };
        StreamEbler::from_counts(ack, nack, dtx, bits, min_bits, max_bits)
    }
}

/// The live EBLER accumulator: one slot per stream (user), recordable
/// from any thread without locks or allocation.
pub struct EblerAccumulator {
    streams: Vec<StreamAccum>,
}

impl EblerAccumulator {
    /// An accumulator for `streams` parallel streams (users).
    pub fn new(streams: usize) -> Self {
        Self {
            streams: (0..streams).map(|_| StreamAccum::new()).collect(),
        }
    }

    /// Number of streams.
    pub fn streams(&self) -> usize {
        self.streams.len()
    }

    /// Records one decode outcome: CRC verdict plus the payload bits
    /// that survived (counted only when the CRC passed).
    #[inline]
    pub fn record_decode(&self, stream: usize, crc_ok: bool, payload_bits: u64) {
        let s = &self.streams[stream];
        if crc_ok {
            s.ack.fetch_add(1, Ordering::Relaxed);
            s.feed_bits(payload_bits);
        } else {
            s.nack.fetch_add(1, Ordering::Relaxed);
            s.feed_bits(0);
        }
    }

    /// Records a scheduled transmission that was never decoded (user
    /// shed, subframe dropped): DTX, zero throughput.
    #[inline]
    pub fn record_dtx(&self, stream: usize) {
        let s = &self.streams[stream];
        s.dtx.fetch_add(1, Ordering::Relaxed);
        s.feed_bits(0);
    }

    /// Point-in-time surface across all streams.
    pub fn snapshot(&self) -> EblerSurface {
        self.build(false)
    }

    fn build(&self, reset: bool) -> EblerSurface {
        let streams: Vec<StreamEbler> = self.streams.iter().map(|s| s.snapshot(reset)).collect();
        let mut total_counts = (0u64, 0u64, 0u64, 0u64, u64::MAX, 0u64);
        for s in &streams {
            total_counts.0 += s.ack;
            total_counts.1 += s.nack;
            total_counts.2 += s.dtx;
            total_counts.3 += s.throughput_bits;
            if s.measured() > 0 {
                total_counts.4 = total_counts.4.min(s.throughput_min_kbps as u64);
                total_counts.5 = total_counts.5.max(s.throughput_max_kbps as u64);
            }
        }
        let total = StreamEbler::from_counts(
            total_counts.0,
            total_counts.1,
            total_counts.2,
            total_counts.3,
            total_counts.4,
            total_counts.5,
        );
        EblerSurface { streams, total }
    }
}

impl WindowAggregate for EblerAccumulator {
    type Snapshot = EblerSurface;

    fn snapshot_and_reset(&self) -> EblerSurface {
        self.build(true)
    }
}

/// One stream's measured EBLER block, FetchStruct-shaped.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamEbler {
    /// ACKed (CRC-pass) transport blocks.
    pub ack: u64,
    /// NACKed (CRC-fail) transport blocks.
    pub nack: u64,
    /// Scheduled but undecoded transmissions.
    pub dtx: u64,
    /// ACK percentage of all scheduled transmissions.
    pub ack_pct: f64,
    /// NACK percentage of all scheduled transmissions.
    pub nack_pct: f64,
    /// DTX percentage of all scheduled transmissions.
    pub dtx_pct: f64,
    /// Block error ratio in percent: (NACK + DTX) / scheduled.
    pub bler_pct: f64,
    /// CRC passes (mirrors `ack` until HARQ feedback diverges them).
    pub crc_pass: u64,
    /// CRC failures (mirrors `nack`).
    pub crc_fail: u64,
    /// Total decoded payload bits (1 subframe = 1 ms, so bits per
    /// subframe are kbit/s).
    pub throughput_bits: u64,
    /// Average throughput in kbit/s over measured subframes.
    pub throughput_avg_kbps: f64,
    /// Minimum per-subframe throughput in kbit/s.
    pub throughput_min_kbps: f64,
    /// Maximum per-subframe throughput in kbit/s.
    pub throughput_max_kbps: f64,
}

impl StreamEbler {
    fn from_counts(ack: u64, nack: u64, dtx: u64, bits: u64, min_bits: u64, max_bits: u64) -> Self {
        let measured = ack + nack + dtx;
        let pct = |n: u64| {
            if measured == 0 {
                0.0
            } else {
                100.0 * n as f64 / measured as f64
            }
        };
        Self {
            ack,
            nack,
            dtx,
            ack_pct: pct(ack),
            nack_pct: pct(nack),
            dtx_pct: pct(dtx),
            bler_pct: pct(nack + dtx),
            crc_pass: ack,
            crc_fail: nack,
            throughput_bits: bits,
            throughput_avg_kbps: if measured == 0 {
                0.0
            } else {
                bits as f64 / measured as f64
            },
            throughput_min_kbps: if measured == 0 { 0.0 } else { min_bits as f64 },
            throughput_max_kbps: max_bits as f64,
        }
    }

    /// Scheduled transmissions measured into this block.
    pub fn measured(&self) -> u64 {
        self.ack + self.nack + self.dtx
    }

    /// Flat deterministic JSON object (fixed key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ack\":{},\"nack\":{},\"dtx\":{},\
             \"ack_pct\":{},\"nack_pct\":{},\"dtx_pct\":{},\"bler_pct\":{},\
             \"crc_pass\":{},\"crc_fail\":{},\
             \"throughput_avg_kbps\":{},\"throughput_min_kbps\":{},\
             \"throughput_max_kbps\":{}}}",
            self.ack,
            self.nack,
            self.dtx,
            f64_json(self.ack_pct),
            f64_json(self.nack_pct),
            f64_json(self.dtx_pct),
            f64_json(self.bler_pct),
            self.crc_pass,
            self.crc_fail,
            f64_json(self.throughput_avg_kbps),
            f64_json(self.throughput_min_kbps),
            f64_json(self.throughput_max_kbps),
        )
    }
}

/// The full measurement surface: every stream plus the aggregate.
#[derive(Clone, Debug, PartialEq)]
pub struct EblerSurface {
    /// Per-stream blocks, in stream order.
    pub streams: Vec<StreamEbler>,
    /// All streams folded together (min/max taken across streams).
    pub total: StreamEbler,
}

impl EblerSurface {
    /// Deterministic JSON: `{"total":{...},"streams":[{...},...]}`.
    pub fn to_json(&self) -> String {
        let streams: Vec<String> = self.streams.iter().map(StreamEbler::to_json).collect();
        format!(
            "{{\"total\":{},\"streams\":[{}]}}",
            self.total.to_json(),
            streams.join(",")
        )
    }
}

/// A labelled bank of EBLER accumulators — one per cell — plus a
/// running aggregate, all recordable concurrently from worker threads.
/// This is the multi-cell measurement surface: the deployment layer
/// records each decode under its cell's label, and the snapshot yields
/// one FetchStruct-shaped [`EblerSurface`] per cell plus the
/// deployment-wide aggregate (the "all cells folded together" block a
/// tester would read off the instrument).
pub struct EblerBank {
    cells: Vec<(String, EblerAccumulator)>,
    aggregate: EblerAccumulator,
}

impl EblerBank {
    /// A bank with one accumulator of `streams` streams per label.
    pub fn new<L: Into<String>>(labels: impl IntoIterator<Item = L>, streams: usize) -> Self {
        Self {
            cells: labels
                .into_iter()
                .map(|l| (l.into(), EblerAccumulator::new(streams)))
                .collect(),
            aggregate: EblerAccumulator::new(streams),
        }
    }

    /// Number of labelled cells.
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// The label of cell `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn label(&self, cell: usize) -> &str {
        &self.cells[cell].0
    }

    /// Records one decode outcome under `cell` and in the aggregate.
    ///
    /// # Panics
    ///
    /// Panics if `cell` or `stream` is out of range.
    #[inline]
    pub fn record_decode(&self, cell: usize, stream: usize, crc_ok: bool, payload_bits: u64) {
        self.cells[cell]
            .1
            .record_decode(stream, crc_ok, payload_bits);
        self.aggregate.record_decode(stream, crc_ok, payload_bits);
    }

    /// Records a scheduled-but-undecoded transmission (DTX) under
    /// `cell` and in the aggregate.
    ///
    /// # Panics
    ///
    /// Panics if `cell` or `stream` is out of range.
    #[inline]
    pub fn record_dtx(&self, cell: usize, stream: usize) {
        self.cells[cell].1.record_dtx(stream);
        self.aggregate.record_dtx(stream);
    }

    /// One cell's point-in-time surface.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn cell_snapshot(&self, cell: usize) -> EblerSurface {
        self.cells[cell].1.snapshot()
    }

    /// The deployment-wide aggregate surface.
    pub fn aggregate_snapshot(&self) -> EblerSurface {
        self.aggregate.snapshot()
    }

    /// Deterministic JSON:
    /// `{"aggregate":{...},"cells":[{"label":"...","ebler":{...}},...]}`.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|(label, acc)| {
                format!(
                    "{{\"label\":\"{label}\",\"ebler\":{}}}",
                    acc.snapshot().to_json()
                )
            })
            .collect();
        format!(
            "{{\"aggregate\":{},\"cells\":[{}]}}",
            self.aggregate.snapshot().to_json(),
            cells.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_percentages_tally() {
        let acc = EblerAccumulator::new(2);
        acc.record_decode(0, true, 1_000);
        acc.record_decode(0, true, 3_000);
        acc.record_decode(0, false, 0);
        acc.record_dtx(1);
        acc.record_decode(1, true, 2_000);
        let s = acc.snapshot();
        assert_eq!(s.streams[0].ack, 2);
        assert_eq!(s.streams[0].nack, 1);
        assert_eq!(s.streams[0].crc_fail, 1);
        assert_eq!(s.streams[1].dtx, 1);
        assert_eq!(s.total.measured(), 5);
        assert_eq!(s.total.throughput_bits, 6_000);
        assert_eq!(s.total.ack_pct, 60.0);
        assert_eq!(s.total.bler_pct, 40.0);
        // Stream 0: 3 measured subframes carrying 1000/3000/0 bits.
        assert_eq!(s.streams[0].throughput_min_kbps, 0.0);
        assert_eq!(s.streams[0].throughput_max_kbps, 3_000.0);
        assert_eq!(s.streams[0].throughput_avg_kbps, 4_000.0 / 3.0);
    }

    #[test]
    fn empty_surface_is_all_zero() {
        let acc = EblerAccumulator::new(1);
        let s = acc.snapshot();
        assert_eq!(s.total.measured(), 0);
        assert_eq!(s.total.bler_pct, 0.0);
        assert_eq!(s.total.throughput_min_kbps, 0.0);
    }

    #[test]
    fn window_reset_clears_counts() {
        let acc = EblerAccumulator::new(1);
        acc.record_decode(0, true, 500);
        let first = acc.snapshot_and_reset();
        assert_eq!(first.total.ack, 1);
        let second = acc.snapshot();
        assert_eq!(second.total.measured(), 0);
    }

    #[test]
    fn bank_splits_per_cell_and_aggregates() {
        let bank = EblerBank::new(["cell0", "cell1"], 2);
        bank.record_decode(0, 0, true, 1_000);
        bank.record_decode(1, 0, false, 0);
        bank.record_dtx(1, 1);
        assert_eq!(bank.cells(), 2);
        assert_eq!(bank.label(1), "cell1");
        let c0 = bank.cell_snapshot(0);
        let c1 = bank.cell_snapshot(1);
        assert_eq!(c0.total.ack, 1);
        assert_eq!(c0.total.measured(), 1);
        assert_eq!(c1.total.nack, 1);
        assert_eq!(c1.total.dtx, 1);
        let agg = bank.aggregate_snapshot();
        assert_eq!(agg.total.measured(), 3);
        assert_eq!(agg.total.ack, 1);
        assert_eq!(agg.total.crc_fail, 1);
        let json = bank.to_json();
        assert!(json.starts_with("{\"aggregate\":{\"total\":{\"ack\":1,"));
        assert!(json.contains("\"label\":\"cell0\""));
        assert!(json.contains("\"label\":\"cell1\""));
    }

    #[test]
    fn json_shape_is_stable() {
        let acc = EblerAccumulator::new(1);
        acc.record_decode(0, true, 100);
        let json = acc.snapshot().to_json();
        assert!(json.starts_with("{\"total\":{\"ack\":1,"));
        assert!(json.contains("\"streams\":[{\"ack\":1,"));
        assert!(json.contains("\"throughput_avg_kbps\":100.0"));
    }
}
