//! Rolling-window aggregation.
//!
//! The hot path records into live, lock-free aggregates ([`Histogram`],
//! [`Counter`], [`Gauge`]); a control thread calls
//! [`RollingWindow::tick`] once per item (subframe) and the window rolls
//! itself every `window_len` items by snapshotting and resetting the
//! live aggregate. The hot path never sees a window boundary — it only
//! ever touches atomics.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::{Histogram, HistogramSnapshot};

/// A live aggregate that can be atomically drained into a plain-data
/// snapshot at a window boundary.
pub trait WindowAggregate {
    /// The plain-data form pushed into the window history.
    type Snapshot;

    /// Copies the current state and resets the live aggregate for the
    /// next window.
    fn snapshot_and_reset(&self) -> Self::Snapshot;
}

impl WindowAggregate for Histogram {
    type Snapshot = HistogramSnapshot;

    fn snapshot_and_reset(&self) -> HistogramSnapshot {
        Histogram::snapshot_and_reset(self)
    }
}

/// A monotonic, lock-free counter that resets at window boundaries.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta`. Lock-free, allocation-free.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value within the live window.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl WindowAggregate for Counter {
    type Snapshot = u64;

    fn snapshot_and_reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A lock-free point-in-time gauge (f64 bits in an atomic word).
///
/// Unlike counters and histograms, a gauge is not cumulative, so a
/// window snapshot reads the latest value and leaves it in place.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge reading 0.0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a new reading.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Latest reading.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl WindowAggregate for Gauge {
    type Snapshot = f64;

    fn snapshot_and_reset(&self) -> f64 {
        self.get()
    }
}

/// Per-window snapshots of a live aggregate.
///
/// Owns the live aggregate (hand the hot path a reference via
/// [`live`](Self::live) — all aggregates record through `&self`) plus
/// the history of completed windows.
pub struct RollingWindow<T: WindowAggregate> {
    live: T,
    window_len: u64,
    filled: u64,
    snapshots: Vec<T::Snapshot>,
}

impl<T: WindowAggregate> RollingWindow<T> {
    /// Wraps `live` with a boundary every `window_len` ticks.
    pub fn new(window_len: u64, live: T) -> Self {
        assert!(window_len > 0, "window length must be positive");
        Self {
            live,
            window_len,
            filled: 0,
            snapshots: Vec::new(),
        }
    }

    /// The live aggregate the hot path records into.
    pub fn live(&self) -> &T {
        &self.live
    }

    /// Counts one item; when the window fills, rolls it and returns the
    /// completed snapshot.
    pub fn tick(&mut self) -> Option<&T::Snapshot> {
        self.filled += 1;
        if self.filled >= self.window_len {
            Some(self.roll())
        } else {
            None
        }
    }

    /// Forces a window boundary now (e.g. to flush a final partial
    /// window) and returns the completed snapshot.
    pub fn roll(&mut self) -> &T::Snapshot {
        self.filled = 0;
        self.snapshots.push(self.live.snapshot_and_reset());
        self.snapshots.last().expect("just pushed")
    }

    /// Items recorded into the live (not yet rolled) window.
    pub fn live_len(&self) -> u64 {
        self.filled
    }

    /// Configured items per window.
    pub fn window_len(&self) -> u64 {
        self.window_len
    }

    /// Completed window snapshots, oldest first.
    pub fn snapshots(&self) -> &[T::Snapshot] {
        &self.snapshots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_rolls_every_n_ticks() {
        let mut w = RollingWindow::new(3, Counter::new());
        for i in 1..=7u64 {
            w.live().add(i);
            let rolled = w.tick().copied();
            match i {
                3 => assert_eq!(rolled, Some(1 + 2 + 3)),
                6 => assert_eq!(rolled, Some(4 + 5 + 6)),
                _ => assert_eq!(rolled, None),
            }
        }
        assert_eq!(w.live_len(), 1);
        assert_eq!(*w.roll(), 7);
        assert_eq!(w.snapshots(), &[6, 15, 7]);
    }

    #[test]
    fn histogram_windows_are_independent() {
        let mut w = RollingWindow::new(2, Histogram::new());
        w.live().record(10);
        w.tick();
        w.live().record(1_000);
        w.tick();
        w.live().record(7);
        w.roll();
        assert_eq!(w.snapshots().len(), 2);
        assert_eq!(w.snapshots()[0].count, 2);
        assert_eq!(w.snapshots()[0].max, 1_000);
        assert_eq!(w.snapshots()[1].count, 1);
        assert_eq!(w.snapshots()[1].max, 7);
    }

    #[test]
    fn gauge_persists_across_windows() {
        let mut w = RollingWindow::new(1, Gauge::new());
        w.live().set(2.5);
        w.tick();
        w.tick();
        assert_eq!(w.snapshots(), &[2.5, 2.5]);
        assert_eq!(w.live().get(), 2.5);
    }
}
