//! Property tests for the HDR histogram.
//!
//! Across randomized value distributions, every quantile estimate must
//! sit within the log-linear bucket-resolution bound of the exact order
//! statistic: `exact <= estimate <= exact + exact/32`. Merging must be
//! associative and agree with recording everything into one histogram,
//! because the soak path merges per-worker and per-window snapshots in
//! whatever order the run produced them.

use lte_obs::{Histogram, HistogramSnapshot};

/// SplitMix64 — a tiny deterministic generator so the test needs no
/// external RNG crate.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One sampled distribution: a name plus its value stream.
fn distributions(seed: u64, n: usize) -> Vec<(&'static str, Vec<u64>)> {
    let mut rng = SplitMix64(seed);
    let uniform_small: Vec<u64> = (0..n).map(|_| rng.next() % 100).collect();
    let uniform_wide: Vec<u64> = (0..n).map(|_| rng.next() % 10_000_000).collect();
    // Log-uniform: exercises every bucket group, not just one decade.
    let log_uniform: Vec<u64> = (0..n)
        .map(|_| {
            let shift = rng.next() % 50;
            (rng.next() % 1024) << shift
        })
        .collect();
    // Latency-shaped: a tight body plus a 1 % far tail — the case the
    // p999 gate cares about.
    let heavy_tail: Vec<u64> = (0..n)
        .map(|_| {
            let base = 50_000 + rng.next() % 5_000;
            if rng.next().is_multiple_of(100) {
                base * 40
            } else {
                base
            }
        })
        .collect();
    let constant: Vec<u64> = vec![123_456; n];
    let bimodal: Vec<u64> = (0..n)
        .map(|_| {
            if rng.next().is_multiple_of(2) {
                10 + rng.next() % 5
            } else {
                1_000_000 + rng.next() % 100_000
            }
        })
        .collect();
    vec![
        ("uniform_small", uniform_small),
        ("uniform_wide", uniform_wide),
        ("log_uniform", log_uniform),
        ("heavy_tail", heavy_tail),
        ("constant", constant),
        ("bimodal", bimodal),
    ]
}

/// The exact order statistic at the same rank the histogram targets.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let count = sorted.len() as u64;
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    sorted[(rank - 1) as usize]
}

#[test]
fn quantiles_stay_within_bucket_resolution() {
    let quantiles = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
    for round in 0..4u64 {
        for (name, values) in distributions(0xC0FFEE ^ round, 20_000) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let snap = h.snapshot();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            assert_eq!(snap.count, sorted.len() as u64, "{name}: count");
            assert_eq!(snap.min, sorted[0], "{name}: exact min");
            assert_eq!(snap.max, *sorted.last().unwrap(), "{name}: exact max");
            for &q in &quantiles {
                let exact = exact_quantile(&sorted, q);
                let est = snap.quantile(q);
                assert!(
                    est >= exact,
                    "{name} q={q}: estimate {est} under-reports exact {exact}"
                );
                assert!(
                    est - exact <= exact / 32,
                    "{name} q={q}: estimate {est} beyond bucket resolution of exact {exact}"
                );
            }
        }
    }
}

#[test]
fn merge_is_associative_and_matches_single_histogram() {
    for round in 0..4u64 {
        for (name, values) in distributions(0xBEEF ^ round, 9_999) {
            let mut rng = SplitMix64(round.wrapping_mul(0x5EED).wrapping_add(1));
            // Partition the stream into three worker histograms.
            let parts = [Histogram::new(), Histogram::new(), Histogram::new()];
            let whole = Histogram::new();
            for &v in &values {
                parts[(rng.next() % 3) as usize].record(v);
                whole.record(v);
            }
            let [a, b, c] = parts.map(|h| h.snapshot());

            // (a ⊕ b) ⊕ c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a ⊕ (b ⊕ c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);

            assert_eq!(left, right, "{name}: merge not associative");
            assert_eq!(
                left,
                whole.snapshot(),
                "{name}: merge differs from single histogram"
            );

            // Identity element on both sides.
            let mut with_empty = left.clone();
            with_empty.merge(&HistogramSnapshot::empty());
            assert_eq!(with_empty, left, "{name}: right identity");
            let mut from_empty = HistogramSnapshot::empty();
            from_empty.merge(&left);
            assert_eq!(from_empty, left, "{name}: left identity");
        }
    }
}
