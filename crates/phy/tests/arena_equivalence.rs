//! Property test: the pooled (arena) receive path must be bit-for-bit
//! identical to the allocating reference path — same payload bytes, same
//! CRC verdict — across randomized PRB counts, layer counts, modulations,
//! SNRs, and turbo modes, with dirty scratch reused between trials.

use lte_dsp::fft::FftPlanner;
use lte_dsp::{Modulation, Xoshiro256};
use lte_phy::params::{CellConfig, TurboMode, UserConfig};
use lte_phy::receiver::{process_user_pooled, process_user_with_planner};
use lte_phy::tx::synthesize_user_with_mode;

#[test]
fn pooled_path_matches_allocating_path_across_random_configs() {
    let cell = CellConfig::default();
    let planner = FftPlanner::new();
    let mut rng = Xoshiro256::seed_from_u64(0xA11C);
    let prb_choices = [2usize, 4, 6, 10, 15, 25, 50];
    let mods = [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64];
    for trial in 0..24 {
        let prbs = prb_choices[rng.next_below(prb_choices.len() as u64) as usize];
        let layers = 1 + rng.next_below(4) as usize;
        let modulation = mods[rng.next_below(mods.len() as u64) as usize];
        let snr_db = 20.0 + 15.0 * rng.next_f64();
        let mode = if rng.next_below(2) == 0 {
            TurboMode::Passthrough
        } else {
            TurboMode::Decode { iterations: 2 }
        };
        let user = UserConfig::new(prbs, layers, modulation);
        let input = synthesize_user_with_mode(&cell, &user, mode, snr_db, &mut rng);
        let fresh = process_user_with_planner(&cell, &input, mode, &planner);
        // Scratch is deliberately NOT cleared between trials: each config
        // must produce identical bits even through dirty, wrong-shaped
        // reused buffers.
        let pooled = process_user_pooled(&cell, &input, mode, &planner);
        assert_eq!(
            fresh, pooled,
            "trial {trial}: {modulation} x{layers} prbs {prbs} {mode:?} diverged"
        );
    }
}
