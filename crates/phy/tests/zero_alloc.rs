//! Regression guard for the zero-allocation hot path.
//!
//! Installs a counting [`GlobalAlloc`] wrapper and asserts the pooled
//! per-subframe receive performs **zero** heap allocations once every
//! cache the pipeline reads (FFT plans, sub-block interleavers, reference
//! sequences, thread-local scratch) is warm. Any new `Vec`/`Box` on the
//! steady-state path fails this test with the exact allocation count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use lte_dsp::fft::FftPlanner;
use lte_dsp::interleave::prewarm_subblock;
use lte_dsp::{Modulation, Xoshiro256};
use lte_obs::{Counter, EblerAccumulator, Histogram, Stage};
use lte_phy::params::{CellConfig, TurboMode, UserConfig};
use lte_phy::receiver::{process_user_pooled, UserScratch};
use lte_phy::trace::StageHists;
use lte_phy::tx::{prewarm_references, synthesize_user, synthesize_user_with_mode};

/// Forwards to the system allocator, counting every allocation (fresh,
/// zeroed, and growing reallocations — the three ways the hot path could
/// touch the heap).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn run_once_with_mode(
    cell: &CellConfig,
    input: &lte_phy::grid::UserInput,
    mode: TurboMode,
    planner: &FftPlanner,
) {
    let result = process_user_pooled(cell, input, mode, planner);
    assert!(result.crc_ok, "steady-state subframe must pass CRC");
    // Return the payload buffer to the pool so the next subframe can
    // reuse it — exactly what the benchmark worker loop does.
    UserScratch::with(|s| s.arena.recycle_u8(result.payload));
}

fn run_once(cell: &CellConfig, input: &lte_phy::grid::UserInput, planner: &FftPlanner) {
    run_once_with_mode(cell, input, TurboMode::Passthrough, planner);
}

#[test]
fn steady_state_subframe_is_allocation_free() {
    let cell = CellConfig::default();
    let user = UserConfig::new(25, 2, Modulation::Qam16);
    let planner = FftPlanner::new();
    let mut rng = Xoshiro256::seed_from_u64(42);
    let input = synthesize_user(&cell, &user, 35.0, &mut rng);

    // Warm every cache the hot path reads, then let the scratch pools
    // grow to their steady-state sizes.
    planner.prewarm([user.prbs]);
    prewarm_subblock([user.bits_per_subframe()]);
    prewarm_references(&cell, &user);
    for _ in 0..3 {
        run_once(&cell, &input, &planner);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..5 {
        run_once(&cell, &input, &planner);
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "steady-state subframe processing hit the heap {delta} times"
    );
}

/// The same guarantee in turbo-decode mode: once the per-worker
/// [`lte_phy::receiver::TurboScratch`] codec cache and workspaces are
/// warm, the full decode tail — rate dematch, SISO iterations,
/// desegmentation, transport CRC — must not touch the heap. This is the
/// regression guard for the per-subframe `TurboDecoder::new` the decode
/// branch used to perform.
#[test]
fn steady_state_turbo_subframe_is_allocation_free() {
    let cell = CellConfig::default();
    let user = UserConfig::new(25, 2, Modulation::Qam16);
    let mode = TurboMode::Decode { iterations: 4 };
    let planner = FftPlanner::new();
    let mut rng = Xoshiro256::seed_from_u64(44);
    let input = synthesize_user_with_mode(&cell, &user, mode, 35.0, &mut rng);

    // Warm every cache the hot path reads — including the turbo codec
    // cache, whose QPP interleavers are built on the first decode.
    planner.prewarm([user.prbs]);
    prewarm_subblock([user.bits_per_subframe()]);
    prewarm_references(&cell, &user);
    for _ in 0..3 {
        run_once_with_mode(&cell, &input, mode, &planner);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..5 {
        run_once_with_mode(&cell, &input, mode, &planner);
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "steady-state turbo subframe processing hit the heap {delta} times"
    );
}

/// The soak path records continuous telemetry around every subframe:
/// a latency histogram sample, per-stage histogram samples, the EBLER
/// decode outcome, and window counters. All of that must stay off the
/// heap too, or long soaks would slowly churn the allocator.
#[test]
fn telemetry_recording_is_allocation_free() {
    let cell = CellConfig::default();
    let user = UserConfig::new(25, 2, Modulation::Qam16);
    let planner = FftPlanner::new();
    let mut rng = Xoshiro256::seed_from_u64(43);
    let input = synthesize_user(&cell, &user, 35.0, &mut rng);

    planner.prewarm([user.prbs]);
    prewarm_subblock([user.bits_per_subframe()]);
    prewarm_references(&cell, &user);

    // Construct every telemetry sink up front (construction allocates;
    // recording must not).
    let latency = Histogram::new();
    let stage_hists = StageHists::new();
    let ebler = EblerAccumulator::new(1);
    let subframes = Counter::new();

    for _ in 0..3 {
        run_once(&cell, &input, &planner);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for round in 0..5u64 {
        let result = process_user_pooled(&cell, &input, TurboMode::Passthrough, &planner);
        latency.record(1_000 * (round + 1));
        stage_hists.record(Stage::Turbo, 500 + round);
        stage_hists.record(Stage::Crc, 50 + round);
        ebler.record_decode(0, result.crc_ok, (result.payload.len() * 8) as u64);
        subframes.add(1);
        UserScratch::with(|s| s.arena.recycle_u8(result.payload));
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "telemetry-instrumented subframe processing hit the heap {delta} times"
    );
    assert_eq!(latency.snapshot().count, 5);
    assert_eq!(ebler.snapshot().total.ack, 5);
    assert_eq!(subframes.get(), 5);
}
