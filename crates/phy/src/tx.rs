//! UE-side transmitter and subframe input synthesis.
//!
//! The benchmark generates its subframe input data at initialisation
//! (§IV-B1 of the paper). To give the receiver *meaningful* work we model
//! the full SC-FDMA uplink transmit chain — CRC attachment, optional turbo
//! coding, interleaving, modulation mapping, DFT precoding, layer mapping,
//! DM-RS insertion — then pass everything through a MIMO fading channel
//! with AWGN. The ground-truth payload rides along so the receiver's CRC
//! and the golden-reference verifier can be checked end to end.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use lte_dsp::channel::{add_awgn, noise_var_for_snr_db, MimoChannel};
use lte_dsp::crc::CRC24A;
use lte_dsp::fft::FftPlanner;
use lte_dsp::interleave::subblock_cached;
use lte_dsp::rate_match::RateMatcher;
use lte_dsp::scrambling::{pusch_c_init, scramble_bits};
use lte_dsp::segmentation::Segmentation;
use lte_dsp::turbo::TurboEncoder;
use lte_dsp::zadoff_chu::{layer_cyclic_shift, ReferenceSequence};
use lte_dsp::{Complex32, Xoshiro256};

use crate::grid::{RxSlot, RxSymbol, UserInput};
use crate::params::{CellConfig, TurboMode, UserConfig, DATA_SYMBOLS_PER_SLOT, SLOTS_PER_SUBFRAME};

/// How one user's subframe bits are framed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FramePlan {
    /// CRC24A-protected payload fills the whole allocation (turbo
    /// pass-through — the paper's default).
    Passthrough {
        /// Information bits (allocation minus the 24 CRC bits).
        payload_bits: usize,
    },
    /// Turbo-coded with TS 36.212 code-block segmentation and
    /// circular-buffer rate matching: the transport block (payload +
    /// CRC24A) is split into `n_blocks` code blocks of `block_size` bits
    /// (per-block CRC-24B when segmented), each block is turbo encoded
    /// and rate-matched to exactly its share of the allocation — no
    /// filler, effective rate ≈ 1/3.
    Coded {
        /// Transport-block bits including the CRC-24A.
        transport_bits: usize,
        /// Number of turbo code blocks `C`.
        n_blocks: usize,
        /// Uniform code-block size `K`.
        block_size: usize,
        /// Coded bits on air (= the full allocation).
        coded_bits: usize,
        /// Always zero with rate matching (kept for reporting).
        filler: usize,
    },
}

/// Per-block transmitted-bit shares: `total` split as evenly as possible
/// over `c` blocks (the first `total % c` blocks get one extra bit).
pub fn rate_match_shares(total: usize, c: usize) -> Vec<usize> {
    assert!(c > 0, "need at least one block");
    let base = total / c;
    let rem = total % c;
    (0..c).map(|i| base + usize::from(i < rem)).collect()
}

impl FramePlan {
    /// Derives the framing for a user/mode pair.
    ///
    /// # Panics
    ///
    /// Panics if the allocation is too small to carry a CRC-protected
    /// payload (cannot happen for valid [`UserConfig`]s).
    pub fn for_user(user: &UserConfig, mode: TurboMode) -> Self {
        let total = user.bits_per_subframe();
        assert!(total > 24, "allocation too small for a CRC");
        match mode {
            TurboMode::Passthrough => FramePlan::Passthrough {
                payload_bits: total - 24,
            },
            TurboMode::Decode { .. } => {
                // Target mother rate 1/3: the rate matcher absorbs the
                // mismatch between 3·C·(K+4) and the allocation by light
                // puncturing or repetition.
                let b = (total / 3).saturating_sub(16).max(25);
                let shape = Segmentation::shape_for_len(b);
                FramePlan::Coded {
                    transport_bits: b,
                    n_blocks: shape.n_blocks,
                    block_size: shape.block_size,
                    coded_bits: total,
                    filler: 0,
                }
            }
        }
    }

    /// Information (payload) bits carried.
    pub fn payload_bits(&self) -> usize {
        match *self {
            FramePlan::Passthrough { payload_bits } => payload_bits,
            FramePlan::Coded { transport_bits, .. } => transport_bits - 24,
        }
    }
}

/// Encodes a payload into channel bits for the allocation (CRC, optional
/// turbo coding, filler, interleaving).
///
/// # Panics
///
/// Panics if `payload.len() != plan.payload_bits()`.
pub fn encode_frame(
    cell: &CellConfig,
    user: &UserConfig,
    mode: TurboMode,
    payload: &[u8],
) -> Vec<u8> {
    let plan = FramePlan::for_user(user, mode);
    assert_eq!(
        payload.len(),
        plan.payload_bits(),
        "payload length mismatch"
    );
    let total = user.bits_per_subframe();
    let mut bits = payload.to_vec();
    CRC24A.append_bits(&mut bits);
    let channel_bits = match plan {
        FramePlan::Passthrough { .. } => bits,
        FramePlan::Coded { block_size, .. } => {
            let seg = Segmentation::segment(&bits);
            let encoder = TurboEncoder::new(block_size);
            let matcher = RateMatcher::new(block_size);
            let shares = rate_match_shares(total, seg.n_blocks());
            let mut out = Vec::with_capacity(total);
            for (block, &e) in seg.blocks.iter().zip(&shares) {
                let code = encoder.encode(block);
                out.extend(matcher.match_bits(&code, e));
            }
            out
        }
    };
    debug_assert_eq!(channel_bits.len(), total);
    let mut out = subblock_cached(total).apply(&channel_bits);
    // TS 36.211 §7.2 scrambling: after interleaving, before modulation.
    scramble_bits(&mut out, scrambling_init(cell, user));
    out
}

/// The Gold-sequence initialisation for a user's allocation. A real
/// eNodeB seeds this from the UE's RNTI and the serving cell's
/// physical-cell identity; the benchmark derives a stable
/// pseudo-identity from the allocation parameters and takes the cell id
/// from [`CellConfig::cell_id`], so co-scheduled users in different
/// cells scramble differently while transmitter and receiver agree
/// without extra plumbing.
pub fn scrambling_init(cell: &CellConfig, user: &UserConfig) -> u32 {
    let rnti = (user.prbs * 29 + user.layers * 7 + user.modulation.bits_per_symbol()) as u16;
    pusch_c_init(rnti, 0, 0, cell.cell_id as u16)
}

/// The denominator used for layer cyclic shifts: at least 2 so a
/// single-layer user still leaves half the impulse-response span free
/// of wrap-around ambiguity. Both the DM-RS generation and the blind
/// noise estimator's window layout derive from this one value.
pub fn shift_denominator(user: &UserConfig) -> usize {
    user.layers.max(2)
}

/// The per-layer DM-RS sequence for a user's allocation.
pub fn reference_for_layer(
    cell: &CellConfig,
    user: &UserConfig,
    layer: usize,
) -> ReferenceSequence {
    ReferenceSequence::new(user.subcarriers(), cell.zc_root)
        .with_cyclic_shift(layer_cyclic_shift(layer, shift_denominator(user)))
}

/// Key: `(subcarriers, zc_root, layer, shift denominator)`.
type ReferenceKey = (usize, usize, usize, usize);

fn reference_cache() -> &'static RwLock<HashMap<ReferenceKey, Arc<ReferenceSequence>>> {
    static CACHE: OnceLock<RwLock<HashMap<ReferenceKey, Arc<ReferenceSequence>>>> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// [`reference_for_layer`] through a global read-mostly cache.
///
/// Generating a DM-RS sequence evaluates a complex exponential per
/// subcarrier; the estimator needs the same handful of sequences on
/// every subframe, so the steady-state path must not regenerate (or
/// lock) anything. [`prewarm_references`] fills the cache up front.
pub fn reference_for_layer_cached(
    cell: &CellConfig,
    user: &UserConfig,
    layer: usize,
) -> Arc<ReferenceSequence> {
    let key = (
        user.subcarriers(),
        cell.zc_root,
        layer,
        shift_denominator(user),
    );
    if let Some(seq) = reference_cache()
        .read()
        .expect("reference cache poisoned")
        .get(&key)
    {
        return Arc::clone(seq);
    }
    let mut map = reference_cache().write().expect("reference cache poisoned");
    Arc::clone(
        map.entry(key)
            .or_insert_with(|| Arc::new(reference_for_layer(cell, user, layer))),
    )
}

/// Builds every DM-RS sequence a user's subframe needs (all layers), so
/// the estimation tasks never pay sequence generation or a write lock.
pub fn prewarm_references(cell: &CellConfig, user: &UserConfig) {
    for layer in 0..user.layers {
        reference_for_layer_cached(cell, user, layer);
    }
}

/// Prewarms every global and planner cache one cell's user population
/// touches: DM-RS reference sequences (keyed on `(subcarriers, zc_root,
/// layer, shift denominator)`, so cells with distinct roots never alias),
/// the sub-block interleavers for each allocation's bit count (keyed on
/// size alone — cell-independent by construction, identical for every
/// cell), and the FFT plans for each allocation width. Multi-cell
/// deployments call this once per (cell, distinct user config) before
/// the timed region so no cache write lock is ever taken on the
/// steady-state path.
pub fn prewarm_cell(cell: &CellConfig, users: &[UserConfig], planner: &FftPlanner) {
    for user in users {
        prewarm_references(cell, user);
        lte_dsp::interleave::prewarm_subblock([user.bits_per_subframe()]);
    }
    planner.prewarm(users.iter().map(|u| u.prbs));
}

/// Splits interleaved channel bits into per-(slot, symbol, layer) chunks in
/// the canonical transmission order. Chunk `[(slot·6 + sym)·L + layer]`
/// carries `subcarriers × bits_per_symbol` bits.
pub fn split_bits<'a>(user: &UserConfig, bits: &'a [u8]) -> Vec<&'a [u8]> {
    let chunk = user.subcarriers() * user.modulation.bits_per_symbol();
    assert_eq!(
        bits.len(),
        chunk * SLOTS_PER_SUBFRAME * DATA_SYMBOLS_PER_SLOT * user.layers
    );
    bits.chunks_exact(chunk).collect()
}

/// Synthesises one user's received subframe over a random MIMO channel at
/// the given SNR, using the paper's default pass-through framing.
pub fn synthesize_user(
    cell: &CellConfig,
    user: &UserConfig,
    snr_db: f64,
    rng: &mut Xoshiro256,
) -> UserInput {
    synthesize_user_with_mode(cell, user, TurboMode::Passthrough, snr_db, rng)
}

/// Synthesises one user's received subframe with explicit framing mode.
pub fn synthesize_user_with_mode(
    cell: &CellConfig,
    user: &UserConfig,
    mode: TurboMode,
    snr_db: f64,
    rng: &mut Xoshiro256,
) -> UserInput {
    let n_sc = user.subcarriers();
    let n_taps = (n_sc / 16).clamp(1, 6);
    let channel = MimoChannel::randomize(cell.n_rx, user.layers, n_taps, rng);
    synthesize_user_over_channel(cell, user, mode, snr_db, &channel, rng)
}

/// Synthesises one user's received subframe over a caller-provided channel
/// realisation (used by tests with identity channels).
pub fn synthesize_user_over_channel(
    cell: &CellConfig,
    user: &UserConfig,
    mode: TurboMode,
    snr_db: f64,
    channel: &MimoChannel,
    rng: &mut Xoshiro256,
) -> UserInput {
    // Payload first, then channel noise — preserves the historical draw
    // order so seeded tests and golden records stay bit-exact.
    let plan = FramePlan::for_user(user, mode);
    let payload: Vec<u8> = (0..plan.payload_bits())
        .map(|_| (rng.next_u64() & 1) as u8)
        .collect();
    synthesize_payload_over_channel(cell, user, mode, &payload, snr_db, channel, rng)
}

/// Synthesises a HARQ retransmission: the *same* transport block
/// (identical payload, hence identical encoded bits and scrambling) sent
/// again over a freshly drawn channel with fresh noise. Chase combining
/// on the receive side adds the attempts' LLRs together.
///
/// # Panics
///
/// Panics if `payload.len()` does not match the user's framing plan.
pub fn synthesize_retransmission(
    cell: &CellConfig,
    user: &UserConfig,
    mode: TurboMode,
    payload: &[u8],
    snr_db: f64,
    rng: &mut Xoshiro256,
) -> UserInput {
    let n_sc = user.subcarriers();
    let n_taps = (n_sc / 16).clamp(1, 6);
    let channel = MimoChannel::randomize(cell.n_rx, user.layers, n_taps, rng);
    synthesize_payload_over_channel(cell, user, mode, payload, snr_db, &channel, rng)
}

/// Synthesises one user's received subframe for an explicit payload over
/// an explicit channel realisation — the primitive behind both the
/// first transmission and HARQ retransmissions.
///
/// # Panics
///
/// Panics if the channel dimensions don't match `cell`/`user`, or if
/// `payload.len() != FramePlan::for_user(user, mode).payload_bits()`.
pub fn synthesize_payload_over_channel(
    cell: &CellConfig,
    user: &UserConfig,
    mode: TurboMode,
    payload: &[u8],
    snr_db: f64,
    channel: &MimoChannel,
    rng: &mut Xoshiro256,
) -> UserInput {
    assert_eq!(channel.n_rx(), cell.n_rx, "channel antenna mismatch");
    assert_eq!(channel.n_layers(), user.layers, "channel layer mismatch");
    let n_sc = user.subcarriers();
    let noise_var = noise_var_for_snr_db(snr_db);
    let planner = FftPlanner::new();
    let dft = planner.forward(n_sc);

    let channel_bits = encode_frame(cell, user, mode, payload);
    let chunks = split_bits(user, &channel_bits);

    // Per-layer reference sequences (transmitted simultaneously by all
    // layers during the reference symbol).
    let references: Vec<Vec<Complex32>> = (0..user.layers)
        .map(|l| reference_for_layer(cell, user, l).samples().to_vec())
        .collect();

    // The channel is static over the subframe: compute every (rx, layer)
    // frequency response once and reuse it for all 14 symbols.
    let responses = channel.responses(n_sc);

    let mut slots = Vec::with_capacity(SLOTS_PER_SUBFRAME);
    for slot in 0..SLOTS_PER_SUBFRAME {
        // Reference symbol through the channel.
        let mut ref_rx_rows = channel.apply_with(&responses, &references);
        for row in &mut ref_rx_rows {
            add_awgn(row, noise_var, rng);
        }
        let reference = RxSymbol::new(ref_rx_rows);

        // Data symbols: modulate, DFT-precode, through the channel.
        let mut data = Vec::with_capacity(DATA_SYMBOLS_PER_SLOT);
        for sym in 0..DATA_SYMBOLS_PER_SLOT {
            let layers_fd: Vec<Vec<Complex32>> = (0..user.layers)
                .map(|layer| {
                    let chunk_idx = (slot * DATA_SYMBOLS_PER_SLOT + sym) * user.layers + layer;
                    let mut symbols = user.modulation.map_bits(chunks[chunk_idx]);
                    dft.process(&mut symbols); // SC-FDMA DFT precoding
                    symbols
                })
                .collect();
            let mut rx_rows = channel.apply_with(&responses, &layers_fd);
            for row in &mut rx_rows {
                add_awgn(row, noise_var, rng);
            }
            data.push(RxSymbol::new(rx_rows));
        }
        slots.push(RxSlot::new(reference, data));
    }

    let input = UserInput {
        config: *user,
        slots,
        noise_var,
        ground_truth: payload.to_vec(),
    };
    input.validate();
    input
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_dsp::Modulation;

    #[test]
    fn frame_plan_passthrough_uses_whole_allocation() {
        let user = UserConfig::new(4, 1, Modulation::Qpsk);
        let plan = FramePlan::for_user(&user, TurboMode::Passthrough);
        assert_eq!(plan.payload_bits(), user.bits_per_subframe() - 24);
    }

    #[test]
    fn frame_plan_coded_fits_allocation() {
        for prbs in [2usize, 10, 50, 200] {
            for layers in 1..=4 {
                let user = UserConfig::new(prbs, layers, Modulation::Qam64);
                let plan = FramePlan::for_user(&user, TurboMode::Decode { iterations: 4 });
                if let FramePlan::Coded {
                    n_blocks,
                    block_size,
                    coded_bits,
                    filler,
                    transport_bits,
                } = plan
                {
                    // Rate matching fills the allocation exactly.
                    assert_eq!(coded_bits, user.bits_per_subframe());
                    assert_eq!(filler, 0);
                    assert!(block_size <= 6144);
                    assert!(transport_bits > 24);
                    assert!(n_blocks >= 1);
                    // Effective code rate near the 1/3 mother rate.
                    let rate = transport_bits as f64 / coded_bits as f64;
                    assert!(
                        (0.25..=0.34).contains(&rate),
                        "{prbs} PRBs x{layers}: rate {rate:.3}"
                    );
                } else {
                    panic!("expected coded plan");
                }
            }
        }
    }

    #[test]
    fn encode_frame_length_and_determinism() {
        let cell = CellConfig::default();
        let user = UserConfig::new(3, 2, Modulation::Qam16);
        let plan = FramePlan::for_user(&user, TurboMode::Passthrough);
        let payload = vec![1u8; plan.payload_bits()];
        let a = encode_frame(&cell, &user, TurboMode::Passthrough, &payload);
        let b = encode_frame(&cell, &user, TurboMode::Passthrough, &payload);
        assert_eq!(a.len(), user.bits_per_subframe());
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_cell_identities_scramble_differently() {
        // Two cells with different physical-cell identities must encode
        // the same payload to different channel bits (cell-specific
        // scrambling), while the legacy constructor reproduces the
        // historical single-cell sequence exactly.
        let user = UserConfig::new(3, 1, Modulation::Qpsk);
        let plan = FramePlan::for_user(&user, TurboMode::Passthrough);
        let payload = vec![1u8; plan.payload_bits()];
        let legacy = CellConfig::with_antennas(2);
        let a = CellConfig::with_identity(2, 0);
        let b = CellConfig::with_identity(2, 1);
        let bits_legacy = encode_frame(&legacy, &user, TurboMode::Passthrough, &payload);
        let bits_a = encode_frame(&a, &user, TurboMode::Passthrough, &payload);
        let bits_b = encode_frame(&b, &user, TurboMode::Passthrough, &payload);
        assert_ne!(bits_a, bits_b);
        assert_ne!(bits_a, bits_legacy);
        assert_ne!(scrambling_init(&a, &user), scrambling_init(&b, &user));
    }

    #[test]
    fn reference_cache_cannot_alias_across_cells() {
        // Distinct Zadoff–Chu roots must produce distinct cached
        // sequences for the same allocation: the cache key includes the
        // root, so two deployment cells sharing a PRB width never read
        // each other's DM-RS entries.
        let user = UserConfig::new(4, 2, Modulation::Qpsk);
        let a = CellConfig::with_identity(2, 0);
        let b = CellConfig::with_identity(2, 1);
        prewarm_references(&a, &user);
        prewarm_references(&b, &user);
        let ra = reference_for_layer_cached(&a, &user, 0);
        let rb = reference_for_layer_cached(&b, &user, 0);
        assert!(!Arc::ptr_eq(&ra, &rb), "cache must hold distinct entries");
        assert_ne!(ra.samples()[1], rb.samples()[1]);
        // Same cell, same allocation: the entry is shared, not rebuilt.
        assert!(Arc::ptr_eq(&ra, &reference_for_layer_cached(&a, &user, 0)));
    }

    #[test]
    fn split_bits_covers_all_chunks() {
        let user = UserConfig::new(2, 3, Modulation::Qpsk);
        let bits = vec![0u8; user.bits_per_subframe()];
        let chunks = split_bits(&user, &bits);
        assert_eq!(chunks.len(), 2 * 6 * 3);
        assert_eq!(chunks[0].len(), 24 * 2);
    }

    #[test]
    fn synthesized_input_is_well_formed() {
        let cell = CellConfig::default();
        let user = UserConfig::new(6, 2, Modulation::Qam16);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let input = synthesize_user(&cell, &user, 20.0, &mut rng);
        assert_eq!(input.slots.len(), 2);
        assert_eq!(input.slots[0].reference.n_rx(), 4);
        assert_eq!(input.slots[0].reference.n_sc(), 72);
        assert_eq!(input.ground_truth.len(), user.bits_per_subframe() - 24);
    }

    #[test]
    fn different_seeds_produce_different_payloads() {
        let cell = CellConfig::default();
        let user = UserConfig::new(2, 1, Modulation::Qpsk);
        let a = synthesize_user(&cell, &user, 20.0, &mut Xoshiro256::seed_from_u64(1));
        let b = synthesize_user(&cell, &user, 20.0, &mut Xoshiro256::seed_from_u64(2));
        assert_ne!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn retransmission_carries_the_same_payload_over_a_new_channel() {
        let cell = CellConfig::default();
        let user = UserConfig::new(3, 1, Modulation::Qpsk);
        let mut rng = Xoshiro256::seed_from_u64(11);
        let first = synthesize_user(&cell, &user, 10.0, &mut rng);
        let retx = synthesize_retransmission(
            &cell,
            &user,
            TurboMode::Passthrough,
            &first.ground_truth,
            10.0,
            &mut rng,
        );
        assert_eq!(retx.ground_truth, first.ground_truth);
        // Different channel + noise realisation: the received grids differ.
        assert_ne!(
            retx.slots[0].data[0].antenna(0)[0],
            first.slots[0].data[0].antenna(0)[0]
        );
    }

    #[test]
    fn reference_layers_are_distinct() {
        let cell = CellConfig::default();
        let user = UserConfig::new(4, 4, Modulation::Qpsk);
        let r0 = reference_for_layer(&cell, &user, 0);
        let r1 = reference_for_layer(&cell, &user, 1);
        assert_ne!(r0.samples()[1], r1.samples()[1]);
    }
}
