//! The SC-FDMA front-end the paper excludes from the benchmark but
//! defines in Fig. 2: radio receiver → receive filter → cyclic-prefix
//! removal → FFT → subcarrier demapping.
//!
//! "We exclude the computations of the frontend from our benchmark,
//! since the frontend is statically defined and performed on all data
//! received" (§IV). It is *included* here so the repository models the
//! complete uplink: the transmitter side builds true time-domain SC-FDMA
//! symbols (IFFT over the full carrier grid plus cyclic prefix) and the
//! receiver side undoes them, optionally through a receive filter —
//! everything downstream of the FFT is exactly the benchmark's input.

use lte_dsp::fft::FftPlanner;
use lte_dsp::fir::FirFilter;
use lte_dsp::math::next_pow2;
use lte_dsp::Complex32;

/// Static front-end configuration for one carrier.
#[derive(Debug)]
pub struct FrontEnd {
    fft_size: usize,
    cp_len: usize,
    occupied: usize,
    planner: FftPlanner,
    rx_filter: Option<FirFilter>,
}

impl FrontEnd {
    /// Builds a front-end for an allocation of `occupied` subcarriers:
    /// the FFT size is the next power of two with at least 2× headroom
    /// (oversampled carrier), the normal-CP length is ≈ 7 % of the symbol
    /// and the allocation sits centred in the grid.
    ///
    /// # Panics
    ///
    /// Panics if `occupied == 0`.
    pub fn for_allocation(occupied: usize) -> Self {
        assert!(occupied > 0, "need at least one subcarrier");
        let fft_size = next_pow2(2 * occupied).max(64);
        let cp_len = fft_size / 14; // ≈ normal cyclic prefix ratio
        FrontEnd {
            fft_size,
            cp_len,
            occupied,
            planner: FftPlanner::new(),
            rx_filter: None,
        }
    }

    /// Adds a receive filter (Fig. 2's "receive filter" block): a
    /// low-pass at the occupied bandwidth with `n_taps` taps.
    pub fn with_receive_filter(mut self, n_taps: usize) -> Self {
        let cutoff = (self.occupied as f32 / self.fft_size as f32 + 0.1).min(0.95);
        self.rx_filter = Some(FirFilter::low_pass(cutoff, n_taps));
        self
    }

    /// FFT size of the carrier grid.
    pub fn fft_size(&self) -> usize {
        self.fft_size
    }

    /// Cyclic-prefix length in samples.
    pub fn cp_len(&self) -> usize {
        self.cp_len
    }

    /// Samples per SC-FDMA symbol including the cyclic prefix.
    pub fn samples_per_symbol(&self) -> usize {
        self.fft_size + self.cp_len
    }

    /// Grid bin of allocation subcarrier `k`: the occupied band straddles
    /// DC (negative frequencies wrap to the top of the grid), keeping the
    /// signal at baseband where the receive low-pass passes it.
    pub fn bin_of(&self, k: usize) -> usize {
        (self.fft_size - self.occupied / 2 + k) % self.fft_size
    }

    /// Transmit side: maps `occupied` frequency-domain subcarrier values
    /// into the carrier grid, IFFTs, and prepends the cyclic prefix.
    ///
    /// # Panics
    ///
    /// Panics if `subcarriers.len() != occupied`.
    pub fn modulate(&self, subcarriers: &[Complex32]) -> Vec<Complex32> {
        assert_eq!(subcarriers.len(), self.occupied, "allocation size mismatch");
        let mut grid = vec![Complex32::ZERO; self.fft_size];
        for (k, &v) in subcarriers.iter().enumerate() {
            grid[self.bin_of(k)] = v;
        }
        self.planner.inverse(self.fft_size).process(&mut grid);
        // Scale so demodulation (FFT) returns the original amplitudes and
        // time-domain power matches subcarrier power.
        let scale = (self.fft_size as f32).sqrt();
        for z in &mut grid {
            *z = z.scale(scale);
        }
        let mut out = Vec::with_capacity(self.samples_per_symbol());
        out.extend_from_slice(&grid[self.fft_size - self.cp_len..]);
        out.extend_from_slice(&grid);
        out
    }

    /// Receive side (Fig. 2): optional receive filter → CP removal → FFT
    /// → subcarrier extraction. Returns the `occupied` allocation values.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != samples_per_symbol()`.
    pub fn demodulate(&self, samples: &[Complex32]) -> Vec<Complex32> {
        assert_eq!(
            samples.len(),
            self.samples_per_symbol(),
            "one full symbol expected"
        );
        let filtered;
        let samples = match &self.rx_filter {
            Some(f) => {
                filtered = f.filter(samples);
                &filtered[..]
            }
            None => samples,
        };
        let mut grid: Vec<Complex32> = samples[self.cp_len..].to_vec();
        self.planner.forward(self.fft_size).process(&mut grid);
        let scale = 1.0 / (self.fft_size as f32).sqrt();
        (0..self.occupied)
            .map(|k| grid[self.bin_of(k)].scale(scale))
            .collect()
    }

    /// Applies a time-domain channel impulse response (within the CP
    /// budget) by linear convolution across a symbol stream — the cyclic
    /// prefix turns it into the per-subcarrier multiplication the
    /// benchmark's receiver assumes.
    ///
    /// # Panics
    ///
    /// Panics if the impulse response is longer than the cyclic prefix.
    pub fn apply_time_channel(
        &self,
        symbols: &[Vec<Complex32>],
        impulse: &[Complex32],
    ) -> Vec<Vec<Complex32>> {
        assert!(
            impulse.len() <= self.cp_len,
            "delay spread must fit in the cyclic prefix"
        );
        // Convolve the concatenated stream, then re-split per symbol.
        let n_sym = self.samples_per_symbol();
        let stream: Vec<Complex32> = symbols.iter().flatten().copied().collect();
        let mut out = vec![Complex32::ZERO; stream.len()];
        for (i, o) in out.iter_mut().enumerate() {
            for (t, &h) in impulse.iter().enumerate() {
                if i >= t {
                    *o = o.mul_add(h, stream[i - t]);
                }
            }
        }
        out.chunks(n_sym).map(|c| c.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_dsp::Xoshiro256;

    fn random_allocation(n: usize, seed: u64) -> Vec<Complex32> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex32::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5))
            .collect()
    }

    #[test]
    fn modulate_demodulate_round_trip() {
        for occupied in [12usize, 48, 300] {
            let fe = FrontEnd::for_allocation(occupied);
            let tx = random_allocation(occupied, occupied as u64);
            let time = fe.modulate(&tx);
            assert_eq!(time.len(), fe.samples_per_symbol());
            let rx = fe.demodulate(&time);
            for (a, b) in rx.iter().zip(&tx) {
                assert!((*a - *b).abs() < 1e-4, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn cyclic_prefix_is_a_copy_of_the_tail() {
        let fe = FrontEnd::for_allocation(24);
        let time = fe.modulate(&random_allocation(24, 3));
        let cp = &time[..fe.cp_len()];
        let tail = &time[time.len() - fe.cp_len()..];
        for (a, b) in cp.iter().zip(tail) {
            assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn multipath_within_cp_becomes_flat_per_subcarrier() {
        // Send two symbols through a 3-tap channel; after the front end
        // the received subcarriers must equal tx × H(f) exactly (that is
        // the whole point of the CP).
        let occupied = 48;
        let fe = FrontEnd::for_allocation(occupied);
        let tx0 = random_allocation(occupied, 1);
        let tx1 = random_allocation(occupied, 2);
        let symbols = vec![fe.modulate(&tx0), fe.modulate(&tx1)];
        let impulse = vec![
            Complex32::new(0.8, 0.1),
            Complex32::new(0.3, -0.2),
            Complex32::new(-0.1, 0.15),
        ];
        let through = fe.apply_time_channel(&symbols, &impulse);
        // H(f) on the occupied subcarriers of the oversampled grid.
        let rx1 = fe.demodulate(&through[1]); // symbol 1: fully settled
        let n = fe.fft_size();
        for (k, (y, x)) in rx1.iter().zip(&tx1).enumerate() {
            let sc = fe.bin_of(k);
            // Frequency of this subcarrier in the grid (IFFT convention).
            let mut h = Complex32::ZERO;
            for (t, &tap) in impulse.iter().enumerate() {
                let theta = -std::f64::consts::TAU * (sc as f64) * (t as f64) / n as f64;
                h += tap * Complex32::new(theta.cos() as f32, theta.sin() as f32);
            }
            let expect = *x * h;
            assert!(
                (*y - expect).abs() < 2e-3,
                "subcarrier {k}: {y:?} vs {expect:?}"
            );
        }
    }

    #[test]
    fn receive_filter_preserves_occupied_band() {
        let occupied = 48;
        let fe = FrontEnd::for_allocation(occupied).with_receive_filter(63);
        let tx = random_allocation(occupied, 9);
        let rx = fe.demodulate(&fe.modulate(&tx));
        // The low-pass passes the (centred) occupied band nearly
        // untouched; edge subcarriers may see slight droop.
        let mut err = 0.0f32;
        for (a, b) in rx[4..occupied - 4].iter().zip(&tx[4..occupied - 4]) {
            err = err.max((*a - *b).abs());
        }
        assert!(err < 0.12, "max error {err}");
    }

    #[test]
    fn grid_size_has_headroom() {
        let fe = FrontEnd::for_allocation(300);
        assert!(fe.fft_size() >= 600);
        assert!(fe.fft_size().is_power_of_two());
        assert!(fe.cp_len() > 0);
    }

    #[test]
    #[should_panic(expected = "cyclic prefix")]
    fn over_long_channel_rejected() {
        let fe = FrontEnd::for_allocation(12);
        let impulse = vec![Complex32::ONE; fe.cp_len() + 1];
        fe.apply_time_channel(&[], &impulse);
    }
}
