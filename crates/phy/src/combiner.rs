//! MMSE combiner weights and antenna combining.
//!
//! After both slots' channel estimates are in, the user thread computes
//! combiner weights — the step the paper singles out as *not* easily
//! parallelised because it couples all receive channels and layers
//! (§III). Per subcarrier `k` the MMSE solution is
//!
//! ```text
//! W(k) = (Ĥ(k)ᴴ·Ĥ(k) + σ²·I)⁻¹ · Ĥ(k)ᴴ          (layers × rx)
//! ```
//!
//! Combining one data symbol for one layer (`x̂ = W·y`, then an IFFT to
//! undo the SC-FDMA DFT precoding) is the per-(symbol, layer) task of the
//! demodulation stage.

use lte_dsp::arena::ScratchArena;
use lte_dsp::fft::FftPlanner;
use lte_dsp::Complex32;

use crate::estimator::ChannelEstimate;
use crate::grid::UserInput;
use crate::linalg::CMatrix;

/// Reusable working matrices for [`CombinerWeights::compute`].
///
/// The MMSE solve needs six small matrices per subcarrier (`H`, `Hᴴ`,
/// the Gram matrix, the Gauss–Jordan workspace, the inverse, and the
/// weight product); allocating them fresh for every subcarrier of every
/// slot dominated the combiner's runtime. One scratch lives per worker
/// and is reshaped in place each subcarrier.
#[derive(Clone, Debug)]
pub struct MmseScratch {
    h: CMatrix,
    hh: CMatrix,
    gram: CMatrix,
    work: CMatrix,
    inv: CMatrix,
    wmat: CMatrix,
}

impl MmseScratch {
    /// A minimal scratch; buffers grow on first use.
    pub fn new() -> Self {
        let m = || CMatrix::zeros(1, 1);
        MmseScratch {
            h: m(),
            hh: m(),
            gram: m(),
            work: m(),
            inv: m(),
            wmat: m(),
        }
    }
}

impl Default for MmseScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-subcarrier MMSE weights for one slot: row `(sc, layer)` holds the
/// `n_rx` weights applied to the antenna samples of subcarrier `sc`.
#[derive(Clone, Debug, PartialEq)]
pub struct CombinerWeights {
    /// Flattened `[sc][layer][rx]`.
    w: Vec<Complex32>,
    /// The same weights transposed to `[layer][rx][sc]`, so combining one
    /// layer walks each antenna's weights with unit stride — the layout
    /// the SIMD combine kernel streams. Values are bit-copies of `w`.
    wt: Vec<Complex32>,
    n_sc: usize,
    n_layers: usize,
    n_rx: usize,
}

impl CombinerWeights {
    /// Computes MMSE weights from a slot's channel estimate.
    ///
    /// Falls back to a matched-filter row (scaled Ĥᴴ) for any subcarrier
    /// whose regularised Gram matrix is numerically singular — which can
    /// only happen with a zero channel estimate.
    ///
    /// # Panics
    ///
    /// Panics if `noise_var <= 0`.
    pub fn mmse(estimate: &ChannelEstimate, noise_var: f32) -> Self {
        let mut out = Self::empty();
        out.compute(estimate, noise_var, &mut MmseScratch::new());
        out
    }

    /// A placeholder with no weights, ready to be filled by
    /// [`compute`](Self::compute) without reallocating across subframes.
    pub fn empty() -> Self {
        CombinerWeights {
            w: Vec::new(),
            wt: Vec::new(),
            n_sc: 0,
            n_layers: 0,
            n_rx: 0,
        }
    }

    /// [`mmse`](Self::mmse) into this existing value, reusing its weight
    /// storage and the caller's [`MmseScratch`]. Performs the exact
    /// arithmetic of the allocating path in the exact order, so serial
    /// and arena-backed runs stay byte-identical.
    ///
    /// # Panics
    ///
    /// Panics if `noise_var <= 0`.
    pub fn compute(
        &mut self,
        estimate: &ChannelEstimate,
        noise_var: f32,
        scratch: &mut MmseScratch,
    ) {
        assert!(noise_var > 0.0, "noise variance must be positive");
        let n_rx = estimate.n_rx();
        let n_layers = estimate.n_layers();
        let n_sc = estimate.n_sc();
        self.w.clear();
        self.w.resize(n_sc * n_layers * n_rx, Complex32::ZERO);
        self.wt.clear();
        self.wt.resize(n_sc * n_layers * n_rx, Complex32::ZERO);
        self.n_sc = n_sc;
        self.n_layers = n_layers;
        self.n_rx = n_rx;
        for sc in 0..n_sc {
            // H: n_rx × n_layers for this subcarrier.
            let h = &mut scratch.h;
            h.reset(n_rx, n_layers);
            for rx in 0..n_rx {
                for layer in 0..n_layers {
                    h[(rx, layer)] = estimate.path(rx, layer)[sc];
                }
            }
            h.hermitian_into(&mut scratch.hh);
            scratch.hh.mul_into(&scratch.h, &mut scratch.gram);
            scratch.gram.add_diagonal(noise_var);
            let weights = if scratch
                .gram
                .inverse_into(&mut scratch.work, &mut scratch.inv)
            {
                scratch.inv.mul_into(&scratch.hh, &mut scratch.wmat);
                &scratch.wmat
            } else {
                &scratch.hh // matched-filter fallback
            };
            for layer in 0..n_layers {
                for rx in 0..n_rx {
                    self.w[(sc * n_layers + layer) * n_rx + rx] = weights[(layer, rx)];
                    self.wt[(layer * n_rx + rx) * n_sc + sc] = weights[(layer, rx)];
                }
            }
        }
    }

    /// The weight row for (subcarrier, layer).
    #[inline]
    pub fn row(&self, sc: usize, layer: usize) -> &[Complex32] {
        let base = (sc * self.n_layers + layer) * self.n_rx;
        &self.w[base..base + self.n_rx]
    }

    /// The per-subcarrier weight lane for (layer, antenna) — `n_sc`
    /// contiguous weights, one per subcarrier, bit-identical to reading
    /// `row(sc, layer)[rx]` for each `sc`.
    #[inline]
    pub fn lane(&self, layer: usize, rx: usize) -> &[Complex32] {
        let base = (layer * self.n_rx + rx) * self.n_sc;
        &self.wt[base..base + self.n_sc]
    }

    /// Number of subcarriers.
    pub fn n_sc(&self) -> usize {
        self.n_sc
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Number of receive antennas.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }
}

/// Combines one data symbol for one layer and despreads it back to the
/// time domain — the benchmark's per-(symbol, layer) demodulation task.
///
/// Returns the `n_sc` equalised QAM symbols.
///
/// # Panics
///
/// Panics if `slot`/`symbol` are out of range or the weights don't match
/// the input dimensions.
pub fn combine_symbol(
    input: &UserInput,
    weights: &CombinerWeights,
    slot: usize,
    symbol: usize,
    layer: usize,
    planner: &FftPlanner,
) -> Vec<Complex32> {
    let mut combined = Vec::new();
    combine_symbol_into(
        input,
        weights,
        slot,
        symbol,
        layer,
        planner,
        &mut ScratchArena::new(),
        &mut combined,
    );
    combined
}

/// [`combine_symbol`] into a caller-provided buffer, with the IFFT's
/// working space drawn from `arena` — the zero-allocation variant used
/// by the steady-state receive path.
///
/// `out` is cleared and refilled; its capacity is reused.
///
/// # Panics
///
/// Panics if `slot`/`symbol` are out of range or the weights don't match
/// the input dimensions.
#[allow(clippy::too_many_arguments)]
pub fn combine_symbol_into(
    input: &UserInput,
    weights: &CombinerWeights,
    slot: usize,
    symbol: usize,
    layer: usize,
    planner: &FftPlanner,
    arena: &mut ScratchArena,
    out: &mut Vec<Complex32>,
) {
    let rx_symbol = &input.slots[slot].data[symbol];
    let n_sc = rx_symbol.n_sc();
    assert_eq!(weights.n_sc(), n_sc, "weights/subcarrier mismatch");
    assert_eq!(weights.n_rx(), rx_symbol.n_rx(), "weights/antenna mismatch");
    out.clear();
    out.resize(n_sc, Complex32::ZERO);
    // One fused multiply-add pass per antenna over contiguous lanes; the
    // per-subcarrier operation order (rx 0, 1, …) matches the scalar
    // accumulator loop exactly, so the result is bit-identical.
    for rx in 0..rx_symbol.n_rx() {
        lte_dsp::simd::cmul_add_assign(out, weights.lane(layer, rx), rx_symbol.antenna(rx));
    }
    // Undo the SC-FDMA DFT precoding.
    let plan = planner.inverse(n_sc);
    plan.process_with_scratch(out, arena.fft_scratch(n_sc));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::estimate_slot;
    use crate::params::{CellConfig, TurboMode, UserConfig};
    use crate::tx::synthesize_user_over_channel;
    use lte_dsp::channel::MimoChannel;
    use lte_dsp::{Modulation, Xoshiro256};

    #[test]
    fn mmse_inverts_identity_channel() {
        // With H = I per subcarrier and tiny noise, W ≈ I.
        let n_sc = 24;
        let mut est = ChannelEstimate::empty(2, 2, n_sc);
        for rx in 0..2 {
            for layer in 0..2 {
                let v = if rx == layer {
                    Complex32::ONE
                } else {
                    Complex32::ZERO
                };
                est.set_path(rx, layer, vec![v; n_sc]);
            }
        }
        let w = CombinerWeights::mmse(&est, 1e-4);
        for sc in 0..n_sc {
            for layer in 0..2 {
                let row = w.row(sc, layer);
                for (rx, &wgt) in row.iter().enumerate() {
                    let expect = if rx == layer { 1.0 } else { 0.0 };
                    assert!((wgt.re - expect).abs() < 1e-3 && wgt.im.abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    fn mmse_suppresses_inter_layer_interference() {
        // Random 4×2 channel: W·H should approximate the 2×2 identity.
        let mut rng = Xoshiro256::seed_from_u64(21);
        let channel = MimoChannel::randomize(4, 2, 1, &mut rng);
        let n_sc = 12;
        let mut est = ChannelEstimate::empty(4, 2, n_sc);
        for rx in 0..4 {
            for layer in 0..2 {
                est.set_path(rx, layer, channel.frequency_response(rx, layer, n_sc));
            }
        }
        let w = CombinerWeights::mmse(&est, 1e-3);
        for sc in 0..n_sc {
            for layer in 0..2 {
                for other in 0..2 {
                    let mut acc = Complex32::ZERO;
                    for rx in 0..4 {
                        acc = acc.mul_add(
                            w.row(sc, layer)[rx],
                            channel.frequency_response(rx, other, n_sc)[sc],
                        );
                    }
                    let expect = if layer == other { 1.0 } else { 0.0 };
                    assert!(
                        (acc.re - expect).abs() < 0.05 && acc.im.abs() < 0.05,
                        "sc {sc} layer {layer} other {other}: {acc:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_estimate_falls_back_without_panicking() {
        let est = ChannelEstimate::empty(2, 2, 4);
        let w = CombinerWeights::mmse(&est, 0.1);
        for sc in 0..4 {
            assert_eq!(w.row(sc, 0), &[Complex32::ZERO, Complex32::ZERO]);
        }
    }

    #[test]
    fn combine_recovers_symbols_on_clean_channel() {
        let cell = CellConfig::with_antennas(2);
        let user = UserConfig::new(4, 1, Modulation::Qpsk);
        let channel = MimoChannel::identity(2, 1);
        let mut rng = Xoshiro256::seed_from_u64(33);
        let input = synthesize_user_over_channel(
            &cell,
            &user,
            TurboMode::Passthrough,
            50.0,
            &channel,
            &mut rng,
        );
        let planner = FftPlanner::new();
        let est = estimate_slot(&cell, &input, 0, &planner);
        let w = CombinerWeights::mmse(&est, input.noise_var);
        let recovered = combine_symbol(&input, &w, 0, 0, 0, &planner);
        // Every recovered point should sit on the QPSK constellation.
        let c = Modulation::Qpsk.constellation();
        for z in &recovered {
            let nearest = c.iter().map(|s| (*z - *s).abs()).fold(f32::MAX, f32::min);
            assert!(nearest < 0.1, "{z:?} too far from constellation");
        }
    }

    #[test]
    #[should_panic(expected = "noise variance")]
    fn mmse_rejects_nonpositive_noise() {
        CombinerWeights::mmse(&ChannelEstimate::empty(1, 1, 1), 0.0);
    }

    #[test]
    fn compute_with_dirty_scratch_matches_mmse_bitwise() {
        let mut rng = Xoshiro256::seed_from_u64(77);
        let mut scratch = MmseScratch::new();
        let mut reused = CombinerWeights::empty();
        for (n_rx, n_layers, n_sc) in [(2, 1, 12), (4, 2, 36), (4, 4, 24), (1, 1, 12)] {
            let channel = MimoChannel::randomize(n_rx, n_layers, 2, &mut rng);
            let mut est = ChannelEstimate::empty(n_rx, n_layers, n_sc);
            for rx in 0..n_rx {
                for layer in 0..n_layers {
                    est.set_path(rx, layer, channel.frequency_response(rx, layer, n_sc));
                }
            }
            let fresh = CombinerWeights::mmse(&est, 0.05);
            // Same scratch and output across shapes: state must not leak.
            reused.compute(&est, 0.05, &mut scratch);
            assert_eq!(fresh, reused, "{n_rx}x{n_layers}x{n_sc}");
        }
    }

    #[test]
    fn combine_symbol_into_matches_allocating_path_bitwise() {
        let cell = CellConfig::with_antennas(4);
        let user = UserConfig::new(6, 2, Modulation::Qam16);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let channel = MimoChannel::randomize(4, 2, 3, &mut rng);
        let input = synthesize_user_over_channel(
            &cell,
            &user,
            TurboMode::Passthrough,
            20.0,
            &channel,
            &mut rng,
        );
        let planner = FftPlanner::new();
        let est = estimate_slot(&cell, &input, 0, &planner);
        let w = CombinerWeights::mmse(&est, input.noise_var);
        let mut arena = ScratchArena::new();
        let mut out = vec![Complex32::ONE; 3]; // dirty, wrong-sized
        for symbol in 0..2 {
            for layer in 0..2 {
                let fresh = combine_symbol(&input, &w, 0, symbol, layer, &planner);
                combine_symbol_into(&input, &w, 0, symbol, layer, &planner, &mut arena, &mut out);
                assert_eq!(fresh, out, "symbol {symbol} layer {layer}");
            }
        }
    }
}
