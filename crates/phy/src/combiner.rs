//! MMSE combiner weights and antenna combining.
//!
//! After both slots' channel estimates are in, the user thread computes
//! combiner weights — the step the paper singles out as *not* easily
//! parallelised because it couples all receive channels and layers
//! (§III). Per subcarrier `k` the MMSE solution is
//!
//! ```text
//! W(k) = (Ĥ(k)ᴴ·Ĥ(k) + σ²·I)⁻¹ · Ĥ(k)ᴴ          (layers × rx)
//! ```
//!
//! Combining one data symbol for one layer (`x̂ = W·y`, then an IFFT to
//! undo the SC-FDMA DFT precoding) is the per-(symbol, layer) task of the
//! demodulation stage.

use lte_dsp::fft::FftPlanner;
use lte_dsp::Complex32;

use crate::estimator::ChannelEstimate;
use crate::grid::UserInput;
use crate::linalg::CMatrix;

/// Per-subcarrier MMSE weights for one slot: row `(sc, layer)` holds the
/// `n_rx` weights applied to the antenna samples of subcarrier `sc`.
#[derive(Clone, Debug, PartialEq)]
pub struct CombinerWeights {
    /// Flattened `[sc][layer][rx]`.
    w: Vec<Complex32>,
    n_sc: usize,
    n_layers: usize,
    n_rx: usize,
}

impl CombinerWeights {
    /// Computes MMSE weights from a slot's channel estimate.
    ///
    /// Falls back to a matched-filter row (scaled Ĥᴴ) for any subcarrier
    /// whose regularised Gram matrix is numerically singular — which can
    /// only happen with a zero channel estimate.
    ///
    /// # Panics
    ///
    /// Panics if `noise_var <= 0`.
    pub fn mmse(estimate: &ChannelEstimate, noise_var: f32) -> Self {
        assert!(noise_var > 0.0, "noise variance must be positive");
        let n_rx = estimate.n_rx();
        let n_layers = estimate.n_layers();
        let n_sc = estimate.n_sc();
        let mut w = vec![Complex32::ZERO; n_sc * n_layers * n_rx];
        for sc in 0..n_sc {
            // H: n_rx × n_layers for this subcarrier.
            let mut h = CMatrix::zeros(n_rx, n_layers);
            for rx in 0..n_rx {
                for layer in 0..n_layers {
                    h[(rx, layer)] = estimate.path(rx, layer)[sc];
                }
            }
            let hh = h.hermitian();
            let mut gram = hh.mul(&h);
            gram.add_diagonal(noise_var);
            let weights = match gram.inverse() {
                Some(inv) => inv.mul(&hh),
                None => hh.clone(), // matched-filter fallback
            };
            for layer in 0..n_layers {
                for rx in 0..n_rx {
                    w[(sc * n_layers + layer) * n_rx + rx] = weights[(layer, rx)];
                }
            }
        }
        CombinerWeights {
            w,
            n_sc,
            n_layers,
            n_rx,
        }
    }

    /// The weight row for (subcarrier, layer).
    #[inline]
    pub fn row(&self, sc: usize, layer: usize) -> &[Complex32] {
        let base = (sc * self.n_layers + layer) * self.n_rx;
        &self.w[base..base + self.n_rx]
    }

    /// Number of subcarriers.
    pub fn n_sc(&self) -> usize {
        self.n_sc
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Number of receive antennas.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }
}

/// Combines one data symbol for one layer and despreads it back to the
/// time domain — the benchmark's per-(symbol, layer) demodulation task.
///
/// Returns the `n_sc` equalised QAM symbols.
///
/// # Panics
///
/// Panics if `slot`/`symbol` are out of range or the weights don't match
/// the input dimensions.
pub fn combine_symbol(
    input: &UserInput,
    weights: &CombinerWeights,
    slot: usize,
    symbol: usize,
    layer: usize,
    planner: &FftPlanner,
) -> Vec<Complex32> {
    let rx_symbol = &input.slots[slot].data[symbol];
    let n_sc = rx_symbol.n_sc();
    assert_eq!(weights.n_sc(), n_sc, "weights/subcarrier mismatch");
    assert_eq!(weights.n_rx(), rx_symbol.n_rx(), "weights/antenna mismatch");
    let mut combined = Vec::with_capacity(n_sc);
    for sc in 0..n_sc {
        let row = weights.row(sc, layer);
        let mut acc = Complex32::ZERO;
        for (rx, &wgt) in row.iter().enumerate() {
            acc = acc.mul_add(wgt, rx_symbol.antenna(rx)[sc]);
        }
        combined.push(acc);
    }
    // Undo the SC-FDMA DFT precoding.
    planner.inverse(n_sc).process(&mut combined);
    combined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::estimate_slot;
    use crate::params::{CellConfig, TurboMode, UserConfig};
    use crate::tx::synthesize_user_over_channel;
    use lte_dsp::channel::MimoChannel;
    use lte_dsp::{Modulation, Xoshiro256};

    #[test]
    fn mmse_inverts_identity_channel() {
        // With H = I per subcarrier and tiny noise, W ≈ I.
        let n_sc = 24;
        let mut est = ChannelEstimate::empty(2, 2, n_sc);
        for rx in 0..2 {
            for layer in 0..2 {
                let v = if rx == layer {
                    Complex32::ONE
                } else {
                    Complex32::ZERO
                };
                est.set_path(rx, layer, vec![v; n_sc]);
            }
        }
        let w = CombinerWeights::mmse(&est, 1e-4);
        for sc in 0..n_sc {
            for layer in 0..2 {
                let row = w.row(sc, layer);
                for (rx, &wgt) in row.iter().enumerate() {
                    let expect = if rx == layer { 1.0 } else { 0.0 };
                    assert!((wgt.re - expect).abs() < 1e-3 && wgt.im.abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    fn mmse_suppresses_inter_layer_interference() {
        // Random 4×2 channel: W·H should approximate the 2×2 identity.
        let mut rng = Xoshiro256::seed_from_u64(21);
        let channel = MimoChannel::randomize(4, 2, 1, &mut rng);
        let n_sc = 12;
        let mut est = ChannelEstimate::empty(4, 2, n_sc);
        for rx in 0..4 {
            for layer in 0..2 {
                est.set_path(rx, layer, channel.frequency_response(rx, layer, n_sc));
            }
        }
        let w = CombinerWeights::mmse(&est, 1e-3);
        for sc in 0..n_sc {
            for layer in 0..2 {
                for other in 0..2 {
                    let mut acc = Complex32::ZERO;
                    for rx in 0..4 {
                        acc = acc.mul_add(
                            w.row(sc, layer)[rx],
                            channel.frequency_response(rx, other, n_sc)[sc],
                        );
                    }
                    let expect = if layer == other { 1.0 } else { 0.0 };
                    assert!(
                        (acc.re - expect).abs() < 0.05 && acc.im.abs() < 0.05,
                        "sc {sc} layer {layer} other {other}: {acc:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_estimate_falls_back_without_panicking() {
        let est = ChannelEstimate::empty(2, 2, 4);
        let w = CombinerWeights::mmse(&est, 0.1);
        for sc in 0..4 {
            assert_eq!(w.row(sc, 0), &[Complex32::ZERO, Complex32::ZERO]);
        }
    }

    #[test]
    fn combine_recovers_symbols_on_clean_channel() {
        let cell = CellConfig::with_antennas(2);
        let user = UserConfig::new(4, 1, Modulation::Qpsk);
        let channel = MimoChannel::identity(2, 1);
        let mut rng = Xoshiro256::seed_from_u64(33);
        let input = synthesize_user_over_channel(
            &cell,
            &user,
            TurboMode::Passthrough,
            50.0,
            &channel,
            &mut rng,
        );
        let planner = FftPlanner::new();
        let est = estimate_slot(&cell, &input, 0, &planner);
        let w = CombinerWeights::mmse(&est, input.noise_var);
        let recovered = combine_symbol(&input, &w, 0, 0, 0, &planner);
        // Every recovered point should sit on the QPSK constellation.
        let c = Modulation::Qpsk.constellation();
        for z in &recovered {
            let nearest = c.iter().map(|s| (*z - *s).abs()).fold(f32::MAX, f32::min);
            assert!(nearest < 0.1, "{z:?} too far from constellation");
        }
    }

    #[test]
    #[should_panic(expected = "noise variance")]
    fn mmse_rejects_nonpositive_noise() {
        CombinerWeights::mmse(&ChannelEstimate::empty(1, 1, 1), 0.0);
    }
}
