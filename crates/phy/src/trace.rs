//! Wall-clock stage timing for the real receiver.
//!
//! [`StageTimer`] wraps each PHY kernel invocation in a timed span and
//! records it as an [`lte_obs::Event::StageSpan`] (nanoseconds from the
//! timer's creation). With a disabled recorder the closure runs bare —
//! no `Instant::now()` calls, no event construction — so the untraced
//! entry points ([`crate::receiver::process_user`] and friends) pay
//! nothing for the instrumentation hooks.
//!
//! For continuous telemetry, a timer can additionally feed per-stage
//! duration **histograms** ([`StageHists`]): one lock-free
//! [`Histogram`] per pipeline stage, recordable from every worker
//! concurrently without locks or allocation, so a soak run can watch
//! each kernel's latency distribution evolve window by window.

use std::time::Instant;

use lte_obs::{Event, Histogram, HistogramSnapshot, NoopRecorder, Recorder, Stage};

static NOOP: NoopRecorder = NoopRecorder;

/// Position of `stage` in [`Stage::ALL`] — the histogram index.
#[inline]
fn stage_index(stage: Stage) -> usize {
    match stage {
        Stage::Estimation => 0,
        Stage::Weights => 1,
        Stage::Combine => 2,
        Stage::Finish => 3,
        Stage::MatchedFilter => 4,
        Stage::Ifft => 5,
        Stage::Window => 6,
        Stage::Fft => 7,
        Stage::Combining => 8,
        Stage::Demap => 9,
        Stage::Deinterleave => 10,
        Stage::Turbo => 11,
        Stage::Crc => 12,
    }
}

/// One latency histogram per pipeline stage, shared across workers.
///
/// Recording is lock-free and allocation-free (an atomic bucket add),
/// so the per-subframe hot path can feed it directly.
pub struct StageHists {
    hists: Vec<Histogram>,
}

impl Default for StageHists {
    fn default() -> Self {
        Self::new()
    }
}

impl StageHists {
    /// Empty histograms for every stage in [`Stage::ALL`].
    pub fn new() -> Self {
        Self {
            hists: Stage::ALL.iter().map(|_| Histogram::new()).collect(),
        }
    }

    /// Records one duration (nanoseconds) for `stage`.
    #[inline]
    pub fn record(&self, stage: Stage, duration_ns: u64) {
        self.hists[stage_index(stage)].record(duration_ns);
    }

    /// The live histogram for `stage`.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.hists[stage_index(stage)]
    }

    /// Snapshots of every stage that recorded at least one span, in
    /// [`Stage::ALL`] order.
    pub fn snapshot_nonempty(&self) -> Vec<(Stage, HistogramSnapshot)> {
        Stage::ALL
            .iter()
            .map(|&s| (s, self.hists[stage_index(s)].snapshot()))
            .filter(|(_, h)| h.count > 0)
            .collect()
    }
}

/// Times named pipeline stages against a shared epoch.
pub struct StageTimer<'a, R: Recorder> {
    recorder: &'a R,
    epoch: Instant,
    hists: Option<&'a StageHists>,
}

impl StageTimer<'static, NoopRecorder> {
    /// A timer that records nothing and adds no timing overhead.
    pub fn disabled() -> Self {
        StageTimer {
            recorder: &NOOP,
            epoch: Instant::now(),
            hists: None,
        }
    }

    /// A timer that skips event spans but feeds per-stage duration
    /// histograms — the continuous-telemetry configuration, where the
    /// cost per stage is two `Instant::now()` calls and one atomic
    /// bucket add.
    pub fn histograms_only(hists: &StageHists) -> StageTimer<'_, NoopRecorder> {
        StageTimer {
            recorder: &NOOP,
            epoch: Instant::now(),
            hists: Some(hists),
        }
    }
}

impl<'a, R: Recorder> StageTimer<'a, R> {
    /// Creates a timer recording into `recorder`, with "now" as the
    /// span epoch.
    pub fn new(recorder: &'a R) -> Self {
        StageTimer {
            recorder,
            epoch: Instant::now(),
            hists: None,
        }
    }

    /// Like [`new`](Self::new), but also feeding per-stage duration
    /// histograms.
    pub fn with_hists(recorder: &'a R, hists: &'a StageHists) -> Self {
        StageTimer {
            recorder,
            epoch: Instant::now(),
            hists: Some(hists),
        }
    }

    /// Runs `f`, recording its wall-clock extent as a span of `stage`.
    #[inline]
    pub fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let spans = self.recorder.enabled();
        if !spans && self.hists.is_none() {
            return f();
        }
        let start_ns = self.epoch.elapsed().as_nanos() as u64;
        let out = f();
        let end_ns = self.epoch.elapsed().as_nanos() as u64;
        if let Some(hists) = self.hists {
            hists.record(stage, end_ns - start_ns);
        }
        if spans {
            self.recorder.record(Event::StageSpan {
                stage,
                start_ns,
                end_ns,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_obs::RingRecorder;

    #[test]
    fn disabled_timer_runs_closure_without_recording() {
        let timer = StageTimer::disabled();
        let v = timer.time(Stage::Fft, || 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn enabled_timer_records_ordered_spans() {
        let recorder = RingRecorder::new(16);
        let timer = StageTimer::new(&recorder);
        timer.time(Stage::MatchedFilter, || std::hint::black_box(1));
        timer.time(Stage::Ifft, || std::hint::black_box(2));
        let events = recorder.events();
        assert_eq!(events.len(), 2);
        match (events[0], events[1]) {
            (
                Event::StageSpan {
                    stage: a,
                    end_ns: a_end,
                    ..
                },
                Event::StageSpan {
                    stage: b,
                    start_ns: b_start,
                    ..
                },
            ) => {
                assert_eq!(a, Stage::MatchedFilter);
                assert_eq!(b, Stage::Ifft);
                assert!(b_start >= a_end, "spans must not overlap");
            }
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn histogram_timer_feeds_stage_distributions() {
        let hists = StageHists::new();
        let timer = StageTimer::histograms_only(&hists);
        for _ in 0..3 {
            timer.time(Stage::Turbo, || std::hint::black_box(7));
        }
        timer.time(Stage::Crc, || std::hint::black_box(1));
        let nonempty = hists.snapshot_nonempty();
        assert_eq!(nonempty.len(), 2);
        assert_eq!(nonempty[0].0, Stage::Turbo);
        assert_eq!(nonempty[0].1.count, 3);
        assert_eq!(nonempty[1].0, Stage::Crc);
        assert_eq!(nonempty[1].1.count, 1);
    }

    #[test]
    fn stage_index_matches_all_order() {
        for (i, &s) in Stage::ALL.iter().enumerate() {
            assert_eq!(super::stage_index(s), i);
        }
    }
}
