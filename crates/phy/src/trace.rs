//! Wall-clock stage timing for the real receiver.
//!
//! [`StageTimer`] wraps each PHY kernel invocation in a timed span and
//! records it as an [`lte_obs::Event::StageSpan`] (nanoseconds from the
//! timer's creation). With a disabled recorder the closure runs bare —
//! no `Instant::now()` calls, no event construction — so the untraced
//! entry points ([`crate::receiver::process_user`] and friends) pay
//! nothing for the instrumentation hooks.

use std::time::Instant;

use lte_obs::{Event, NoopRecorder, Recorder, Stage};

static NOOP: NoopRecorder = NoopRecorder;

/// Times named pipeline stages against a shared epoch.
pub struct StageTimer<'a, R: Recorder> {
    recorder: &'a R,
    epoch: Instant,
}

impl StageTimer<'static, NoopRecorder> {
    /// A timer that records nothing and adds no timing overhead.
    pub fn disabled() -> Self {
        StageTimer {
            recorder: &NOOP,
            epoch: Instant::now(),
        }
    }
}

impl<'a, R: Recorder> StageTimer<'a, R> {
    /// Creates a timer recording into `recorder`, with "now" as the
    /// span epoch.
    pub fn new(recorder: &'a R) -> Self {
        StageTimer {
            recorder,
            epoch: Instant::now(),
        }
    }

    /// Runs `f`, recording its wall-clock extent as a span of `stage`.
    #[inline]
    pub fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        if !self.recorder.enabled() {
            return f();
        }
        let start_ns = self.epoch.elapsed().as_nanos() as u64;
        let out = f();
        let end_ns = self.epoch.elapsed().as_nanos() as u64;
        self.recorder.record(Event::StageSpan {
            stage,
            start_ns,
            end_ns,
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_obs::RingRecorder;

    #[test]
    fn disabled_timer_runs_closure_without_recording() {
        let timer = StageTimer::disabled();
        let v = timer.time(Stage::Fft, || 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn enabled_timer_records_ordered_spans() {
        let recorder = RingRecorder::new(16);
        let timer = StageTimer::new(&recorder);
        timer.time(Stage::MatchedFilter, || std::hint::black_box(1));
        timer.time(Stage::Ifft, || std::hint::black_box(2));
        let events = recorder.events();
        assert_eq!(events.len(), 2);
        match (events[0], events[1]) {
            (
                Event::StageSpan {
                    stage: a,
                    end_ns: a_end,
                    ..
                },
                Event::StageSpan {
                    stage: b,
                    start_ns: b_start,
                    ..
                },
            ) => {
                assert_eq!(a, Stage::MatchedFilter);
                assert_eq!(b, Stage::Ifft);
                assert!(b_start >= a_end, "spans must not overlap");
            }
            other => panic!("unexpected events {other:?}"),
        }
    }
}
