//! Received-signal containers for one user's subframe.
//!
//! The front-end (radio, filter, CP removal, FFT — Fig. 2) is outside the
//! benchmark; what the receiver sees is the *frequency-domain* resource
//! grid restricted to the user's allocation: per slot, one reference
//! symbol and six data symbols, each a `[rx antenna][subcarrier]` matrix.

use lte_dsp::Complex32;

use crate::params::{DATA_SYMBOLS_PER_SLOT, SLOTS_PER_SUBFRAME};

/// One received SC-FDMA symbol: `samples[rx][subcarrier]`.
#[derive(Clone, Debug, PartialEq)]
pub struct RxSymbol {
    samples: Vec<Vec<Complex32>>,
}

impl RxSymbol {
    /// Creates a symbol from per-antenna sample rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or have unequal lengths.
    pub fn new(samples: Vec<Vec<Complex32>>) -> Self {
        assert!(!samples.is_empty(), "need at least one antenna");
        let n = samples[0].len();
        assert!(n > 0, "need at least one subcarrier");
        for row in &samples {
            assert_eq!(row.len(), n, "antenna rows must have equal length");
        }
        RxSymbol { samples }
    }

    /// An all-zero symbol.
    pub fn zeros(n_rx: usize, n_sc: usize) -> Self {
        Self::new(vec![vec![Complex32::ZERO; n_sc]; n_rx])
    }

    /// Samples of one antenna.
    ///
    /// # Panics
    ///
    /// Panics if `rx` is out of range.
    pub fn antenna(&self, rx: usize) -> &[Complex32] {
        &self.samples[rx]
    }

    /// Mutable samples of one antenna.
    ///
    /// # Panics
    ///
    /// Panics if `rx` is out of range.
    pub fn antenna_mut(&mut self, rx: usize) -> &mut [Complex32] {
        &mut self.samples[rx]
    }

    /// Number of receive antennas.
    pub fn n_rx(&self) -> usize {
        self.samples.len()
    }

    /// Number of subcarriers.
    pub fn n_sc(&self) -> usize {
        self.samples[0].len()
    }
}

/// One received slot: six data symbols around one reference symbol.
#[derive(Clone, Debug, PartialEq)]
pub struct RxSlot {
    /// The reference (DM-RS) symbol.
    pub reference: RxSymbol,
    /// The six data symbols in transmission order (three before the
    /// reference, three after — §II-A).
    pub data: Vec<RxSymbol>,
}

impl RxSlot {
    /// Creates a slot.
    ///
    /// # Panics
    ///
    /// Panics unless exactly [`DATA_SYMBOLS_PER_SLOT`] data symbols with
    /// dimensions matching the reference are provided.
    pub fn new(reference: RxSymbol, data: Vec<RxSymbol>) -> Self {
        assert_eq!(
            data.len(),
            DATA_SYMBOLS_PER_SLOT,
            "a slot has {DATA_SYMBOLS_PER_SLOT} data symbols"
        );
        for s in &data {
            assert_eq!(s.n_rx(), reference.n_rx(), "antenna count mismatch");
            assert_eq!(s.n_sc(), reference.n_sc(), "subcarrier count mismatch");
        }
        RxSlot { reference, data }
    }
}

/// Everything the receiver sees for one user in one subframe, plus the
/// ground truth the verifier checks against.
#[derive(Clone, Debug, PartialEq)]
pub struct UserInput {
    /// Per-user parameters.
    pub config: crate::params::UserConfig,
    /// The two received slots.
    pub slots: Vec<RxSlot>,
    /// Noise variance the receiver should assume (perfect noise estimation,
    /// as in the benchmark).
    pub noise_var: f32,
    /// The information bits that were transmitted (before CRC/coding).
    pub ground_truth: Vec<u8>,
}

impl UserInput {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if slot count or dimensions are inconsistent with the config.
    pub fn validate(&self) {
        assert_eq!(self.slots.len(), SLOTS_PER_SUBFRAME, "two slots expected");
        for slot in &self.slots {
            assert_eq!(
                slot.reference.n_sc(),
                self.config.subcarriers(),
                "subcarrier count must match allocation"
            );
        }
        assert!(self.noise_var > 0.0, "noise variance must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_shape() {
        let s = RxSymbol::zeros(4, 24);
        assert_eq!(s.n_rx(), 4);
        assert_eq!(s.n_sc(), 24);
        assert_eq!(s.antenna(3).len(), 24);
    }

    #[test]
    fn symbol_mutation() {
        let mut s = RxSymbol::zeros(1, 2);
        s.antenna_mut(0)[1] = Complex32::ONE;
        assert_eq!(s.antenna(0)[1], Complex32::ONE);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_rejected() {
        RxSymbol::new(vec![vec![Complex32::ZERO; 2], vec![Complex32::ZERO; 3]]);
    }

    #[test]
    #[should_panic(expected = "data symbols")]
    fn slot_needs_six_data_symbols() {
        RxSlot::new(RxSymbol::zeros(1, 12), vec![RxSymbol::zeros(1, 12); 5]);
    }

    #[test]
    #[should_panic(expected = "antenna count")]
    fn slot_dimension_mismatch_rejected() {
        RxSlot::new(RxSymbol::zeros(2, 12), vec![RxSymbol::zeros(1, 12); 6]);
    }
}
