//! The complete per-user receive pipeline (Fig. 3) and its serial
//! reference implementation.
//!
//! [`process_user`] runs every stage in order on one thread — this is the
//! *serial version* the paper uses to verify the parallel benchmark
//! (§IV-D). The parallel runtime in `lte-uplink` calls the same kernels
//! ([`crate::estimator::estimate_path`], [`crate::combiner::combine_symbol`],
//! [`finish_user`]) as work-stealing tasks; because every task computes an
//! independent output block, serial and parallel results are bit-exact.

use std::cell::RefCell;

use lte_dsp::arena::ScratchArena;
use lte_dsp::crc::CRC24A;
use lte_dsp::fft::FftPlanner;
use lte_dsp::interleave::{subblock_cached, Interleaver};
use lte_dsp::llr::{demap_block, demap_block_into, hard_decisions, hard_decisions_into};
use lte_dsp::rate_match::RateMatcher;
use lte_dsp::scrambling::descramble_llrs;
use lte_dsp::segmentation::Segmentation;
use lte_dsp::turbo::{TurboDecoder, TurboLlrs, TurboWorkspace};
use lte_dsp::Complex32;
use lte_obs::{Recorder, Stage};

use crate::combiner::{combine_symbol, combine_symbol_into, CombinerWeights, MmseScratch};
use crate::estimator::{estimate_path_into, estimate_slot, estimate_slot_traced, ChannelEstimate};
use crate::grid::UserInput;
use crate::params::{CellConfig, TurboMode, DATA_SYMBOLS_PER_SLOT, SLOTS_PER_SUBFRAME};
use crate::trace::StageTimer;
use crate::tx::FramePlan;

/// The outcome of processing one user.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UserResult {
    /// Decoded payload bits (CRC stripped).
    pub payload: Vec<u8>,
    /// Whether the CRC verified.
    pub crc_ok: bool,
}

impl UserResult {
    /// `true` when the payload matches the transmitted ground truth.
    pub fn matches(&self, ground_truth: &[u8]) -> bool {
        self.crc_ok && self.payload == ground_truth
    }
}

/// Per-worker turbo-decode state: a small cache of constructed
/// decoder/rate-matcher pairs keyed on `(block size, iterations)` (QPP
/// interleaver construction is far too expensive to repeat per subframe),
/// the reusable SISO workspace, and the LLR/bit staging buffers. With a
/// warm cache the whole decode tail allocates nothing — the fix for
/// turbo mode having been outside PR 3's zero-alloc guarantee.
#[derive(Default)]
pub struct TurboScratch {
    codecs: Vec<(usize, usize, TurboDecoder, RateMatcher)>,
    workspace: TurboWorkspace,
    llrs: TurboLlrs,
    block_bits: Vec<u8>,
}

impl TurboScratch {
    /// A fresh scratch; the codec cache fills on first decode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rate-dematches and turbo-decodes one code block's share of the
    /// descrambled allocation, returning the decoded bits (borrowed
    /// from the internal staging buffer, valid until the next call).
    ///
    /// The deinterleave is fused into the rate-match scatter-add:
    /// `gather` is this block's slice of the allocation interleaver's
    /// inverse permutation, and the accumulator reads `src` through it
    /// instead of a pre-deinterleaved buffer — bit-exact versus the
    /// two-step path, minus one full pass over the allocation.
    fn decode_block_gathered(
        &mut self,
        k: usize,
        iterations: usize,
        src: &[f32],
        gather: &[u32],
    ) -> &[u8] {
        let pos = match self
            .codecs
            .iter()
            .position(|&(ck, ci, ..)| ck == k && ci == iterations)
        {
            Some(pos) => pos,
            None => {
                self.codecs.push((
                    k,
                    iterations,
                    TurboDecoder::new(k, iterations),
                    RateMatcher::new(k),
                ));
                self.codecs.len() - 1
            }
        };
        let (_, _, decoder, matcher) = &self.codecs[pos];
        matcher.accumulate_llrs_gather_into(src, gather, &mut self.llrs);
        decoder.decode_into(&self.llrs, &mut self.workspace, &mut self.block_bits);
        &self.block_bits
    }
}

/// Undoes rate matching, turbo-decodes and desegments one transport
/// block straight from the *descrambled* (still interleaved) LLR
/// stream, appending the reassembled bits to `bits`. The allocation
/// deinterleave is fused into each block's rate-match gather through
/// `interleaver`'s inverse permutation — no deinterleaved buffer is
/// ever materialised, which removes a full store/reload pass over the
/// allocation from the decode tail. Shared by the allocating and
/// arena-backed tails so their results are byte-identical by
/// construction. Per-block CRC-24B failures are absorbed here (a failed
/// block CRC implies the transport CRC-24A will fail too, matching
/// `desegment`'s contract).
fn decode_transport(
    turbo: &mut TurboScratch,
    descrambled: &[f32],
    interleaver: &Interleaver,
    iterations: usize,
    transport_bits: usize,
    bits: &mut Vec<u8>,
) {
    let shape = Segmentation::shape_for_len(transport_bits);
    let (n_blocks, k) = (shape.n_blocks, shape.block_size);
    // The per-block shares of crate::tx::rate_match_shares, computed
    // inline to keep this path allocation-free.
    let inverse = interleaver.inverse_permutation();
    let total = descrambled.len();
    debug_assert_eq!(inverse.len(), total);
    let base = total / n_blocks;
    let rem = total % n_blocks;
    let mut cursor = 0usize;
    for b in 0..n_blocks {
        let e = base + usize::from(b < rem);
        let gather = &inverse[cursor..cursor + e];
        cursor += e;
        let _block_ok = shape.desegment_block_into(
            b,
            turbo.decode_block_gathered(k, iterations, descrambled, gather),
            bits,
        );
    }
}

/// Runs the final, non-parallelisable tail of the pipeline: deinterleave →
/// soft demap has already produced `llrs` in transmission order; this
/// performs deinterleaving, turbo decode (or pass-through), and the CRC.
///
/// `llrs` must be ordered exactly as the transmitter's
/// [`crate::tx::split_bits`] chunks: slot-major, then symbol, then layer.
///
/// # Panics
///
/// Panics if `llrs.len()` does not equal the user's bits-per-subframe.
pub fn finish_user(
    cell: &CellConfig,
    input: &UserInput,
    mode: TurboMode,
    llrs: &[f32],
) -> UserResult {
    finish_user_traced(cell, input, mode, llrs, &StageTimer::disabled())
}

/// [`finish_user`] with deinterleave / turbo / CRC trace spans.
///
/// # Panics
///
/// Panics if `llrs.len()` does not equal the user's bits-per-subframe.
pub fn finish_user_traced<R: Recorder>(
    cell: &CellConfig,
    input: &UserInput,
    mode: TurboMode,
    llrs: &[f32],
    timer: &StageTimer<'_, R>,
) -> UserResult {
    let user = &input.config;
    let total = user.bits_per_subframe();
    assert_eq!(llrs.len(), total, "LLR count must match the allocation");
    let plan = FramePlan::for_user(user, mode);
    let (mut frame_bits, expected_len) = match (mode, plan) {
        (TurboMode::Passthrough, FramePlan::Passthrough { payload_bits }) => {
            // Undo the Gold-sequence scrambling (sign flips), then
            // deinterleave before the hard decision.
            let deinterleaved = timer.time(Stage::Deinterleave, || {
                let mut llrs = llrs.to_vec();
                descramble_llrs(&mut llrs, crate::tx::scrambling_init(cell, user));
                subblock_cached(total).invert(&llrs)
            });
            timer.time(Stage::Turbo, || {
                (hard_decisions(&deinterleaved), payload_bits + 24)
            })
        }
        (TurboMode::Decode { iterations }, FramePlan::Coded { transport_bits, .. }) => {
            // Descramble only: the deinterleave is fused into the
            // per-block rate-match gather inside `decode_transport`, so
            // the deinterleaved buffer is never materialised. This
            // reference path builds its turbo state fresh each call; the
            // steady-state path reuses a per-worker [`TurboScratch`].
            let descrambled = timer.time(Stage::Deinterleave, || {
                let mut llrs = llrs.to_vec();
                descramble_llrs(&mut llrs, crate::tx::scrambling_init(cell, user));
                llrs
            });
            timer.time(Stage::Turbo, || {
                let mut turbo = TurboScratch::new();
                let mut bits = Vec::new();
                decode_transport(
                    &mut turbo,
                    &descrambled,
                    &subblock_cached(total),
                    iterations,
                    transport_bits,
                    &mut bits,
                );
                (bits, transport_bits)
            })
        }
        _ => unreachable!("plan always matches mode"),
    };
    let crc_ok = timer.time(Stage::Crc, || {
        frame_bits.truncate(expected_len);
        CRC24A.check_bits(&frame_bits)
    });
    frame_bits.truncate(expected_len - 24);
    UserResult {
        payload: frame_bits,
        crc_ok,
    }
}

/// [`finish_user`] with every working buffer drawn from `arena` — the
/// zero-allocation tail of the steady-state path. The returned payload's
/// storage also comes from the arena; callers that want a fully
/// allocation-free loop hand it back with
/// [`ScratchArena::recycle_u8`] once they are done with it.
///
/// Arithmetic and ordering match [`finish_user`] exactly, so results are
/// byte-identical.
///
/// # Panics
///
/// Panics if `llrs.len()` does not equal the user's bits-per-subframe.
pub fn finish_user_with_arena(
    cell: &CellConfig,
    input: &UserInput,
    mode: TurboMode,
    llrs: &[f32],
    arena: &mut ScratchArena,
    turbo: &mut TurboScratch,
) -> UserResult {
    let user = &input.config;
    let total = user.bits_per_subframe();
    assert_eq!(llrs.len(), total, "LLR count must match the allocation");
    // Undo the Gold-sequence scrambling (sign flips).
    let mut scrambled = arena.take_f32(total);
    scrambled.extend_from_slice(llrs);
    descramble_llrs(&mut scrambled, crate::tx::scrambling_init(cell, user));
    let plan = FramePlan::for_user(user, mode);
    let (mut frame_bits, expected_len) = match (mode, plan) {
        (TurboMode::Passthrough, FramePlan::Passthrough { payload_bits }) => {
            let mut deinterleaved = arena.take_f32(total);
            deinterleaved.resize(total, 0.0);
            subblock_cached(total).invert_into(&scrambled, &mut deinterleaved);
            let mut bits = arena.take_u8(total);
            hard_decisions_into(&deinterleaved, &mut bits);
            arena.recycle_f32(deinterleaved);
            (bits, payload_bits + 24)
        }
        (TurboMode::Decode { iterations }, FramePlan::Coded { transport_bits, .. }) => {
            // Decode through the per-worker turbo scratch with the
            // deinterleave fused into each block's rate-match gather:
            // with a warm codec cache the whole tail — gather-dematch,
            // SISO iterations, desegmentation — reuses held buffers and
            // allocates nothing, and the separate deinterleave pass over
            // the allocation is gone entirely.
            let mut bits = arena.take_u8(transport_bits);
            decode_transport(
                turbo,
                &scrambled,
                &subblock_cached(total),
                iterations,
                transport_bits,
                &mut bits,
            );
            (bits, transport_bits)
        }
        _ => unreachable!("plan always matches mode"),
    };
    arena.recycle_f32(scrambled);
    frame_bits.truncate(expected_len);
    let crc_ok = CRC24A.check_bits(&frame_bits);
    frame_bits.truncate(expected_len - 24);
    UserResult {
        payload: frame_bits,
        crc_ok,
    }
}

/// Soft-demaps one combined (symbol, layer) block into LLRs.
pub fn demap_symbol(input: &UserInput, combined: &[Complex32]) -> Vec<f32> {
    demap_block(input.config.modulation, combined, input.noise_var)
}

/// [`demap_symbol`] appending into a caller-owned buffer.
pub fn demap_symbol_into(input: &UserInput, combined: &[Complex32], out: &mut Vec<f32>) {
    demap_block_into(input.config.modulation, combined, input.noise_var, out);
}

/// [`demap_symbol`] with the exact log-sum-exp demapper instead of the
/// max-log approximation — the fidelity the `DegradeDemap` overload
/// policy gives up when the receiver falls behind its deadline budget.
pub fn demap_symbol_exact(input: &UserInput, combined: &[Complex32]) -> Vec<f32> {
    lte_dsp::llr::demap_block_exact(input.config.modulation, combined, input.noise_var)
}

/// Processes one user end to end, serially — the reference path.
///
/// # Panics
///
/// Panics if `input` is internally inconsistent (see
/// [`UserInput::validate`]).
pub fn process_user(cell: &CellConfig, input: &UserInput, mode: TurboMode) -> UserResult {
    let planner = FftPlanner::new();
    process_user_with_planner(cell, input, mode, &planner)
}

/// [`process_user`] with a shared FFT planner (avoids replanning when many
/// users share allocation sizes).
pub fn process_user_with_planner(
    cell: &CellConfig,
    input: &UserInput,
    mode: TurboMode,
    planner: &FftPlanner,
) -> UserResult {
    process_user_traced(cell, input, mode, planner, &StageTimer::disabled())
}

/// The serial pipeline with every stage wrapped in a wall-clock trace
/// span: the estimation kernels (matched filter, IFFT, window, FFT),
/// combiner weights, per-symbol combining, demapping, and the serial
/// tail (deinterleave, turbo, CRC).
///
/// # Panics
///
/// Panics if `input` is internally inconsistent (see
/// [`UserInput::validate`]).
pub fn process_user_traced<R: Recorder>(
    cell: &CellConfig,
    input: &UserInput,
    mode: TurboMode,
    planner: &FftPlanner,
    timer: &StageTimer<'_, R>,
) -> UserResult {
    let llrs = demodulate_user_traced(cell, input, planner, timer);
    // Stage 3: deinterleave → (turbo) decode → CRC.
    finish_user_traced(cell, input, mode, &llrs, timer)
}

/// Runs the demodulation front half of the pipeline — estimation,
/// combiner weights, antenna combining and soft demapping — and returns
/// the raw (still scrambled/interleaved) LLRs in transmission order.
///
/// This is the HARQ soft-combining boundary: retransmissions of one
/// transport block are scrambled identically, so their raw LLR streams
/// add element-wise ([`lte_dsp::llr::combine_llrs`]) before a single
/// [`finish_user`] pass descrambles and decodes the combination.
///
/// # Panics
///
/// Panics if `input` is internally inconsistent (see
/// [`UserInput::validate`]).
pub fn demodulate_user(cell: &CellConfig, input: &UserInput, planner: &FftPlanner) -> Vec<f32> {
    demodulate_user_traced(cell, input, planner, &StageTimer::disabled())
}

/// [`demodulate_user`] with per-stage wall-clock trace spans.
///
/// # Panics
///
/// Panics if `input` is internally inconsistent (see
/// [`UserInput::validate`]).
pub fn demodulate_user_traced<R: Recorder>(
    cell: &CellConfig,
    input: &UserInput,
    planner: &FftPlanner,
    timer: &StageTimer<'_, R>,
) -> Vec<f32> {
    input.validate();
    let user = &input.config;

    // Stage 1: channel estimation per slot (rx × layer tasks), then
    // combiner weights — data processing for a slot needs that slot's
    // estimate (§II-C).
    let weights: Vec<CombinerWeights> = (0..SLOTS_PER_SUBFRAME)
        .map(|slot| {
            let est = estimate_slot_traced(cell, input, slot, planner, timer);
            timer.time(Stage::Weights, || {
                CombinerWeights::mmse(&est, input.noise_var)
            })
        })
        .collect();

    // Stage 2: antenna combining + IFFT per (slot, symbol, layer), then
    // soft demapping, keeping the transmitter's bit order.
    let mut llrs = Vec::with_capacity(user.bits_per_subframe());
    #[allow(clippy::needless_range_loop)] // slot indexes input and weights in parallel
    for slot in 0..SLOTS_PER_SUBFRAME {
        for sym in 0..DATA_SYMBOLS_PER_SLOT {
            for layer in 0..user.layers {
                let combined = timer.time(Stage::Combining, || {
                    combine_symbol(input, &weights[slot], slot, sym, layer, planner)
                });
                let demapped = timer.time(Stage::Demap, || demap_symbol(input, &combined));
                llrs.extend(demapped);
            }
        }
    }
    llrs
}

/// Per-thread reusable state for the zero-allocation receive path: the
/// buffer arena plus the estimate, weight and matrix scratch the
/// pipeline reshapes in place every subframe.
///
/// One instance lives per worker thread (see [`UserScratch::with`]);
/// nothing here is shared, so there is no locking on the hot path.
#[derive(Default)]
pub struct UserScratch {
    /// Size-classed buffer pools and FFT working space.
    pub arena: ScratchArena,
    /// Cached turbo decoders, SISO workspace and LLR staging buffers.
    pub turbo: TurboScratch,
    est: ChannelEstimate,
    weights: Vec<CombinerWeights>,
    mmse: MmseScratch,
    combined: Vec<Complex32>,
    llrs: Vec<f32>,
}

thread_local! {
    static USER_SCRATCH: RefCell<UserScratch> = RefCell::new(UserScratch::default());
}

impl UserScratch {
    /// A fresh scratch; buffers grow to steady-state sizes on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with this thread's scratch.
    ///
    /// The closure must not call [`UserScratch::with`] again (the
    /// `RefCell` would panic) — in particular it must not block on a
    /// work-stealing scope whose stolen tasks might re-enter the
    /// scratch. Keep each borrow confined to one task's straight-line
    /// work.
    pub fn with<T>(f: impl FnOnce(&mut UserScratch) -> T) -> T {
        USER_SCRATCH.with(|s| f(&mut s.borrow_mut()))
    }

    /// Computes one slot's combiner weights from a flat
    /// `[rx][layer][subcarrier]` path buffer through this scratch's
    /// matrices — the parallel runtime's estimation tasks write such a
    /// buffer, and the user thread turns it into weights here without
    /// allocating any intermediates.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != n_rx * n_layers * n_sc` or
    /// `noise_var <= 0`.
    pub fn weights_from_flat_estimate(
        &mut self,
        n_rx: usize,
        n_layers: usize,
        n_sc: usize,
        flat: &[Complex32],
        noise_var: f32,
    ) -> CombinerWeights {
        assert_eq!(flat.len(), n_rx * n_layers * n_sc, "path buffer mismatch");
        self.est.reset(n_rx, n_layers, n_sc);
        for rx in 0..n_rx {
            for layer in 0..n_layers {
                let base = (rx * n_layers + layer) * n_sc;
                self.est
                    .path_mut(rx, layer)
                    .copy_from_slice(&flat[base..base + n_sc]);
            }
        }
        let mut weights = CombinerWeights::empty();
        weights.compute(&self.est, noise_var, &mut self.mmse);
        weights
    }
}

/// [`demodulate_user`] with all working state drawn from `scratch`,
/// appending the LLRs to `out` — the zero-allocation front half of the
/// steady-state path. Kernel order and arithmetic match the allocating
/// pipeline exactly, so the LLR stream is byte-identical.
///
/// `out` is cleared and refilled; its capacity is reused.
///
/// # Panics
///
/// Panics if `input` is internally inconsistent (see
/// [`UserInput::validate`]).
pub fn demodulate_user_into(
    cell: &CellConfig,
    input: &UserInput,
    planner: &FftPlanner,
    scratch: &mut UserScratch,
    out: &mut Vec<f32>,
) {
    input.validate();
    let user = &input.config;
    let n_sc = user.subcarriers();

    // Stage 1: channel estimation per slot (rx × layer tasks), then
    // combiner weights — data processing for a slot needs that slot's
    // estimate (§II-C).
    scratch
        .weights
        .resize_with(SLOTS_PER_SUBFRAME, CombinerWeights::empty);
    for slot in 0..SLOTS_PER_SUBFRAME {
        scratch.est.reset(cell.n_rx, user.layers, n_sc);
        for rx in 0..cell.n_rx {
            for layer in 0..user.layers {
                estimate_path_into(
                    cell,
                    input,
                    slot,
                    rx,
                    layer,
                    planner,
                    &mut scratch.arena,
                    scratch.est.path_mut(rx, layer),
                );
            }
        }
        scratch.weights[slot].compute(&scratch.est, input.noise_var, &mut scratch.mmse);
    }

    // Stage 2: antenna combining + IFFT per (slot, symbol, layer), then
    // soft demapping, keeping the transmitter's bit order.
    out.clear();
    out.reserve(user.bits_per_subframe());
    for slot in 0..SLOTS_PER_SUBFRAME {
        for sym in 0..DATA_SYMBOLS_PER_SLOT {
            for layer in 0..user.layers {
                combine_symbol_into(
                    input,
                    &scratch.weights[slot],
                    slot,
                    sym,
                    layer,
                    planner,
                    &mut scratch.arena,
                    &mut scratch.combined,
                );
                demap_block_into(user.modulation, &scratch.combined, input.noise_var, out);
            }
        }
    }
}

/// [`process_user_with_planner`] running entirely on this thread's
/// [`UserScratch`] — the zero-allocation serial pipeline. After warmup
/// the only heap traffic is the returned payload, whose storage cycles
/// through the arena when the caller recycles it.
///
/// # Panics
///
/// Panics if `input` is internally inconsistent (see
/// [`UserInput::validate`]).
pub fn process_user_pooled(
    cell: &CellConfig,
    input: &UserInput,
    mode: TurboMode,
    planner: &FftPlanner,
) -> UserResult {
    UserScratch::with(|scratch| {
        let mut llrs = std::mem::take(&mut scratch.llrs);
        demodulate_user_into(cell, input, planner, scratch, &mut llrs);
        let result = finish_user_with_arena(
            cell,
            input,
            mode,
            &llrs,
            &mut scratch.arena,
            &mut scratch.turbo,
        );
        scratch.llrs = llrs;
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::UserConfig;
    use crate::tx::{synthesize_user, synthesize_user_over_channel, synthesize_user_with_mode};
    use lte_dsp::channel::MimoChannel;
    use lte_dsp::{Modulation, Xoshiro256};

    #[test]
    fn clean_channel_every_modulation_and_layer_count() {
        let cell = CellConfig::default();
        let mut rng = Xoshiro256::seed_from_u64(100);
        for modulation in Modulation::ALL {
            // Higher-order constellations need more margin against MMSE
            // noise enhancement on random ill-conditioned 4×4 channels.
            let snr_db = match modulation {
                Modulation::Qpsk => 30.0,
                Modulation::Qam16 => 35.0,
                Modulation::Qam64 => 45.0,
            };
            for layers in 1..=4 {
                let user = UserConfig::new(4, layers, modulation);
                let input = synthesize_user(&cell, &user, snr_db, &mut rng);
                let result = process_user(&cell, &input, TurboMode::Passthrough);
                assert!(
                    result.matches(&input.ground_truth),
                    "{modulation} x{layers} failed (crc_ok={})",
                    result.crc_ok
                );
            }
        }
    }

    #[test]
    fn large_allocation_decodes() {
        let cell = CellConfig::default();
        let user = UserConfig::new(50, 2, Modulation::Qam64);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let input = synthesize_user(&cell, &user, 35.0, &mut rng);
        let result = process_user(&cell, &input, TurboMode::Passthrough);
        assert!(result.matches(&input.ground_truth));
    }

    #[test]
    fn turbo_decode_mode_round_trips() {
        let cell = CellConfig::default();
        let user = UserConfig::new(6, 2, Modulation::Qam16);
        let mode = TurboMode::Decode { iterations: 4 };
        let mut rng = Xoshiro256::seed_from_u64(8);
        let input = synthesize_user_with_mode(&cell, &user, mode, 25.0, &mut rng);
        let result = process_user(&cell, &input, mode);
        assert!(result.matches(&input.ground_truth));
    }

    #[test]
    fn turbo_decode_survives_lower_snr_than_passthrough() {
        // The coded mode should still pass CRC at an SNR where the uncoded
        // pass-through frame takes bit errors.
        let cell = CellConfig::default();
        let user = UserConfig::new(8, 1, Modulation::Qpsk);
        let snr_db = 3.0;
        let mut failures_plain = 0;
        let mut failures_coded = 0;
        for seed in 0..8 {
            let mut rng = Xoshiro256::seed_from_u64(1000 + seed);
            let channel = MimoChannel::randomize(cell.n_rx, 1, 3, &mut rng);
            let plain = synthesize_user_over_channel(
                &cell,
                &user,
                TurboMode::Passthrough,
                snr_db,
                &channel,
                &mut rng,
            );
            if !process_user(&cell, &plain, TurboMode::Passthrough).matches(&plain.ground_truth) {
                failures_plain += 1;
            }
            let mode = TurboMode::Decode { iterations: 6 };
            let coded =
                synthesize_user_over_channel(&cell, &user, mode, snr_db, &channel, &mut rng);
            if !process_user(&cell, &coded, mode).matches(&coded.ground_truth) {
                failures_coded += 1;
            }
        }
        assert!(
            failures_coded <= failures_plain,
            "coded {failures_coded} vs plain {failures_plain}"
        );
    }

    #[test]
    fn corrupted_input_fails_crc() {
        let cell = CellConfig::default();
        let user = UserConfig::new(4, 1, Modulation::Qpsk);
        let mut rng = Xoshiro256::seed_from_u64(55);
        let mut input = synthesize_user(&cell, &user, 35.0, &mut rng);
        // Zero out one whole data symbol on every antenna.
        for rx in 0..cell.n_rx {
            for z in input.slots[0].data[2].antenna_mut(rx) {
                *z = Complex32::ZERO;
            }
        }
        let result = process_user(&cell, &input, TurboMode::Passthrough);
        assert!(!result.crc_ok, "CRC must catch a destroyed symbol");
    }

    #[test]
    fn wrong_cell_identity_fails_to_decode() {
        // A subframe synthesized for one cell must not decode in a
        // neighbouring cell: the reference sequences (Zadoff–Chu root)
        // and scrambling (physical-cell identity) both differ.
        let a = CellConfig::with_identity(2, 3);
        let b = CellConfig::with_identity(2, 4);
        let user = UserConfig::new(6, 1, Modulation::Qpsk);
        let mut rng = Xoshiro256::seed_from_u64(42);
        let input = synthesize_user(&a, &user, 30.0, &mut rng);
        assert!(process_user(&a, &input, TurboMode::Passthrough).matches(&input.ground_truth));
        assert!(!process_user(&b, &input, TurboMode::Passthrough).crc_ok);
    }

    #[test]
    fn deterministic_results() {
        let cell = CellConfig::default();
        let user = UserConfig::new(10, 3, Modulation::Qam16);
        let input = synthesize_user(&cell, &user, 30.0, &mut Xoshiro256::seed_from_u64(77));
        let a = process_user(&cell, &input, TurboMode::Passthrough);
        let b = process_user(&cell, &input, TurboMode::Passthrough);
        assert_eq!(a, b);
    }

    #[test]
    fn pooled_pipeline_matches_allocating_pipeline_bitwise() {
        let cell = CellConfig::default();
        let planner = FftPlanner::new();
        let mut rng = Xoshiro256::seed_from_u64(31);
        for (prbs, layers, modulation) in [
            (4, 1, Modulation::Qpsk),
            (10, 2, Modulation::Qam16),
            (25, 4, Modulation::Qam64),
        ] {
            let user = UserConfig::new(prbs, layers, modulation);
            let input = synthesize_user(&cell, &user, 35.0, &mut rng);
            let fresh = process_user_with_planner(&cell, &input, TurboMode::Passthrough, &planner);
            let pooled = process_user_pooled(&cell, &input, TurboMode::Passthrough, &planner);
            assert_eq!(fresh, pooled, "{modulation} x{layers} prbs {prbs}");
        }
    }

    #[test]
    fn pooled_pipeline_matches_in_decode_mode() {
        let cell = CellConfig::default();
        let planner = FftPlanner::new();
        let user = UserConfig::new(6, 2, Modulation::Qam16);
        let mode = TurboMode::Decode { iterations: 4 };
        let mut rng = Xoshiro256::seed_from_u64(8);
        let input = synthesize_user_with_mode(&cell, &user, mode, 25.0, &mut rng);
        let fresh = process_user_with_planner(&cell, &input, mode, &planner);
        let pooled = process_user_pooled(&cell, &input, mode, &planner);
        assert_eq!(fresh, pooled);
        assert!(pooled.matches(&input.ground_truth));
    }

    #[test]
    fn finish_user_with_arena_matches_and_recycles() {
        let cell = CellConfig::default();
        let user = UserConfig::new(8, 2, Modulation::Qam16);
        let mut rng = Xoshiro256::seed_from_u64(17);
        let input = synthesize_user(&cell, &user, 35.0, &mut rng);
        let planner = FftPlanner::new();
        let llrs = demodulate_user(&cell, &input, &planner);
        let fresh = finish_user(&cell, &input, TurboMode::Passthrough, &llrs);
        let mut arena = ScratchArena::new();
        let mut turbo = TurboScratch::new();
        for _ in 0..3 {
            let pooled = finish_user_with_arena(
                &cell,
                &input,
                TurboMode::Passthrough,
                &llrs,
                &mut arena,
                &mut turbo,
            );
            assert_eq!(fresh, pooled);
            arena.recycle_u8(pooled.payload);
        }
        assert!(arena.pooled_buffers() >= 3, "buffers must return to pool");
    }

    #[test]
    #[should_panic(expected = "LLR count")]
    fn finish_user_checks_llr_length() {
        let cell = CellConfig::default();
        let user = UserConfig::new(2, 1, Modulation::Qpsk);
        let input = synthesize_user(&cell, &user, 30.0, &mut Xoshiro256::seed_from_u64(1));
        finish_user(&cell, &input, TurboMode::Passthrough, &[0.0; 10]);
    }

    #[test]
    fn traced_pipeline_matches_untraced_and_covers_every_stage() {
        use lte_obs::{Event, RingRecorder, Stage};

        let cell = CellConfig::default();
        let user = UserConfig::new(6, 2, Modulation::Qam16);
        let input = synthesize_user(&cell, &user, 30.0, &mut Xoshiro256::seed_from_u64(21));
        let plain = process_user(&cell, &input, TurboMode::Passthrough);

        let recorder = RingRecorder::new(1 << 16);
        let timer = StageTimer::new(&recorder);
        let planner = FftPlanner::new();
        let traced = process_user_traced(&cell, &input, TurboMode::Passthrough, &planner, &timer);
        assert_eq!(plain, traced, "tracing must not change results");

        let mut seen = std::collections::BTreeSet::new();
        for ev in recorder.events() {
            if let Event::StageSpan {
                stage,
                start_ns,
                end_ns,
            } = ev
            {
                assert!(end_ns >= start_ns);
                seen.insert(stage.name());
            }
        }
        for stage in [
            Stage::MatchedFilter,
            Stage::Ifft,
            Stage::Window,
            Stage::Fft,
            Stage::Weights,
            Stage::Combining,
            Stage::Demap,
            Stage::Deinterleave,
            Stage::Turbo,
            Stage::Crc,
        ] {
            assert!(seen.contains(stage.name()), "no span for {stage}");
        }
    }
}

/// Processes one user end to end *without* genie knowledge of the noise
/// variance: the receiver estimates it blindly from the out-of-window
/// taps of the reference symbol's channel impulse response (see
/// [`crate::estimator::estimate_noise_var`]) and uses the estimate for
/// MMSE regularisation and LLR scaling.
pub fn process_user_blind(cell: &CellConfig, input: &UserInput, mode: TurboMode) -> UserResult {
    let planner = FftPlanner::new();
    input.validate();
    let user = &input.config;
    // Average the blind estimate over both slots and all antennas.
    let mut noise = 0.0f64;
    for slot in 0..SLOTS_PER_SUBFRAME {
        for rx in 0..cell.n_rx {
            noise += crate::estimator::estimate_noise_var(cell, input, slot, rx, &planner) as f64;
        }
    }
    let noise_var = (noise / (SLOTS_PER_SUBFRAME * cell.n_rx) as f64).max(1e-9) as f32;

    let weights: Vec<CombinerWeights> = (0..SLOTS_PER_SUBFRAME)
        .map(|slot| {
            let est = estimate_slot(cell, input, slot, &planner);
            CombinerWeights::mmse(&est, noise_var)
        })
        .collect();
    let mut llrs = Vec::with_capacity(user.bits_per_subframe());
    for (slot, w) in weights.iter().enumerate() {
        for sym in 0..DATA_SYMBOLS_PER_SLOT {
            for layer in 0..user.layers {
                let combined = combine_symbol(input, w, slot, sym, layer, &planner);
                llrs.extend(demap_block(user.modulation, &combined, noise_var));
            }
        }
    }
    finish_user(cell, input, mode, &llrs)
}

#[cfg(test)]
mod blind_tests {
    use super::*;
    use crate::params::UserConfig;
    use crate::tx::synthesize_user;
    use lte_dsp::{Modulation, Xoshiro256};

    #[test]
    fn blind_receiver_matches_genie_at_moderate_snr() {
        let cell = CellConfig::default();
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut genie_ok = 0;
        let mut blind_ok = 0;
        for _ in 0..6 {
            let user = UserConfig::new(12, 2, Modulation::Qam16);
            let input = synthesize_user(&cell, &user, 25.0, &mut rng);
            if process_user(&cell, &input, TurboMode::Passthrough).matches(&input.ground_truth) {
                genie_ok += 1;
            }
            if process_user_blind(&cell, &input, TurboMode::Passthrough)
                .matches(&input.ground_truth)
            {
                blind_ok += 1;
            }
        }
        assert!(
            genie_ok >= 5,
            "genie baseline should mostly pass: {genie_ok}/6"
        );
        assert!(
            blind_ok + 1 >= genie_ok,
            "blind ({blind_ok}) must be within one block of genie ({genie_ok})"
        );
    }

    #[test]
    fn blind_receiver_rejects_noise() {
        let cell = CellConfig::with_antennas(2);
        let user = UserConfig::new(4, 1, Modulation::Qpsk);
        let mut rng = Xoshiro256::seed_from_u64(10);
        let input = synthesize_user(&cell, &user, -25.0, &mut rng);
        let result = process_user_blind(&cell, &input, TurboMode::Passthrough);
        assert!(!result.crc_ok);
    }
}
