//! Channel estimation (left half of Fig. 3).
//!
//! For each (receive antenna, layer) pair — the paper's unit of
//! channel-estimation parallelism, up to 4×4 = 16 tasks per user — the
//! estimator runs:
//!
//! 1. **matched filter**: received reference symbol × conjugate of the
//!    layer's known DM-RS sequence,
//! 2. **IFFT** to the time domain, where the path's impulse response sits
//!    at delay 0 and other layers' responses sit `N/L` samples away
//!    (their cyclic shifts),
//! 3. **window**: zero everything outside the delay-spread budget,
//!    suppressing noise and the other layers,
//! 4. **FFT** back to the frequency domain → the denoised estimate
//!    `Ĥ(rx, layer, subcarrier)`.

use lte_dsp::arena::ScratchArena;
use lte_dsp::fft::FftPlanner;
use lte_dsp::matched_filter::matched_filter;
use lte_dsp::window::ChannelWindow;
use lte_dsp::Complex32;
use lte_obs::{Recorder, Stage};

use crate::grid::UserInput;
use crate::params::CellConfig;
use crate::trace::StageTimer;
use crate::tx::{reference_for_layer, reference_for_layer_cached};

/// Channel estimates for one slot: `paths[rx][layer][subcarrier]`.
///
/// The `Default` value has zero paths; [`reset`](Self::reset) shapes it
/// before use.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChannelEstimate {
    paths: Vec<Vec<Vec<Complex32>>>,
}

impl ChannelEstimate {
    /// Creates an empty estimate container for `n_rx × n_layers` paths of
    /// `n_sc` subcarriers.
    pub fn empty(n_rx: usize, n_layers: usize, n_sc: usize) -> Self {
        ChannelEstimate {
            paths: vec![vec![vec![Complex32::ZERO; n_sc]; n_layers]; n_rx],
        }
    }

    /// Stores one estimated path.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or the length mismatches.
    pub fn set_path(&mut self, rx: usize, layer: usize, estimate: Vec<Complex32>) {
        assert_eq!(
            estimate.len(),
            self.paths[rx][layer].len(),
            "estimate length mismatch"
        );
        self.paths[rx][layer] = estimate;
    }

    /// Reshapes to `n_rx × n_layers` paths of `n_sc` subcarriers, all
    /// zeroed, reusing every nested buffer whose shape already matches —
    /// the steady-state case, where this allocates nothing.
    pub fn reset(&mut self, n_rx: usize, n_layers: usize, n_sc: usize) {
        self.paths.truncate(n_rx);
        self.paths.resize_with(n_rx, Vec::new);
        for row in &mut self.paths {
            row.truncate(n_layers);
            row.resize_with(n_layers, Vec::new);
            for path in row.iter_mut() {
                path.clear();
                path.resize(n_sc, Complex32::ZERO);
            }
        }
    }

    /// One estimated path.
    pub fn path(&self, rx: usize, layer: usize) -> &[Complex32] {
        &self.paths[rx][layer]
    }

    /// Mutable access to one path's storage, for in-place estimation.
    pub fn path_mut(&mut self, rx: usize, layer: usize) -> &mut Vec<Complex32> {
        &mut self.paths[rx][layer]
    }

    /// Number of receive antennas.
    pub fn n_rx(&self) -> usize {
        self.paths.len()
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.paths[0].len()
    }

    /// Number of subcarriers.
    pub fn n_sc(&self) -> usize {
        self.paths[0][0].len()
    }
}

/// Estimates a single (rx, layer) path from one slot's reference symbol —
/// the benchmark's channel-estimation *task*.
///
/// # Panics
///
/// Panics if `slot`, `rx` or `layer` are out of range for the input.
pub fn estimate_path(
    cell: &CellConfig,
    input: &UserInput,
    slot: usize,
    rx: usize,
    layer: usize,
    planner: &FftPlanner,
) -> Vec<Complex32> {
    estimate_path_traced(
        cell,
        input,
        slot,
        rx,
        layer,
        planner,
        &StageTimer::disabled(),
    )
}

/// [`estimate_path`] with each kernel (matched filter → IFFT → window →
/// FFT) wrapped in a wall-clock trace span.
pub fn estimate_path_traced<R: Recorder>(
    cell: &CellConfig,
    input: &UserInput,
    slot: usize,
    rx: usize,
    layer: usize,
    planner: &FftPlanner,
    timer: &StageTimer<'_, R>,
) -> Vec<Complex32> {
    let received = input.slots[slot].reference.antenna(rx);
    let n = received.len();
    let reference = reference_for_layer_cached(cell, &input.config, layer);
    let mut work = vec![Complex32::ZERO; n];
    timer.time(Stage::MatchedFilter, || {
        matched_filter(received, reference.samples(), &mut work)
    });
    timer.time(Stage::Ifft, || planner.inverse(n).process(&mut work));
    timer.time(Stage::Window, || ChannelWindow::for_len(n).apply(&mut work));
    timer.time(Stage::Fft, || planner.forward(n).process(&mut work));
    work
}

/// [`estimate_path`] into a caller-provided slice, with FFT working
/// space drawn from `arena` and the DM-RS reference served from the
/// global cache — the zero-allocation variant the worker pool runs in
/// steady state. The kernel sequence and arithmetic are identical to
/// the allocating path, so results are byte-for-byte equal.
///
/// Every element of `out` is overwritten.
///
/// # Panics
///
/// Panics if `slot`, `rx` or `layer` are out of range for the input, or
/// if `out` is not exactly one reference symbol long.
#[allow(clippy::too_many_arguments)] // mirrors estimate_path plus the two scratch outputs
pub fn estimate_path_into(
    cell: &CellConfig,
    input: &UserInput,
    slot: usize,
    rx: usize,
    layer: usize,
    planner: &FftPlanner,
    arena: &mut ScratchArena,
    out: &mut [Complex32],
) {
    let received = input.slots[slot].reference.antenna(rx);
    let n = received.len();
    let reference = reference_for_layer_cached(cell, &input.config, layer);
    matched_filter(received, reference.samples(), out);
    planner
        .inverse(n)
        .process_with_scratch(out, arena.fft_scratch(n));
    ChannelWindow::for_len(n).apply(out);
    planner
        .forward(n)
        .process_with_scratch(out, arena.fft_scratch(n));
}

/// Estimates every path of one slot serially (the reference
/// implementation; the parallel runtime spawns [`estimate_path`] tasks
/// instead).
pub fn estimate_slot(
    cell: &CellConfig,
    input: &UserInput,
    slot: usize,
    planner: &FftPlanner,
) -> ChannelEstimate {
    estimate_slot_traced(cell, input, slot, planner, &StageTimer::disabled())
}

/// [`estimate_slot`] with per-kernel trace spans.
pub fn estimate_slot_traced<R: Recorder>(
    cell: &CellConfig,
    input: &UserInput,
    slot: usize,
    planner: &FftPlanner,
    timer: &StageTimer<'_, R>,
) -> ChannelEstimate {
    let n_sc = input.config.subcarriers();
    let mut est = ChannelEstimate::empty(cell.n_rx, input.config.layers, n_sc);
    for rx in 0..cell.n_rx {
        for layer in 0..input.config.layers {
            est.set_path(
                rx,
                layer,
                estimate_path_traced(cell, input, slot, rx, layer, planner, timer),
            );
        }
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{TurboMode, UserConfig};
    use crate::tx::synthesize_user_over_channel;
    use lte_dsp::channel::MimoChannel;
    use lte_dsp::{Modulation, Xoshiro256};

    fn estimate_error(
        cell: &CellConfig,
        user: &UserConfig,
        channel: &MimoChannel,
        snr_db: f64,
        seed: u64,
    ) -> f64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let input = synthesize_user_over_channel(
            cell,
            user,
            TurboMode::Passthrough,
            snr_db,
            channel,
            &mut rng,
        );
        let planner = FftPlanner::new();
        let est = estimate_slot(cell, &input, 0, &planner);
        let n_sc = user.subcarriers();
        let mut err = 0.0f64;
        let mut energy = 0.0f64;
        for rx in 0..cell.n_rx {
            for layer in 0..user.layers {
                let truth = channel.frequency_response(rx, layer, n_sc);
                for (e, t) in est.path(rx, layer).iter().zip(&truth) {
                    err += (*e - *t).norm_sqr() as f64;
                    energy += t.norm_sqr() as f64;
                }
            }
        }
        err / energy.max(1e-12)
    }

    #[test]
    fn identity_channel_estimated_exactly() {
        let cell = CellConfig::with_antennas(2);
        let user = UserConfig::new(8, 2, Modulation::Qpsk);
        let channel = MimoChannel::identity(2, 2);
        let rel_err = estimate_error(&cell, &user, &channel, 60.0, 3);
        assert!(rel_err < 1e-3, "relative error {rel_err}");
    }

    #[test]
    fn fading_channel_estimated_accurately_at_high_snr() {
        let cell = CellConfig::default();
        let user = UserConfig::new(16, 4, Modulation::Qam16);
        let mut rng = Xoshiro256::seed_from_u64(42);
        let channel = MimoChannel::randomize(4, 4, 4, &mut rng);
        let rel_err = estimate_error(&cell, &user, &channel, 40.0, 7);
        assert!(rel_err < 0.05, "relative error {rel_err}");
    }

    #[test]
    fn windowing_improves_noisy_estimates() {
        // At moderate SNR the windowed estimator must beat the raw matched
        // filter (which is what the window is for).
        let cell = CellConfig::with_antennas(2);
        let user = UserConfig::new(16, 1, Modulation::Qpsk);
        let mut rng = Xoshiro256::seed_from_u64(9);
        let channel = MimoChannel::randomize(2, 1, 3, &mut rng);
        let mut data_rng = Xoshiro256::seed_from_u64(10);
        let input = synthesize_user_over_channel(
            &cell,
            &user,
            TurboMode::Passthrough,
            5.0,
            &channel,
            &mut data_rng,
        );
        let planner = FftPlanner::new();
        let windowed = estimate_path(&cell, &input, 0, 0, 0, &planner);
        // Raw estimate: matched filter only.
        let reference = reference_for_layer(&cell, &user, 0);
        let mut raw = vec![Complex32::ZERO; user.subcarriers()];
        lte_dsp::matched_filter::matched_filter(
            input.slots[0].reference.antenna(0),
            reference.samples(),
            &mut raw,
        );
        let truth = channel.frequency_response(0, 0, user.subcarriers());
        let err = |est: &[Complex32]| -> f64 {
            est.iter()
                .zip(&truth)
                .map(|(e, t)| (*e - *t).norm_sqr() as f64)
                .sum()
        };
        assert!(
            err(&windowed) < err(&raw),
            "windowed {} !< raw {}",
            err(&windowed),
            err(&raw)
        );
    }

    #[test]
    fn estimate_container_shape() {
        let est = ChannelEstimate::empty(4, 3, 24);
        assert_eq!(est.n_rx(), 4);
        assert_eq!(est.n_layers(), 3);
        assert_eq!(est.n_sc(), 24);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_path_length_checked() {
        let mut est = ChannelEstimate::empty(1, 1, 12);
        est.set_path(0, 0, vec![Complex32::ZERO; 13]);
    }

    #[test]
    fn reset_matches_empty_and_reuses_storage() {
        let mut est = ChannelEstimate::empty(4, 2, 36);
        est.set_path(0, 1, vec![Complex32::ONE; 36]);
        est.reset(2, 4, 12);
        assert_eq!(est, ChannelEstimate::empty(2, 4, 12));
        // Shrinking then re-growing within capacity must not lose shape.
        est.reset(4, 2, 36);
        assert_eq!(est, ChannelEstimate::empty(4, 2, 36));
    }

    #[test]
    fn estimate_path_into_matches_allocating_path_bitwise() {
        let cell = CellConfig::default();
        let user = UserConfig::new(6, 2, Modulation::Qam16);
        let mut rng = Xoshiro256::seed_from_u64(11);
        let channel = MimoChannel::randomize(4, 2, 3, &mut rng);
        let input = synthesize_user_over_channel(
            &cell,
            &user,
            TurboMode::Passthrough,
            15.0,
            &channel,
            &mut rng,
        );
        let planner = FftPlanner::new();
        let mut arena = lte_dsp::arena::ScratchArena::new();
        let mut out = vec![Complex32::ONE; user.subcarriers()]; // dirty
        for slot in 0..2 {
            for rx in 0..4 {
                for layer in 0..2 {
                    let fresh = estimate_path(&cell, &input, slot, rx, layer, &planner);
                    estimate_path_into(
                        &cell, &input, slot, rx, layer, &planner, &mut arena, &mut out,
                    );
                    assert_eq!(fresh, out, "slot {slot} rx {rx} layer {layer}");
                }
            }
        }
    }

    #[test]
    fn noise_var_with_arena_matches_allocating_path_bitwise() {
        let cell = CellConfig::with_antennas(2);
        let user = UserConfig::new(8, 2, Modulation::Qpsk);
        let mut rng = Xoshiro256::seed_from_u64(13);
        let input = crate::tx::synthesize_user_with_mode(
            &cell,
            &user,
            TurboMode::Passthrough,
            12.0,
            &mut rng,
        );
        let planner = FftPlanner::new();
        let mut arena = lte_dsp::arena::ScratchArena::new();
        for slot in 0..2 {
            for rx in 0..2 {
                let fresh = estimate_noise_var(&cell, &input, slot, rx, &planner);
                let pooled =
                    estimate_noise_var_with_arena(&cell, &input, slot, rx, &planner, &mut arena);
                assert_eq!(fresh.to_bits(), pooled.to_bits(), "slot {slot} rx {rx}");
            }
        }
        assert!(arena.pooled_buffers() >= 2, "buffers must return to pool");
    }
}

/// Blind noise-variance estimation from one received reference symbol.
///
/// After the matched filter and IFFT, the channel energy of every layer
/// is confined to a window around its cyclic-shift offset; the remaining
/// taps contain only noise with per-tap variance `σ²/N` (the IFFT's
/// `1/N` scaling). Averaging their power and scaling by `N` recovers the
/// per-subcarrier noise variance — the receiver does not need the true
/// value the synthesiser used.
///
/// # Panics
///
/// Panics if `slot` or `rx` is out of range.
pub fn estimate_noise_var(
    cell: &CellConfig,
    input: &UserInput,
    slot: usize,
    rx: usize,
    planner: &FftPlanner,
) -> f32 {
    estimate_noise_var_with_arena(cell, input, slot, rx, planner, &mut ScratchArena::new())
}

/// [`estimate_noise_var`] with all working buffers drawn from `arena` —
/// the zero-allocation variant of the steady-state receive path.
///
/// # Panics
///
/// Panics if `slot` or `rx` is out of range.
pub fn estimate_noise_var_with_arena(
    cell: &CellConfig,
    input: &UserInput,
    slot: usize,
    rx: usize,
    planner: &FftPlanner,
    arena: &mut ScratchArena,
) -> f32 {
    let received = input.slots[slot].reference.antenna(rx);
    let n = received.len();
    let reference = reference_for_layer_cached(cell, &input.config, 0);
    let mut work = arena.take_c32(n);
    work.resize(n, Complex32::ZERO);
    matched_filter(received, reference.samples(), &mut work);
    planner
        .inverse(n)
        .process_with_scratch(&mut work, arena.fft_scratch(n));
    // Mark the kept window of every layer (relative to layer 0's
    // matched filter, layer l sits at offset l·N/L).
    let window = ChannelWindow::for_len(n);
    let layers = crate::tx::shift_denominator(&input.config);
    let mut excluded = arena.take_u8(n);
    excluded.resize(n, 0);
    for l in 0..input.config.layers {
        let offset = l * n / layers;
        for t in 0..window.head {
            excluded[(offset + t) % n] = 1;
        }
        for t in 0..window.tail {
            excluded[(offset + n - 1 - t) % n] = 1;
        }
    }
    let mut acc = 0.0f64;
    let mut count = 0usize;
    for (t, z) in work.iter().enumerate() {
        if excluded[t] == 0 {
            acc += z.norm_sqr() as f64;
            count += 1;
        }
    }
    arena.recycle_c32(work);
    arena.recycle_u8(excluded);
    if count == 0 {
        return input.noise_var; // degenerate tiny allocation
    }
    (acc / count as f64 * n as f64) as f32
}

#[cfg(test)]
mod noise_tests {
    use super::*;
    use crate::params::{TurboMode, UserConfig};
    use crate::tx::synthesize_user_with_mode;
    use lte_dsp::{Modulation, Xoshiro256};

    #[test]
    fn noise_estimate_tracks_truth() {
        let cell = CellConfig::with_antennas(2);
        let planner = FftPlanner::new();
        for snr_db in [0.0, 10.0, 20.0] {
            let user = UserConfig::new(16, 2, Modulation::Qpsk);
            let mut rng = Xoshiro256::seed_from_u64(42);
            // Average the estimate over several realisations.
            let mut est = 0.0f64;
            let mut truth = 0.0f64;
            let trials = 12;
            for _ in 0..trials {
                let input = synthesize_user_with_mode(
                    &cell,
                    &user,
                    TurboMode::Passthrough,
                    snr_db,
                    &mut rng,
                );
                est += estimate_noise_var(&cell, &input, 0, 0, &planner) as f64;
                truth += input.noise_var as f64;
            }
            let ratio = est / truth;
            assert!(
                (0.6..=1.6).contains(&ratio),
                "snr {snr_db} dB: estimate/truth = {ratio:.2}"
            );
        }
    }

    #[test]
    fn estimate_is_positive_even_on_clean_channels() {
        let cell = CellConfig::with_antennas(2);
        let planner = FftPlanner::new();
        let user = UserConfig::new(8, 1, Modulation::Qpsk);
        let mut rng = Xoshiro256::seed_from_u64(7);
        let input = synthesize_user_with_mode(&cell, &user, TurboMode::Passthrough, 50.0, &mut rng);
        let est = estimate_noise_var(&cell, &input, 0, 0, &planner);
        assert!(est > 0.0 && est.is_finite());
    }
}

/// Fixed-point (Q15) variant of [`estimate_path`] — the "modules can
/// easily be replaced to model different algorithms" extension point of
/// the paper, here swapping the float kernels for the arithmetic an
/// FPU-less tile core would actually run: the matched filter and both
/// transforms execute in Q15 with block scaling.
///
/// Accuracy: within the quantisation noise floor of the float path (the
/// companion test measures > 35 dB agreement), which is far below the
/// channel noise at any practical SNR.
pub fn estimate_path_q15(
    cell: &CellConfig,
    input: &UserInput,
    slot: usize,
    rx: usize,
    layer: usize,
) -> Vec<Complex32> {
    use lte_dsp::fft::Direction;
    use lte_dsp::q15::{dequantize_block, quantize_block, FixedFft, CQ15};

    let received = input.slots[slot].reference.antenna(rx);
    let n = received.len();
    let reference = reference_for_layer(cell, &input.config, layer);

    // Scale the block into [-1, 1) with headroom.
    let peak = received
        .iter()
        .map(|z| z.re.abs().max(z.im.abs()))
        .fold(1e-9f32, f32::max);
    let scale = 0.5 / peak;
    let rx_q = quantize_block(received, scale);
    let ref_q = quantize_block(reference.samples(), 0.999);

    // Matched filter in Q15: y · conj(x).
    let mut work: Vec<CQ15> = rx_q
        .iter()
        .zip(&ref_q)
        .map(|(y, x)| {
            let conj = CQ15 {
                re: x.re,
                im: lte_dsp::q15::Q15(x.im.0.saturating_neg()),
            };
            y.mul(conj)
        })
        .collect();

    // IFFT (scaled by 1/n), window, FFT (scaled by 1/n again).
    let ifft = FixedFft::new(n, Direction::Inverse);
    ifft.process(&mut work);
    let window = ChannelWindow::for_len(n);
    // Apply the window on the fixed-point samples directly.
    {
        let head = window.head;
        let tail = window.tail;
        if head + tail < n {
            for q in work[head..n - tail].iter_mut() {
                *q = CQ15::ZERO;
            }
        }
    }
    // Re-amplify between transforms to preserve precision (block
    // floating point): scale the sparse windowed CIR so its peak sits at
    // half range. The forward transform spreads that energy over n bins,
    // so the peak cannot saturate the output either.
    let cir = dequantize_block(&work, 1.0);
    let cir_peak = cir
        .iter()
        .map(|z| z.re.abs().max(z.im.abs()))
        .fold(1e-9f32, f32::max);
    let gain = 0.5 / cir_peak;
    let mut boosted: Vec<CQ15> = cir
        .into_iter()
        .map(|z| CQ15::from_c32(z.scale(gain)))
        .collect();
    let fft = FixedFft::new(n, Direction::Forward);
    fft.process(&mut boosted);

    // Undo all scalings: quantize scale, two 1/n FFT scalings (the
    // inverse plan already includes the conventional 1/n), and the
    // inter-transform gain.
    let undo = n as f32 / (scale * gain);
    dequantize_block(&boosted, 1.0)
        .into_iter()
        .map(|z| z.scale(undo * 0.999))
        .collect()
}

#[cfg(test)]
mod q15_estimator_tests {
    use super::*;
    use crate::params::{TurboMode, UserConfig};
    use crate::tx::synthesize_user_over_channel;
    use lte_dsp::channel::MimoChannel;
    use lte_dsp::q15::quantization_snr_db;
    use lte_dsp::{Modulation, Xoshiro256};

    #[test]
    fn fixed_point_estimator_matches_float_path() {
        let cell = CellConfig::with_antennas(2);
        let user = UserConfig::new(16, 1, Modulation::Qpsk);
        let mut rng = Xoshiro256::seed_from_u64(77);
        let channel = MimoChannel::randomize(2, 1, 3, &mut rng);
        let input = synthesize_user_over_channel(
            &cell,
            &user,
            TurboMode::Passthrough,
            30.0,
            &channel,
            &mut rng,
        );
        let planner = FftPlanner::new();
        let float_est = estimate_path(&cell, &input, 0, 0, 0, &planner);
        let fixed_est = estimate_path_q15(&cell, &input, 0, 0, 0);
        let snr = quantization_snr_db(&float_est, &fixed_est);
        assert!(snr > 30.0, "fixed/float agreement only {snr:.1} dB");
    }

    #[test]
    fn fixed_point_estimator_tracks_the_true_channel() {
        let cell = CellConfig::with_antennas(2);
        let user = UserConfig::new(16, 1, Modulation::Qpsk);
        let mut rng = Xoshiro256::seed_from_u64(78);
        let channel = MimoChannel::randomize(2, 1, 2, &mut rng);
        let input = synthesize_user_over_channel(
            &cell,
            &user,
            TurboMode::Passthrough,
            35.0,
            &channel,
            &mut rng,
        );
        let est = estimate_path_q15(&cell, &input, 0, 0, 0);
        let truth = channel.frequency_response(0, 0, user.subcarriers());
        let mut err = 0.0f64;
        let mut energy = 0.0f64;
        for (e, t) in est.iter().zip(&truth) {
            err += (*e - *t).norm_sqr() as f64;
            energy += t.norm_sqr() as f64;
        }
        let rel = err / energy.max(1e-12);
        assert!(rel < 0.05, "relative error {rel:.4}");
    }
}
