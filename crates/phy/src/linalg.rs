//! Small complex matrix operations for MMSE combining.
//!
//! Combiner-weight computation needs, per subcarrier, the inverse of an
//! `L×L` Gram matrix with `L ≤ 4` layers. A dense row-major matrix with
//! Gaussian elimination and partial pivoting is exact enough at these
//! sizes and keeps the crate dependency-free.

use lte_dsp::Complex32;

/// A dense row-major complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex32>,
}

impl CMatrix {
    /// An all-zero `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        CMatrix {
            rows,
            cols,
            data: vec![Complex32::ZERO; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex32::ONE;
        }
        m
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<Complex32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        CMatrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reshapes to an all-zero `rows × cols` matrix, reusing the backing
    /// storage (no allocation once grown to the largest size seen).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "dimensions must be positive");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, Complex32::ZERO);
    }

    /// Reshapes to the `n × n` identity, reusing the backing storage.
    pub fn reset_identity(&mut self, n: usize) {
        self.reset(n, n);
        for i in 0..n {
            self[(i, i)] = Complex32::ONE;
        }
    }

    /// Becomes a copy of `src`, reusing the backing storage.
    pub fn copy_from(&mut self, src: &CMatrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Conjugate transpose.
    pub fn hermitian(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        self.hermitian_into(&mut out);
        out
    }

    /// [`hermitian`](Self::hermitian) written into a reusable output
    /// matrix (identical arithmetic, no allocation once `out` has grown).
    pub fn hermitian_into(&self, out: &mut CMatrix) {
        out.reset(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)].conj();
            }
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn mul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        self.mul_into(rhs, &mut out);
        out
    }

    /// [`mul`](Self::mul) written into a reusable output matrix. The
    /// accumulation order is identical to `mul`, so arena-path results
    /// stay bit-exact with the allocating path.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn mul_into(&self, rhs: &CMatrix, out: &mut CMatrix) {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        out.reset(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Complex32::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] = out[(r, c)].mul_add(a, rhs[(k, c)]);
                }
            }
        }
    }

    /// Adds `lambda` to every diagonal entry (diagonal loading / noise
    /// regularisation).
    pub fn add_diagonal(&mut self, lambda: f32) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += Complex32::new(lambda, 0.0);
        }
    }

    /// Inverse via Gauss–Jordan elimination with partial pivoting.
    ///
    /// Returns `None` if the matrix is numerically singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<CMatrix> {
        let mut work = CMatrix::zeros(self.rows, self.cols);
        let mut out = CMatrix::zeros(self.rows, self.cols);
        self.inverse_into(&mut work, &mut out).then_some(out)
    }

    /// [`inverse`](Self::inverse) using reusable elimination (`work`) and
    /// output (`out`) matrices; both are reshaped as needed. Returns
    /// `false` for a numerically singular matrix (with `work`/`out` in an
    /// unspecified state). The elimination order is identical to
    /// `inverse`, so results stay bit-exact.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse_into(&self, work: &mut CMatrix, out: &mut CMatrix) -> bool {
        assert_eq!(self.rows, self.cols, "inverse needs a square matrix");
        let n = self.rows;
        let a = work;
        a.copy_from(self);
        let inv = out;
        inv.reset_identity(n);
        for col in 0..n {
            // Partial pivot: largest magnitude in this column.
            let mut pivot = col;
            let mut best = a[(col, col)].norm_sqr();
            for r in col + 1..n {
                let mag = a[(r, col)].norm_sqr();
                if mag > best {
                    best = mag;
                    pivot = r;
                }
            }
            if best < 1e-20 {
                return false;
            }
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let scale = a[(col, col)].inv();
            for c in 0..n {
                a[(col, c)] *= scale;
                inv[(col, c)] *= scale;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a[(r, col)];
                if factor == Complex32::ZERO {
                    continue;
                }
                for c in 0..n {
                    let ac = a[(col, c)];
                    let ic = inv[(col, c)];
                    a[(r, c)] -= factor * ac;
                    inv[(r, c)] -= factor * ic;
                }
            }
        }
        true
    }

    fn swap_rows(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(i * self.cols + c, j * self.cols + c);
        }
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols`.
    pub fn mul_vec(&self, v: &[Complex32]) -> Vec<Complex32> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|r| {
                let mut acc = Complex32::ZERO;
                for c in 0..self.cols {
                    acc = acc.mul_add(self[(r, c)], v[c]);
                }
                acc
            })
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex32 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_dsp::Xoshiro256;

    fn random_matrix(n: usize, seed: u64) -> CMatrix {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let data = (0..n * n)
            .map(|_| Complex32::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5))
            .collect();
        CMatrix::from_rows(n, n, data)
    }

    fn assert_identity(m: &CMatrix, tol: f32) {
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let expect = if r == c {
                    Complex32::ONE
                } else {
                    Complex32::ZERO
                };
                assert!(
                    (m[(r, c)] - expect).abs() < tol,
                    "({r},{c}) = {:?}",
                    m[(r, c)]
                );
            }
        }
    }

    #[test]
    fn identity_inverse_is_identity() {
        let i4 = CMatrix::identity(4);
        assert_identity(&i4.inverse().unwrap(), 1e-6);
    }

    #[test]
    fn inverse_of_random_matrices() {
        for n in 1..=4 {
            for seed in 0..20 {
                let mut m = random_matrix(n, seed);
                m.add_diagonal(0.5); // keep well-conditioned
                let inv = m.inverse().expect("invertible");
                assert_identity(&m.mul(&inv), 1e-4);
                assert_identity(&inv.mul(&m), 1e-4);
            }
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let mut m = CMatrix::zeros(2, 2);
        m[(0, 0)] = Complex32::ONE;
        m[(1, 0)] = Complex32::ONE; // rank 1
        assert!(m.inverse().is_none());
    }

    #[test]
    fn hermitian_transpose() {
        let m = CMatrix::from_rows(
            1,
            2,
            vec![Complex32::new(1.0, 2.0), Complex32::new(3.0, -4.0)],
        );
        let h = m.hermitian();
        assert_eq!(h.rows(), 2);
        assert_eq!(h[(0, 0)], Complex32::new(1.0, -2.0));
        assert_eq!(h[(1, 0)], Complex32::new(3.0, 4.0));
    }

    #[test]
    fn mul_vec_matches_mul() {
        let m = random_matrix(3, 3);
        let v = vec![Complex32::ONE, Complex32::I, Complex32::new(0.5, 0.5)];
        let as_mat = m.mul(&CMatrix::from_rows(3, 1, v.clone()));
        let as_vec = m.mul_vec(&v);
        for r in 0..3 {
            assert!((as_mat[(r, 0)] - as_vec[r]).abs() < 1e-6);
        }
    }

    #[test]
    fn diagonal_loading() {
        let mut m = CMatrix::zeros(2, 2);
        m.add_diagonal(2.5);
        assert_eq!(m[(0, 0)], Complex32::new(2.5, 0.0));
        assert_eq!(m[(1, 1)], Complex32::new(2.5, 0.0));
        assert_eq!(m[(0, 1)], Complex32::ZERO);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn inverse_requires_square() {
        CMatrix::zeros(2, 3).inverse();
    }

    #[test]
    fn into_variants_match_allocating_ops_bitwise() {
        // Reused (wrong-shaped, dirty) outputs must produce exactly the
        // allocating results — the zero-alloc receive path depends on it.
        let mut h = CMatrix::zeros(1, 1);
        let mut p = CMatrix::zeros(1, 1);
        let mut work = CMatrix::zeros(1, 1);
        let mut inv = CMatrix::zeros(1, 1);
        for seed in 0..10 {
            for n in 1..=4 {
                let m = random_matrix(n, seed);
                m.hermitian_into(&mut h);
                assert_eq!(h, m.hermitian());
                let rhs = random_matrix(n, seed + 100);
                m.mul_into(&rhs, &mut p);
                assert_eq!(p, m.mul(&rhs));
                let mut g = m.clone();
                g.add_diagonal(0.5);
                assert!(g.inverse_into(&mut work, &mut inv));
                assert_eq!(inv, g.inverse().expect("invertible"));
            }
        }
    }

    #[test]
    fn reset_reuses_storage_and_zeroes() {
        let mut m = random_matrix(4, 1);
        m.reset(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m, CMatrix::zeros(2, 3));
        m.reset_identity(3);
        assert_eq!(m, CMatrix::identity(3));
    }
}
