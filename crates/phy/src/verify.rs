//! Golden-reference verification (§IV-D of the paper).
//!
//! "We validate the parallelized uplink benchmark by comparing the results
//! to those of the serial implementation. The serial version processes a
//! predetermined sequence of subframes, recording and storing the results
//! from each subframe."
//!
//! [`GoldenRecord`] is that store: the serial receiver's per-user results
//! for a subframe sequence. Any parallel execution replays the same
//! sequence and checks its results bit-for-bit.

use std::fmt;

use lte_dsp::fft::FftPlanner;

use crate::grid::UserInput;
use crate::params::{CellConfig, TurboMode};
use crate::receiver::{process_user_with_planner, UserResult};

/// Serial reference results for a predetermined subframe sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GoldenRecord {
    /// `results[subframe][user]`.
    results: Vec<Vec<UserResult>>,
}

/// A divergence between a parallel run and the golden record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Different number of subframes.
    SubframeCount {
        /// Subframes in the golden record.
        expected: usize,
        /// Subframes produced by the run under test.
        actual: usize,
    },
    /// Different number of users within a subframe.
    UserCount {
        /// Subframe index.
        subframe: usize,
        /// Users in the golden record.
        expected: usize,
        /// Users produced by the run under test.
        actual: usize,
    },
    /// A user's decoded output differs.
    ResultMismatch {
        /// Subframe index.
        subframe: usize,
        /// User index within the subframe.
        user: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::SubframeCount { expected, actual } => {
                write!(
                    f,
                    "subframe count mismatch: expected {expected}, got {actual}"
                )
            }
            VerifyError::UserCount {
                subframe,
                expected,
                actual,
            } => write!(
                f,
                "user count mismatch in subframe {subframe}: expected {expected}, got {actual}"
            ),
            VerifyError::ResultMismatch { subframe, user } => {
                write!(f, "result mismatch at subframe {subframe}, user {user}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl GoldenRecord {
    /// Serialises the record to a compact text format: one line per
    /// subframe, users separated by `;`, each user as `crc:hexbits` —
    /// the paper's "recording and storing the results from each
    /// subframe" so a later run (possibly on another architecture) can
    /// verify against it.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for sf in &self.results {
            let line: Vec<String> = sf
                .iter()
                .map(|r| {
                    let mut bits = String::with_capacity(r.payload.len().div_ceil(4));
                    for chunk in r.payload.chunks(4) {
                        let mut nibble = 0u8;
                        for (i, &b) in chunk.iter().enumerate() {
                            nibble |= b << (3 - i);
                        }
                        bits.push(char::from_digit(nibble as u32, 16).expect("nibble"));
                    }
                    format!("{}:{}:{}", u8::from(r.crc_ok), r.payload.len(), bits)
                })
                .collect();
            out.push_str(&line.join(";"));
            out.push('\n');
        }
        out
    }

    /// Parses a record written by [`GoldenRecord::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on malformed input.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut results = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let mut subframe = Vec::new();
            if !line.is_empty() {
                for field in line.split(';') {
                    let mut parts = field.splitn(3, ':');
                    let crc = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: missing crc"))?;
                    let len: usize = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: missing length"))?
                        .parse()
                        .map_err(|e| format!("line {lineno}: bad length: {e}"))?;
                    let hex = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: missing payload"))?;
                    let mut payload = Vec::with_capacity(len);
                    for c in hex.chars() {
                        let nibble = c
                            .to_digit(16)
                            .ok_or_else(|| format!("line {lineno}: bad hex digit {c}"))?
                            as u8;
                        for i in (0..4).rev() {
                            if payload.len() < len {
                                payload.push((nibble >> i) & 1);
                            }
                        }
                    }
                    if payload.len() != len {
                        return Err(format!("line {lineno}: payload shorter than declared"));
                    }
                    subframe.push(UserResult {
                        payload,
                        crc_ok: crc == "1",
                    });
                }
            }
            results.push(subframe);
        }
        Ok(GoldenRecord { results })
    }

    /// Builds the golden record by processing every subframe serially.
    pub fn build(cell: &CellConfig, subframes: &[Vec<UserInput>], mode: TurboMode) -> Self {
        let planner = FftPlanner::new();
        let results = subframes
            .iter()
            .map(|users| {
                users
                    .iter()
                    .map(|u| process_user_with_planner(cell, u, mode, &planner))
                    .collect()
            })
            .collect();
        GoldenRecord { results }
    }

    /// Number of recorded subframes.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// `true` when no subframes are recorded.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The recorded results of one subframe.
    pub fn subframe(&self, idx: usize) -> &[UserResult] {
        &self.results[idx]
    }

    /// Checks a parallel run's results against the record.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] encountered.
    pub fn verify(&self, actual: &[Vec<UserResult>]) -> Result<(), VerifyError> {
        if actual.len() != self.results.len() {
            return Err(VerifyError::SubframeCount {
                expected: self.results.len(),
                actual: actual.len(),
            });
        }
        for (sf, (exp, act)) in self.results.iter().zip(actual).enumerate() {
            if exp.len() != act.len() {
                return Err(VerifyError::UserCount {
                    subframe: sf,
                    expected: exp.len(),
                    actual: act.len(),
                });
            }
            for (u, (e, a)) in exp.iter().zip(act).enumerate() {
                if e != a {
                    return Err(VerifyError::ResultMismatch {
                        subframe: sf,
                        user: u,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::UserConfig;
    use crate::tx::synthesize_user;
    use lte_dsp::{Modulation, Xoshiro256};

    fn sample_subframes(n: usize) -> (CellConfig, Vec<Vec<UserInput>>) {
        let cell = CellConfig::with_antennas(2);
        let mut rng = Xoshiro256::seed_from_u64(42);
        let subframes = (0..n)
            .map(|i| {
                (0..=(i % 2))
                    .map(|j| {
                        let user = UserConfig::new(2 + 2 * j, 1 + j, Modulation::Qpsk);
                        synthesize_user(&cell, &user, 30.0, &mut rng)
                    })
                    .collect()
            })
            .collect();
        (cell, subframes)
    }

    #[test]
    fn verifies_identical_run() {
        let (cell, subframes) = sample_subframes(3);
        let golden = GoldenRecord::build(&cell, &subframes, TurboMode::Passthrough);
        assert_eq!(golden.len(), 3);
        // Re-run (simulating the "parallel" execution) and verify.
        let rerun: Vec<Vec<UserResult>> = subframes
            .iter()
            .map(|users| {
                users
                    .iter()
                    .map(|u| crate::receiver::process_user(&cell, u, TurboMode::Passthrough))
                    .collect()
            })
            .collect();
        golden.verify(&rerun).expect("identical run must verify");
    }

    #[test]
    fn detects_missing_subframe() {
        let (cell, subframes) = sample_subframes(2);
        let golden = GoldenRecord::build(&cell, &subframes, TurboMode::Passthrough);
        let err = golden.verify(&[]).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::SubframeCount {
                expected: 2,
                actual: 0
            }
        ));
    }

    #[test]
    fn detects_user_count_mismatch() {
        let (cell, subframes) = sample_subframes(1);
        let golden = GoldenRecord::build(&cell, &subframes, TurboMode::Passthrough);
        let err = golden.verify(&[vec![]]).unwrap_err();
        assert!(matches!(err, VerifyError::UserCount { subframe: 0, .. }));
    }

    #[test]
    fn detects_result_mismatch() {
        let (cell, subframes) = sample_subframes(1);
        let golden = GoldenRecord::build(&cell, &subframes, TurboMode::Passthrough);
        let mut tampered = vec![golden.subframe(0).to_vec()];
        tampered[0][0].crc_ok = !tampered[0][0].crc_ok;
        let err = golden.verify(&tampered).unwrap_err();
        assert_eq!(
            err,
            VerifyError::ResultMismatch {
                subframe: 0,
                user: 0
            }
        );
        assert!(err.to_string().contains("subframe 0"));
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::params::{CellConfig, TurboMode, UserConfig};
    use crate::tx::synthesize_user;
    use lte_dsp::{Modulation, Xoshiro256};

    #[test]
    fn text_round_trip_preserves_the_record() {
        let cell = CellConfig::with_antennas(2);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let subframes: Vec<Vec<crate::grid::UserInput>> = (0..3)
            .map(|i| {
                (0..=(i % 2))
                    .map(|j| {
                        let user = UserConfig::new(2 + 2 * j, 1, Modulation::Qpsk);
                        synthesize_user(&cell, &user, 30.0, &mut rng)
                    })
                    .collect()
            })
            .collect();
        let golden = GoldenRecord::build(&cell, &subframes, TurboMode::Passthrough);
        let text = golden.to_text();
        let restored = GoldenRecord::from_text(&text).expect("parse");
        assert_eq!(golden, restored);
    }

    #[test]
    fn empty_subframes_round_trip() {
        let golden = GoldenRecord::build(
            &CellConfig::default(),
            &[vec![], vec![]],
            TurboMode::Passthrough,
        );
        let restored = GoldenRecord::from_text(&golden.to_text()).expect("parse");
        assert_eq!(golden, restored);
        assert_eq!(restored.len(), 2);
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert!(GoldenRecord::from_text("1:banana:ff").is_err());
        assert!(GoldenRecord::from_text("1:8:zz").is_err());
        assert!(GoldenRecord::from_text("1:800:ff").is_err());
    }
}
