//! HARQ with chase combining.
//!
//! LTE uplink reliability rests on hybrid ARQ: a transport block that
//! fails its CRC is not discarded — the receiver keeps the soft
//! demodulator output and asks the UE to send the *same* encoded block
//! again. Because retransmissions carry identical bits (and identical
//! scrambling), their per-bit LLRs add: every attempt contributes its
//! received energy, so the combination decodes at an SNR no single
//! transmission reaches. This module provides the receive-side state:
//!
//! * [`HarqProcess`] — one transport block's soft buffer across
//!   attempts (demodulate → [`combine_llrs`] → decode the combination);
//! * [`HarqEntity`] — per-user processes with a bounded retransmission
//!   budget and campaign-level statistics.
//!
//! The combining boundary is deliberately *before* descrambling and
//! deinterleaving ([`demodulate_user`] output order): both are fixed
//! per-allocation permutations/sign-flips, so combining commutes with
//! them, and the serial tail ([`finish_user`]) runs once per decode
//! attempt instead of once per transmission.

use lte_dsp::fft::FftPlanner;
use lte_dsp::llr::combine_llrs;

use crate::grid::UserInput;
use crate::params::{CellConfig, TurboMode};
use crate::receiver::{demodulate_user, finish_user, UserResult};

/// One transport block's soft buffer across HARQ attempts.
#[derive(Clone, Debug, Default)]
pub struct HarqProcess {
    combined: Vec<f32>,
    attempts: usize,
}

impl HarqProcess {
    /// An empty process (no transmissions received yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Transmissions received so far.
    pub fn attempts(&self) -> usize {
        self.attempts
    }

    /// The current combined LLRs (empty before the first reception).
    pub fn soft_buffer(&self) -> &[f32] {
        &self.combined
    }

    /// Demodulates one received transmission, chase-combines it into
    /// the soft buffer and attempts to decode the combination.
    ///
    /// # Panics
    ///
    /// Panics if `input` is inconsistent or its allocation differs from
    /// earlier attempts (retransmissions reuse the original grant).
    pub fn receive(
        &mut self,
        cell: &CellConfig,
        input: &UserInput,
        mode: TurboMode,
        planner: &FftPlanner,
    ) -> UserResult {
        let update = demodulate_user(cell, input, planner);
        if self.combined.is_empty() {
            self.combined = update;
        } else {
            combine_llrs(&mut self.combined, &update);
        }
        self.attempts += 1;
        finish_user(cell, input, mode, &self.combined)
    }
}

/// What the entity tells the scheduler after each reception.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HarqDecision {
    /// The transport block is delivered upward (successfully or not);
    /// the user's process has been cleared.
    Delivered {
        /// The decode outcome of the combined soft buffer.
        result: UserResult,
        /// Transmissions it took (1 = first transmission decoded).
        attempts: usize,
        /// `true` when combining succeeded after a failed first attempt.
        recovered: bool,
    },
    /// CRC failed and retransmission budget remains: the caller should
    /// schedule attempt `attempts + 1`.
    Retransmit {
        /// Transmissions received so far.
        attempts: usize,
    },
}

/// Campaign-level HARQ counters (all monotonically increasing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HarqStats {
    /// Transmissions received (first attempts + retransmissions).
    pub transmissions: u64,
    /// Retransmissions requested.
    pub retransmissions: u64,
    /// Blocks recovered by combining after a failed first attempt.
    pub recoveries: u64,
    /// Blocks delivered with a failed CRC (budget exhausted).
    pub failures: u64,
}

/// Per-user HARQ processes with a bounded retransmission budget.
#[derive(Clone, Debug)]
pub struct HarqEntity {
    /// Retransmissions allowed per transport block (0 disables HARQ).
    pub max_retransmissions: usize,
    processes: std::collections::BTreeMap<u32, HarqProcess>,
    /// Running campaign statistics.
    pub stats: HarqStats,
}

impl HarqEntity {
    /// An entity allowing `max_retransmissions` per transport block.
    pub fn new(max_retransmissions: usize) -> Self {
        HarqEntity {
            max_retransmissions,
            processes: std::collections::BTreeMap::new(),
            stats: HarqStats::default(),
        }
    }

    /// Users with an in-flight (undelivered) process.
    pub fn in_flight(&self) -> usize {
        self.processes.len()
    }

    /// Feeds one received transmission for `user` and decides between
    /// delivery and retransmission.
    pub fn on_reception(
        &mut self,
        user: u32,
        cell: &CellConfig,
        input: &UserInput,
        mode: TurboMode,
        planner: &FftPlanner,
    ) -> HarqDecision {
        let process = self.processes.entry(user).or_default();
        let result = process.receive(cell, input, mode, planner);
        let attempts = process.attempts();
        self.stats.transmissions += 1;
        if !result.crc_ok && attempts <= self.max_retransmissions {
            self.stats.retransmissions += 1;
            return HarqDecision::Retransmit { attempts };
        }
        self.processes.remove(&user);
        let recovered = result.crc_ok && attempts > 1;
        if recovered {
            self.stats.recoveries += 1;
        }
        if !result.crc_ok {
            self.stats.failures += 1;
        }
        HarqDecision::Delivered {
            result,
            attempts,
            recovered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::UserConfig;
    use crate::receiver::process_user;
    use crate::tx::{synthesize_retransmission, synthesize_user, FramePlan};
    use lte_dsp::{Modulation, Xoshiro256};

    /// Drives one user's transport block through the entity, feeding
    /// retransmissions until delivery. Returns the decision plus every
    /// individual attempt's single-shot CRC outcome.
    fn run_one_block(
        entity: &mut HarqEntity,
        cell: &CellConfig,
        user: &UserConfig,
        snr_db: f64,
        rng: &mut Xoshiro256,
    ) -> (HarqDecision, Vec<bool>) {
        let planner = FftPlanner::new();
        let mode = TurboMode::Passthrough;
        let first = synthesize_user(cell, user, snr_db, rng);
        let payload = first.ground_truth.clone();
        let mut single_shot = vec![process_user(cell, &first, mode).crc_ok];
        let mut decision = entity.on_reception(0, cell, &first, mode, &planner);
        while let HarqDecision::Retransmit { .. } = decision {
            let retx = synthesize_retransmission(cell, user, mode, &payload, snr_db, rng);
            single_shot.push(process_user(cell, &retx, mode).crc_ok);
            decision = entity.on_reception(0, cell, &retx, mode, &planner);
        }
        (decision, single_shot)
    }

    #[test]
    fn high_snr_block_delivers_first_time() {
        let cell = CellConfig::default();
        let user = UserConfig::new(4, 1, Modulation::Qpsk);
        let mut entity = HarqEntity::new(3);
        let mut rng = Xoshiro256::seed_from_u64(2);
        let (decision, _) = run_one_block(&mut entity, &cell, &user, 30.0, &mut rng);
        match decision {
            HarqDecision::Delivered {
                result,
                attempts,
                recovered,
            } => {
                assert!(result.crc_ok);
                assert_eq!(attempts, 1);
                assert!(!recovered);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(entity.stats.retransmissions, 0);
        assert_eq!(entity.in_flight(), 0);
    }

    #[test]
    fn low_snr_chase_combining_recovers_what_no_single_shot_decodes() {
        // The acceptance-criteria link test: over a slow-fading channel
        // (one realisation for the whole HARQ round) at an SNR where
        // *every* individual transmission fails CRC, the combined soft
        // buffer decodes — retransmissions average the noise down. The
        // seed is fixed; single-shot outcomes are asserted, not assumed.
        use crate::tx::{synthesize_payload_over_channel, synthesize_user_over_channel};
        use lte_dsp::channel::MimoChannel;

        let cell = CellConfig::with_antennas(2);
        let user = UserConfig::new(2, 1, Modulation::Qpsk);
        let mode = TurboMode::Passthrough;
        let snr_db = -6.0;
        let planner = FftPlanner::new();
        let mut entity = HarqEntity::new(6);
        let mut rng = Xoshiro256::seed_from_u64(0xCAFE + 3);
        let channel = MimoChannel::randomize(cell.n_rx, user.layers, 3, &mut rng);

        let first = synthesize_user_over_channel(&cell, &user, mode, snr_db, &channel, &mut rng);
        let payload = first.ground_truth.clone();
        let mut single_shot = vec![process_user(&cell, &first, mode).crc_ok];
        let mut decision = entity.on_reception(0, &cell, &first, mode, &planner);
        while let HarqDecision::Retransmit { .. } = decision {
            let retx = synthesize_payload_over_channel(
                &cell, &user, mode, &payload, snr_db, &channel, &mut rng,
            );
            single_shot.push(process_user(&cell, &retx, mode).crc_ok);
            decision = entity.on_reception(0, &cell, &retx, mode, &planner);
        }

        assert!(single_shot.len() > 1);
        assert!(
            single_shot.iter().all(|&ok| !ok),
            "every individual transmission must fail CRC: {single_shot:?}"
        );
        match decision {
            HarqDecision::Delivered {
                result,
                attempts,
                recovered,
            } => {
                assert!(result.crc_ok, "combined decode failed after {attempts} tx");
                assert!(attempts > 1);
                assert!(recovered);
                assert_eq!(result.payload, payload);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(entity.stats.recoveries, 1);
        assert_eq!(entity.stats.failures, 0);
        assert!(entity.stats.retransmissions >= 1);
    }

    #[test]
    fn budget_exhaustion_delivers_a_failed_block() {
        let cell = CellConfig::default();
        let user = UserConfig::new(2, 1, Modulation::Qpsk);
        let mut entity = HarqEntity::new(1);
        let mut rng = Xoshiro256::seed_from_u64(7);
        // Hopeless SNR: even combining two attempts cannot decode.
        let (decision, _) = run_one_block(&mut entity, &cell, &user, -25.0, &mut rng);
        match decision {
            HarqDecision::Delivered {
                result,
                attempts,
                recovered,
            } => {
                assert!(!result.crc_ok);
                assert_eq!(attempts, 2, "1 transmission + 1 retransmission");
                assert!(!recovered);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(entity.stats.failures, 1);
        assert_eq!(entity.stats.retransmissions, 1);
    }

    #[test]
    fn entity_tracks_users_independently() {
        let cell = CellConfig::default();
        let user = UserConfig::new(2, 1, Modulation::Qpsk);
        let planner = FftPlanner::new();
        let mut entity = HarqEntity::new(4);
        let mut rng = Xoshiro256::seed_from_u64(3);
        // User 0 fails at terrible SNR and stays in flight.
        let bad = synthesize_user(&cell, &user, -25.0, &mut rng);
        let d0 = entity.on_reception(0, &cell, &bad, TurboMode::Passthrough, &planner);
        assert!(matches!(d0, HarqDecision::Retransmit { attempts: 1 }));
        // User 1 decodes immediately; user 0's buffer is untouched.
        let good = synthesize_user(&cell, &user, 30.0, &mut rng);
        let d1 = entity.on_reception(1, &cell, &good, TurboMode::Passthrough, &planner);
        assert!(matches!(d1, HarqDecision::Delivered { .. }));
        assert_eq!(entity.in_flight(), 1);
    }

    #[test]
    fn process_soft_buffer_accumulates() {
        let cell = CellConfig::default();
        let user = UserConfig::new(2, 1, Modulation::Qpsk);
        let planner = FftPlanner::new();
        let mut rng = Xoshiro256::seed_from_u64(4);
        let first = synthesize_user(&cell, &user, 10.0, &mut rng);
        let payload = first.ground_truth.clone();
        let mut process = HarqProcess::new();
        assert!(process.soft_buffer().is_empty());
        process.receive(&cell, &first, TurboMode::Passthrough, &planner);
        let after_one = process.soft_buffer().to_vec();
        let retx = synthesize_retransmission(
            &cell,
            &user,
            TurboMode::Passthrough,
            &payload,
            10.0,
            &mut rng,
        );
        process.receive(&cell, &retx, TurboMode::Passthrough, &planner);
        assert_eq!(process.attempts(), 2);
        assert_eq!(after_one.len(), process.soft_buffer().len());
        assert_ne!(after_one, process.soft_buffer());
        let plan = FramePlan::for_user(&user, TurboMode::Passthrough);
        assert_eq!(after_one.len(), plan.payload_bits() + 24);
    }
}
