//! LTE uplink configuration types.
//!
//! These mirror the paper's subframe input parameters (§IV): per user the
//! number of physical resource blocks, the number of layers, and the
//! modulation; per cell the antenna configuration and frame structure
//! constants.

use lte_dsp::Modulation;

/// Subcarriers per physical resource block.
pub const SC_PER_PRB: usize = 12;
/// SC-FDMA symbols per slot (normal cyclic prefix).
pub const SYMBOLS_PER_SLOT: usize = 7;
/// Data symbols per slot (one of the seven is the reference symbol).
pub const DATA_SYMBOLS_PER_SLOT: usize = 6;
/// Index of the reference symbol within a slot (three data symbols are
/// buffered before it arrives — §II-C of the paper).
pub const REFERENCE_SYMBOL_INDEX: usize = 3;
/// Slots per subframe.
pub const SLOTS_PER_SUBFRAME: usize = 2;
/// Maximum PRBs schedulable in one subframe in the benchmark's parameter
/// model (`MAX_PRB` in Fig. 6).
pub const MAX_PRB: usize = 200;
/// Maximum users schedulable in one subframe (`MAX_USERS` in Fig. 6).
pub const MAX_USERS: usize = 10;
/// Minimum PRBs a scheduled user can hold (§V-A: "a user has to have at
/// least two PRBs to be scheduled").
pub const MIN_USER_PRB: usize = 2;
/// Maximum uplink layers (LTE-Advanced uplink MIMO — §II-B).
pub const MAX_LAYERS: usize = 4;

/// Per-user subframe input parameters (the paper's §IV list).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UserConfig {
    /// Physical resource blocks allocated to this user (≥ 2).
    pub prbs: usize,
    /// Spatial layers in use (1..=4).
    pub layers: usize,
    /// Modulation scheme.
    pub modulation: Modulation,
}

impl UserConfig {
    /// Creates a user configuration.
    ///
    /// # Panics
    ///
    /// Panics if `prbs < MIN_USER_PRB`, `prbs > MAX_PRB`, or
    /// `layers` is not in `1..=MAX_LAYERS`.
    pub fn new(prbs: usize, layers: usize, modulation: Modulation) -> Self {
        assert!(
            (MIN_USER_PRB..=MAX_PRB).contains(&prbs),
            "prbs must be in {MIN_USER_PRB}..={MAX_PRB}, got {prbs}"
        );
        assert!(
            (1..=MAX_LAYERS).contains(&layers),
            "layers must be in 1..={MAX_LAYERS}, got {layers}"
        );
        UserConfig {
            prbs,
            layers,
            modulation,
        }
    }

    /// Allocated subcarriers (`12 × prbs`).
    pub fn subcarriers(&self) -> usize {
        self.prbs * SC_PER_PRB
    }

    /// Payload+parity bits carried by this user in one subframe:
    /// `2 slots × 6 symbols × layers × subcarriers × bits/symbol`.
    pub fn bits_per_subframe(&self) -> usize {
        SLOTS_PER_SUBFRAME
            * DATA_SYMBOLS_PER_SLOT
            * self.layers
            * self.subcarriers()
            * self.modulation.bits_per_symbol()
    }

    /// Number of channel-estimation tasks this user spawns
    /// (`rx antennas × layers` — §III of the paper).
    pub fn estimation_tasks(&self, n_rx: usize) -> usize {
        n_rx * self.layers
    }

    /// Number of demodulation tasks this user spawns
    /// (`12 data symbols × layers` — §III of the paper).
    pub fn demodulation_tasks(&self) -> usize {
        SLOTS_PER_SUBFRAME * DATA_SYMBOLS_PER_SLOT * self.layers
    }
}

/// Number of physical-cell identities (TS 36.211 §6.11: 0..=503).
pub const N_CELL_IDENTITIES: usize = 504;

/// Zadoff–Chu roots assigned round-robin to cell identities by
/// [`CellConfig::with_identity`]: small primes, so every pair of
/// distinct roots is coprime to every practical sequence length and
/// neighbouring cells' reference sequences stay near-orthogonal.
const ZC_ROOT_TABLE: [usize; 8] = [7, 11, 13, 17, 19, 23, 29, 31];

/// Cell-wide (base-station) configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellConfig {
    /// Receive antennas at the base station.
    pub n_rx: usize,
    /// Zadoff–Chu root used for the cell's reference sequences.
    pub zc_root: usize,
    /// Physical-cell identity (0..=503) — seeds the cell-specific part
    /// of the PUSCH scrambling sequence, so co-scheduled users in
    /// different cells descramble differently.
    pub cell_id: usize,
}

/// The historical single-cell identity: every pre-multi-cell run
/// scrambled with cell id 101, so [`CellConfig::with_antennas`] keeps it
/// to preserve golden records and fingerprints bit-for-bit.
pub const LEGACY_CELL_ID: usize = 101;

impl CellConfig {
    /// A cell with `n_rx` receive antennas and the legacy single-cell
    /// identity ([`LEGACY_CELL_ID`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_rx == 0` or `n_rx > 8`.
    pub fn with_antennas(n_rx: usize) -> Self {
        assert!((1..=8).contains(&n_rx), "n_rx must be in 1..=8");
        CellConfig {
            n_rx,
            zc_root: 7,
            cell_id: LEGACY_CELL_ID,
        }
    }

    /// A cell with an explicit physical-cell identity: the Zadoff–Chu
    /// root is derived from the identity (distinct prime roots cycle
    /// with the identity), so neighbouring deployment cells get distinct
    /// reference sequences and distinct scrambling without extra
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n_rx` is out of `1..=8` or
    /// `cell_id >= N_CELL_IDENTITIES`.
    pub fn with_identity(n_rx: usize, cell_id: usize) -> Self {
        assert!((1..=8).contains(&n_rx), "n_rx must be in 1..=8");
        assert!(
            cell_id < N_CELL_IDENTITIES,
            "cell_id must be in 0..{N_CELL_IDENTITIES}, got {cell_id}"
        );
        CellConfig {
            n_rx,
            zc_root: ZC_ROOT_TABLE[cell_id % ZC_ROOT_TABLE.len()],
            cell_id,
        }
    }
}

impl Default for CellConfig {
    /// The paper's evaluation configuration: a four-antenna receiver.
    fn default() -> Self {
        CellConfig::with_antennas(4)
    }
}

/// Whether the turbo stage decodes or passes data through.
///
/// The paper omits real turbo decoding ("commonly executed on dedicated
/// hardware, and thus we omit it from our benchmark. The call to perform
/// turbo decoding simply passes the data through") but designed the
/// pipeline for module replacement; both modes are first-class here.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TurboMode {
    /// Hard-decide LLRs and pass them straight to the CRC — the paper's
    /// default.
    #[default]
    Passthrough,
    /// Run the real max-log-MAP turbo decoder with this many iterations.
    Decode {
        /// Full decoder iterations (two SISO passes each).
        iterations: usize,
    },
}

/// The input parameters of one subframe: the scheduled users.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SubframeConfig {
    /// Scheduled users (at most [`MAX_USERS`]).
    pub users: Vec<UserConfig>,
}

impl SubframeConfig {
    /// Creates a subframe configuration.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_USERS`] users are scheduled.
    pub fn new(users: Vec<UserConfig>) -> Self {
        assert!(
            users.len() <= MAX_USERS,
            "at most {MAX_USERS} users per subframe"
        );
        SubframeConfig { users }
    }

    /// Total PRBs allocated across users.
    pub fn total_prbs(&self) -> usize {
        self.users.iter().map(|u| u.prbs).sum()
    }

    /// Number of scheduled users.
    pub fn n_users(&self) -> usize {
        self.users.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_config_accessors() {
        let u = UserConfig::new(10, 2, Modulation::Qam64);
        assert_eq!(u.subcarriers(), 120);
        assert_eq!(u.bits_per_subframe(), 2 * 6 * 2 * 120 * 6);
        assert_eq!(u.estimation_tasks(4), 8);
        assert_eq!(u.demodulation_tasks(), 24);
    }

    #[test]
    fn paper_parallelism_figures() {
        // §III: "four antennas × four layers" → 16 estimation tasks;
        // "six symbols × four layers" → 24 demodulation tasks per subframe
        // (two slots).
        let u = UserConfig::new(2, 4, Modulation::Qpsk);
        assert_eq!(u.estimation_tasks(4), 16);
        assert_eq!(u.demodulation_tasks(), 48);
        assert_eq!(u.demodulation_tasks() / SLOTS_PER_SUBFRAME, 24);
    }

    #[test]
    #[should_panic(expected = "prbs")]
    fn single_prb_rejected() {
        UserConfig::new(1, 1, Modulation::Qpsk);
    }

    #[test]
    #[should_panic(expected = "layers")]
    fn five_layers_rejected() {
        UserConfig::new(4, 5, Modulation::Qpsk);
    }

    #[test]
    fn cell_defaults() {
        let cell = CellConfig::default();
        assert_eq!(cell.n_rx, 4);
        assert_eq!(cell.cell_id, LEGACY_CELL_ID);
        assert_eq!(cell.zc_root, 7);
    }

    #[test]
    fn cell_identities_get_distinct_roots_and_ids() {
        let a = CellConfig::with_identity(2, 0);
        let b = CellConfig::with_identity(2, 1);
        assert_ne!(a.zc_root, b.zc_root);
        assert_ne!(a.cell_id, b.cell_id);
        // Identity wraps through the root table but cell_id stays exact.
        let c = CellConfig::with_identity(2, 8);
        assert_eq!(c.zc_root, a.zc_root);
        assert_ne!(c.cell_id, a.cell_id);
    }

    #[test]
    #[should_panic(expected = "cell_id")]
    fn out_of_range_identity_rejected() {
        CellConfig::with_identity(2, N_CELL_IDENTITIES);
    }

    #[test]
    #[should_panic(expected = "n_rx")]
    fn zero_antennas_rejected() {
        CellConfig::with_antennas(0);
    }

    #[test]
    fn subframe_totals() {
        let sf = SubframeConfig::new(vec![
            UserConfig::new(10, 1, Modulation::Qpsk),
            UserConfig::new(20, 2, Modulation::Qam16),
        ]);
        assert_eq!(sf.total_prbs(), 30);
        assert_eq!(sf.n_users(), 2);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_users_rejected() {
        SubframeConfig::new(vec![UserConfig::new(2, 1, Modulation::Qpsk); 11]);
    }

    #[test]
    fn turbo_mode_default_is_passthrough() {
        assert_eq!(TurboMode::default(), TurboMode::Passthrough);
    }
}
