//! The LTE uplink physical-layer pipeline.
//!
//! This crate implements the per-user receive chain of the ISPASS 2012
//! benchmark (Fig. 3 of the paper):
//!
//! ```text
//!             reference symbol                         data symbols
//!  ┌─────────────────────────────────┐   ┌────────────────────────────────┐
//!  │ matched filter → IFFT → window  │   │ antenna combining → IFFT       │
//!  │ → FFT   (per rx-antenna, layer) │ → │   (per symbol, layer)          │
//!  └─────────────────────────────────┘   │ → deinterleave → soft demap    │
//!         → combiner weights             │ → turbo decode → CRC           │
//!                                        └────────────────────────────────┘
//! ```
//!
//! plus the *transmit* side ([`tx`]) needed to synthesise realistic input
//! grids (the paper likewise generates its input data at initialisation),
//! and a serial golden-reference path ([`verify`]) used to validate any
//! parallel execution of the same kernels — the paper's §IV-D methodology.
//!
//! The kernels are exposed individually (estimate one antenna/layer path,
//! combine one symbol/layer, …) precisely because the benchmark's runtime
//! schedules them as independent work-stealing tasks.
//!
//! # Example
//!
//! ```
//! use lte_phy::params::{CellConfig, TurboMode, UserConfig};
//! use lte_phy::tx::synthesize_user;
//! use lte_phy::receiver::process_user;
//! use lte_dsp::{Modulation, Xoshiro256};
//!
//! let cell = CellConfig::default();
//! let user = UserConfig::new(4, 2, Modulation::Qam16);
//! let mut rng = Xoshiro256::seed_from_u64(7);
//! let input = synthesize_user(&cell, &user, 30.0, &mut rng);
//! let result = process_user(&cell, &input, TurboMode::Passthrough);
//! assert!(result.crc_ok);
//! ```

pub mod combiner;
pub mod estimator;
pub mod frontend;
pub mod grid;
pub mod harq;
pub mod linalg;
pub mod params;
pub mod receiver;
pub mod trace;
pub mod tx;
pub mod verify;

pub use harq::{HarqDecision, HarqEntity, HarqProcess, HarqStats};
pub use params::{CellConfig, SubframeConfig, TurboMode, UserConfig};
pub use receiver::{demodulate_user, process_user, UserResult};
pub use trace::{StageHists, StageTimer};
